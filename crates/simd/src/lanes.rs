//! The `f64x4`/`f64x8` lane abstraction and the feature-gated kernel bodies.
//!
//! Everything here is `pub(crate)`: the only way in is through the safe
//! dispatchers in `lib.rs`, which verify the required CPU features at runtime
//! before calling the `#[target_feature]` instantiations below. The generic
//! kernel bodies are written once over [`LaneVector`] and marked
//! `#[inline(always)]` so they inline into the feature-enabled wrapper frames
//! and the intrinsics compile to the wide instructions they name.
//!
//! Bit-exactness contract (the `exact` mode): every lanewise add/sub/mul/div
//! is IEEE-754 correctly rounded, so as long as a kernel body performs the
//! *same operations in the same association* as the scalar reference loop,
//! each lane computes the identical bit pattern. The bodies below keep the
//! scalar association; only the `FAST` variants fuse and reassociate.
//!
//! NaN discipline: x86 `max/minpd` return the *second* operand when either
//! input is NaN, so clamps place the constant first (`min(one, max(zero, x))`)
//! to propagate data NaNs exactly like scalar `f64::clamp`. Comparisons use
//! the quiet ordered predicates (`_CMP_LT_OQ`/`_CMP_GE_OQ`), which evaluate to
//! false on NaN just like the scalar `<` / `>=` operators.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::{
    __m256d, __m512d, _mm256_add_pd, _mm256_blendv_pd, _mm256_cmp_pd, _mm256_div_pd,
    _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_min_pd, _mm256_movemask_pd,
    _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm512_add_pd,
    _mm512_cmp_pd_mask, _mm512_div_pd, _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_mask_blend_pd,
    _mm512_max_pd, _mm512_min_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_storeu_pd, _mm512_sub_pd,
    _CMP_GE_OQ, _CMP_LT_OQ,
};

/// Widest lane count any backend uses; sizes the stack scratch buffers used
/// for per-lane transcendentals.
pub(crate) const MAX_LANES: usize = 8;

/// A pack of `LANES` f64 values with IEEE-754 lanewise arithmetic.
///
/// # Safety
///
/// Every method lowers to intrinsics of the implementing type's ISA extension
/// (AVX/AVX2+FMA for [`F64x4`], AVX-512F for [`F64x8`]). Callers must only
/// invoke them from a context where that extension is known to be available —
/// in this crate, from inside the matching `#[target_feature]` wrapper after
/// runtime detection. `load`/`store` additionally require `LANES` elements.
pub(crate) unsafe trait LaneVector: Copy {
    const LANES: usize;

    /// # Safety
    /// Requires the implementing ISA extension and `src.len() >= LANES`.
    unsafe fn load(src: &[f64]) -> Self;
    /// # Safety
    /// Requires the implementing ISA extension and `dst.len() >= LANES`.
    unsafe fn store(self, dst: &mut [f64]);
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn splat(x: f64) -> Self;
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn add(self, other: Self) -> Self;
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn sub(self, other: Self) -> Self;
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn mul(self, other: Self) -> Self;
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn div(self, other: Self) -> Self;
    /// Fused `self * m + a` (used by the `fast` mode only).
    ///
    /// # Safety
    /// Requires the implementing ISA extension (and FMA for [`F64x4`]).
    unsafe fn mul_add(self, m: Self, a: Self) -> Self;
    /// Lanewise max; returns `other` when either operand is NaN.
    ///
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn max_of(self, other: Self) -> Self;
    /// Lanewise min; returns `other` when either operand is NaN.
    ///
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn min_of(self, other: Self) -> Self;
    /// Lanewise `if a < b { t } else { f }`; NaN compares false.
    ///
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self;
    /// Lanewise `if a >= b { t } else { f }`; NaN compares false.
    ///
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn select_ge(a: Self, b: Self, t: Self, f: Self) -> Self;
    /// True when any lane satisfies `a < b` (NaN lanes compare false).
    ///
    /// # Safety
    /// Requires the implementing ISA extension.
    unsafe fn any_lt(a: Self, b: Self) -> bool;
}

/// Four f64 lanes over AVX (arithmetic), AVX2 detection gate, FMA for fusing.
#[derive(Clone, Copy)]
pub(crate) struct F64x4(__m256d);

// SAFETY: every method lowers to an AVX/FMA intrinsic; the trait contract
// obliges the caller to guarantee those features before invoking.
unsafe impl LaneVector for F64x4 {
    const LANES: usize = 4;

    /// # Safety
    /// See trait: requires AVX and `src.len() >= 4`.
    #[inline(always)]
    unsafe fn load(src: &[f64]) -> Self {
        debug_assert!(src.len() >= Self::LANES);
        // SAFETY: caller guarantees at least LANES readable elements; loadu
        // has no alignment requirement.
        Self(unsafe { _mm256_loadu_pd(src.as_ptr()) })
    }

    /// # Safety
    /// See trait: requires AVX and `dst.len() >= 4`.
    #[inline(always)]
    unsafe fn store(self, dst: &mut [f64]) {
        debug_assert!(dst.len() >= Self::LANES);
        // SAFETY: caller guarantees at least LANES writable elements; storeu
        // has no alignment requirement.
        unsafe { _mm256_storeu_pd(dst.as_mut_ptr(), self.0) }
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        // SAFETY: lanewise AVX broadcast, caller guarantees the feature.
        Self(unsafe { _mm256_set1_pd(x) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        // SAFETY: lanewise AVX arithmetic, caller guarantees the feature.
        Self(unsafe { _mm256_add_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn sub(self, other: Self) -> Self {
        // SAFETY: lanewise AVX arithmetic, caller guarantees the feature.
        Self(unsafe { _mm256_sub_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        // SAFETY: lanewise AVX arithmetic, caller guarantees the feature.
        Self(unsafe { _mm256_mul_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        // SAFETY: lanewise AVX arithmetic, caller guarantees the feature.
        Self(unsafe { _mm256_div_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires FMA.
    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // SAFETY: lanewise FMA, caller guarantees the feature.
        Self(unsafe { _mm256_fmadd_pd(self.0, m.0, a.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn max_of(self, other: Self) -> Self {
        // SAFETY: lanewise AVX max (second operand wins on NaN), caller
        // guarantees the feature.
        Self(unsafe { _mm256_max_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn min_of(self, other: Self) -> Self {
        // SAFETY: lanewise AVX min (second operand wins on NaN), caller
        // guarantees the feature.
        Self(unsafe { _mm256_min_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
        // SAFETY: lanewise AVX compare + blend, caller guarantees the
        // feature; _CMP_LT_OQ is quiet-ordered so NaN lanes pick `f`.
        Self(unsafe { _mm256_blendv_pd(f.0, t.0, _mm256_cmp_pd::<_CMP_LT_OQ>(a.0, b.0)) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn select_ge(a: Self, b: Self, t: Self, f: Self) -> Self {
        // SAFETY: lanewise AVX compare + blend, caller guarantees the
        // feature; _CMP_GE_OQ is quiet-ordered so NaN lanes pick `f`.
        Self(unsafe { _mm256_blendv_pd(f.0, t.0, _mm256_cmp_pd::<_CMP_GE_OQ>(a.0, b.0)) })
    }

    /// # Safety
    /// See trait: requires AVX.
    #[inline(always)]
    unsafe fn any_lt(a: Self, b: Self) -> bool {
        // SAFETY: lanewise AVX compare + sign-bit extraction, caller
        // guarantees the feature.
        unsafe { _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(a.0, b.0)) != 0 }
    }
}

/// Eight f64 lanes over AVX-512F (which includes fused multiply-add).
#[derive(Clone, Copy)]
pub(crate) struct F64x8(__m512d);

// SAFETY: every method lowers to an AVX-512F intrinsic; the trait contract
// obliges the caller to guarantee the feature before invoking.
unsafe impl LaneVector for F64x8 {
    const LANES: usize = 8;

    /// # Safety
    /// See trait: requires AVX-512F and `src.len() >= 8`.
    #[inline(always)]
    unsafe fn load(src: &[f64]) -> Self {
        debug_assert!(src.len() >= Self::LANES);
        // SAFETY: caller guarantees at least LANES readable elements; loadu
        // has no alignment requirement.
        Self(unsafe { _mm512_loadu_pd(src.as_ptr()) })
    }

    /// # Safety
    /// See trait: requires AVX-512F and `dst.len() >= 8`.
    #[inline(always)]
    unsafe fn store(self, dst: &mut [f64]) {
        debug_assert!(dst.len() >= Self::LANES);
        // SAFETY: caller guarantees at least LANES writable elements; storeu
        // has no alignment requirement.
        unsafe { _mm512_storeu_pd(dst.as_mut_ptr(), self.0) }
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn splat(x: f64) -> Self {
        // SAFETY: lanewise AVX-512F broadcast, caller guarantees the feature.
        Self(unsafe { _mm512_set1_pd(x) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn add(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F arithmetic, caller guarantees the feature.
        Self(unsafe { _mm512_add_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn sub(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F arithmetic, caller guarantees the feature.
        Self(unsafe { _mm512_sub_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn mul(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F arithmetic, caller guarantees the feature.
        Self(unsafe { _mm512_mul_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn div(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F arithmetic, caller guarantees the feature.
        Self(unsafe { _mm512_div_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // SAFETY: lanewise AVX-512F fused multiply-add, caller guarantees the
        // feature.
        Self(unsafe { _mm512_fmadd_pd(self.0, m.0, a.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn max_of(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F max (second operand wins on NaN), caller
        // guarantees the feature.
        Self(unsafe { _mm512_max_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn min_of(self, other: Self) -> Self {
        // SAFETY: lanewise AVX-512F min (second operand wins on NaN), caller
        // guarantees the feature.
        Self(unsafe { _mm512_min_pd(self.0, other.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn select_lt(a: Self, b: Self, t: Self, f: Self) -> Self {
        // SAFETY: lanewise AVX-512F masked compare + blend (mask bit set
        // picks `t`), caller guarantees the feature; _CMP_LT_OQ is
        // quiet-ordered so NaN lanes pick `f`.
        Self(unsafe { _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(a.0, b.0), f.0, t.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn select_ge(a: Self, b: Self, t: Self, f: Self) -> Self {
        // SAFETY: lanewise AVX-512F masked compare + blend (mask bit set
        // picks `t`), caller guarantees the feature; _CMP_GE_OQ is
        // quiet-ordered so NaN lanes pick `f`.
        Self(unsafe { _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_GE_OQ>(a.0, b.0), f.0, t.0) })
    }

    /// # Safety
    /// See trait: requires AVX-512F.
    #[inline(always)]
    unsafe fn any_lt(a: Self, b: Self) -> bool {
        // SAFETY: lanewise AVX-512F compare to mask register, caller
        // guarantees the feature.
        unsafe { _mm512_cmp_pd_mask::<_CMP_LT_OQ>(a.0, b.0) != 0 }
    }
}

// ---------------------------------------------------------------------------
// Generic kernel bodies. Each mirrors a scalar reference loop in `lib.rs`
// operation-for-operation (same association), which is what makes the `exact`
// dispatch `to_bits`-identical. Remainder elements always run the scalar
// reference loop.
// ---------------------------------------------------------------------------

/// `out[k] = scale * rs[k]` — the π-round scaling fill in `p_i_batch`.
///
/// # Safety
/// Requires `V`'s ISA extension; `rs.len() == out.len()`.
#[inline(always)]
unsafe fn fill_scaled_body<V: LaneVector>(scale: f64, rs: &[f64], out: &mut [f64]) {
    debug_assert_eq!(rs.len(), out.len());
    let len = out.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    unsafe {
        let scale_v = V::splat(scale);
        while k + V::LANES <= len {
            scale_v.mul(V::load(&rs[k..])).store(&mut out[k..]);
            k += V::LANES;
        }
    }
    for (t, &r) in out[k..].iter_mut().zip(&rs[k..]) {
        *t = scale * r;
    }
}

/// `xs[k] = xs[k].clamp(0.0, 1.0)` with scalar-`clamp` NaN propagation.
///
/// # Safety
/// Requires `V`'s ISA extension.
#[inline(always)]
unsafe fn clamp_unit_body<V: LaneVector>(xs: &mut [f64]) {
    let len = xs.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    // Constants ride in the FIRST operand of max/min so a NaN in `xs`
    // (second operand) propagates, exactly like `f64::clamp(0.0, 1.0)`.
    unsafe {
        let zero = V::splat(0.0);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            one.min_of(zero.max_of(V::load(&xs[k..])))
                .store(&mut xs[k..]);
            k += V::LANES;
        }
    }
    for x in &mut xs[k..] {
        *x = x.clamp(0.0, 1.0);
    }
}

/// `xs[k] = (xs[k] / base).clamp(0.0, 1.0)` — conditioning on a defective
/// round-0 survival in `p_i_batch`.
///
/// # Safety
/// Requires `V`'s ISA extension.
#[inline(always)]
unsafe fn div_clamp_unit_body<V: LaneVector>(base: f64, xs: &mut [f64]) {
    let len = xs.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    unsafe {
        let base_v = V::splat(base);
        let zero = V::splat(0.0);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            let q = V::load(&xs[k..]).div(base_v);
            one.min_of(zero.max_of(q)).store(&mut xs[k..]);
            k += V::LANES;
        }
    }
    for x in &mut xs[k..] {
        *x = (*x / base).clamp(0.0, 1.0);
    }
}

/// `acc[k] += weight * src[k]` — mixture-component accumulation.
///
/// # Safety
/// Requires `V`'s ISA extension; `acc.len() == src.len()`.
#[inline(always)]
unsafe fn weighted_accumulate_body<V: LaneVector>(weight: f64, src: &[f64], acc: &mut [f64]) {
    debug_assert_eq!(acc.len(), src.len());
    let len = acc.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    // `acc + w*s` keeps the scalar association (w*s first, then add).
    unsafe {
        let w = V::splat(weight);
        while k + V::LANES <= len {
            V::load(&acc[k..])
                .add(w.mul(V::load(&src[k..])))
                .store(&mut acc[k..]);
            k += V::LANES;
        }
    }
    for (a, &s) in acc[k..].iter_mut().zip(&src[k..]) {
        *a += weight * s;
    }
}

/// Defective-exponential survival: `1.0` before `delay`, else
/// `loss + scale * exp(neg_rate * (t - delay))`.
///
/// The `exp` itself is evaluated scalar per lane (there is no correctly
/// rounded vector exp), so lanes stay `to_bits`-identical to the scalar loop;
/// the surrounding affine work and the select are vectorized. Lanes with
/// `t < delay` still evaluate `exp` on garbage offsets — harmless (no traps,
/// result discarded by the select).
///
/// # Safety
/// Requires `V`'s ISA extension and `V::LANES <= MAX_LANES`.
#[inline(always)]
unsafe fn survival_exponential_body<V: LaneVector>(
    delay: f64,
    loss: f64,
    scale: f64,
    neg_rate: f64,
    ts: &mut [f64],
) {
    let len = ts.len();
    let mut k = 0;
    let mut scratch = [0.0f64; MAX_LANES];
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition,
    // and scratch holds MAX_LANES >= V::LANES elements.
    unsafe {
        let delay_v = V::splat(delay);
        let loss_v = V::splat(loss);
        let scale_v = V::splat(scale);
        let neg_rate_v = V::splat(neg_rate);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            let t = V::load(&ts[k..]);
            neg_rate_v.mul(t.sub(delay_v)).store(&mut scratch);
            for s in &mut scratch[..V::LANES] {
                *s = s.exp();
            }
            let tail = loss_v.add(scale_v.mul(V::load(&scratch)));
            V::select_lt(t, delay_v, one, tail).store(&mut ts[k..]);
            k += V::LANES;
        }
    }
    for t in &mut ts[k..] {
        *t = if *t < delay {
            1.0
        } else {
            loss + scale * (neg_rate * (*t - delay)).exp()
        };
    }
}

/// Deterministic (point-mass) survival: `survived` once `t >= delay`.
///
/// Uses `select_ge` (not an inverted `select_lt`) so NaN inputs map to `1.0`
/// exactly like the scalar `if *t >= delay` branch.
///
/// # Safety
/// Requires `V`'s ISA extension.
#[inline(always)]
unsafe fn survival_deterministic_body<V: LaneVector>(delay: f64, survived: f64, ts: &mut [f64]) {
    let len = ts.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    unsafe {
        let delay_v = V::splat(delay);
        let survived_v = V::splat(survived);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            let t = V::load(&ts[k..]);
            V::select_ge(t, delay_v, survived_v, one).store(&mut ts[k..]);
            k += V::LANES;
        }
    }
    for t in &mut ts[k..] {
        *t = if *t >= delay { survived } else { 1.0 };
    }
}

/// Uniform survival: `1.0` below `lo`, `survived` at/above `hi`, linear
/// interpolation `survived + mass * (hi - t) / width` in between.
///
/// Composed as two selects evaluating both arms; NaN inputs fall through both
/// quiet-ordered compares to the interpolated arm, which is NaN — matching
/// the scalar chain where NaN reaches the `else` branch.
///
/// # Safety
/// Requires `V`'s ISA extension.
#[inline(always)]
unsafe fn survival_uniform_body<V: LaneVector>(
    lo: f64,
    hi: f64,
    mass: f64,
    survived: f64,
    width: f64,
    ts: &mut [f64],
) {
    let len = ts.len();
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition.
    unsafe {
        let lo_v = V::splat(lo);
        let hi_v = V::splat(hi);
        let mass_v = V::splat(mass);
        let survived_v = V::splat(survived);
        let width_v = V::splat(width);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            let t = V::load(&ts[k..]);
            let fraction_remaining = hi_v.sub(t).div(width_v);
            let interior = survived_v.add(mass_v.mul(fraction_remaining));
            let above_lo = V::select_ge(t, hi_v, survived_v, interior);
            V::select_lt(t, lo_v, one, above_lo).store(&mut ts[k..]);
            k += V::LANES;
        }
    }
    for t in &mut ts[k..] {
        *t = if *t < lo {
            1.0
        } else if *t >= hi {
            survived
        } else {
            let fraction_remaining = (hi - *t) / width;
            survived + mass * fraction_remaining
        };
    }
}

/// Defective-Weibull survival: `1.0` before `delay`, else
/// `survived + mass * exp(-((t - delay) / scale).powf(shape))`.
///
/// Like the exponential body, `powf`/`exp` run scalar per lane for bit parity
/// with the scalar loop; masked-off lanes may evaluate them on garbage
/// offsets, which cannot trap and is discarded by the select.
///
/// # Safety
/// Requires `V`'s ISA extension and `V::LANES <= MAX_LANES`.
#[inline(always)]
unsafe fn survival_weibull_body<V: LaneVector>(
    delay: f64,
    scale: f64,
    shape: f64,
    mass: f64,
    survived: f64,
    ts: &mut [f64],
) {
    let len = ts.len();
    let mut k = 0;
    let mut scratch = [0.0f64; MAX_LANES];
    // SAFETY: V's extension is active per this function's contract; every
    // load/store stays within the `len` bound checked by the loop condition,
    // and scratch holds MAX_LANES >= V::LANES elements.
    unsafe {
        let delay_v = V::splat(delay);
        let scale_v = V::splat(scale);
        let mass_v = V::splat(mass);
        let survived_v = V::splat(survived);
        let one = V::splat(1.0);
        while k + V::LANES <= len {
            let t = V::load(&ts[k..]);
            t.sub(delay_v).div(scale_v).store(&mut scratch);
            for s in &mut scratch[..V::LANES] {
                *s = (-s.powf(shape)).exp();
            }
            let tail = survived_v.add(mass_v.mul(V::load(&scratch)));
            V::select_lt(t, delay_v, one, tail).store(&mut ts[k..]);
            k += V::LANES;
        }
    }
    for t in &mut ts[k..] {
        *t = if *t < delay {
            1.0
        } else {
            let hazard = ((*t - delay) / scale).powf(shape);
            survived + mass * (-hazard).exp()
        };
    }
}

/// The column cost/error pass shared by `ColumnKernel::evaluate_with_statistic`
/// and `ParamLandscape::reconstruct`. Element `k` is probe count `n = k + 1`.
///
/// `FAST == false` keeps the scalar association exactly; `FAST == true` fuses
/// the denominator (`fma(q, πn, 1-q)`, algebraically `1 - q(1-πn)`) and the
/// numerator chain, trading bit identity for fewer roundings.
///
/// # Safety
/// Requires `V`'s ISA extension (FMA too when `FAST`); `prefix`, `tail`, and
/// any provided output slice must share one length, and `V::LANES <= MAX_LANES`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn cost_pass_body<V: LaneVector, const FAST: bool>(
    q: f64,
    one_minus_q: f64,
    q_error_cost: f64,
    r_plus_c: f64,
    r_plus_c_q: f64,
    prefix: &[f64],
    tail: &[f64],
    mut costs: Option<&mut [f64]>,
    mut errors: Option<&mut [f64]>,
) {
    let len = tail.len();
    debug_assert_eq!(prefix.len(), len);
    let mut lane_index = [0.0f64; MAX_LANES];
    for (i, slot) in lane_index.iter_mut().enumerate() {
        *slot = (i + 1) as f64;
    }
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract (FMA when
    // FAST); every load/store stays within the shared `len` bound checked by
    // the loop condition, and lane_index holds MAX_LANES >= V::LANES
    // elements. `n` stays an exact small-integer f64 under repeated +LANES.
    unsafe {
        let q_v = V::splat(q);
        let one_minus_q_v = V::splat(one_minus_q);
        let q_error_cost_v = V::splat(q_error_cost);
        let r_plus_c_v = V::splat(r_plus_c);
        let r_plus_c_q_v = V::splat(r_plus_c_q);
        let one = V::splat(1.0);
        let step = V::splat(V::LANES as f64);
        let mut n_v = V::load(&lane_index);
        while k + V::LANES <= len {
            let pi_n = V::load(&tail[k..]);
            let denominator = if FAST {
                q_v.mul_add(pi_n, one_minus_q_v)
            } else {
                one.sub(q_v.mul(one.sub(pi_n)))
            };
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c_v.mul(n_v).mul(one_minus_q_v);
                let numerator = if FAST {
                    let pre = r_plus_c_q_v.mul_add(V::load(&prefix[k..]), free_address_probing);
                    q_error_cost_v.mul_add(pi_n, pre)
                } else {
                    let occupied_address_probing = r_plus_c_q_v.mul(V::load(&prefix[k..]));
                    let collision_penalty = q_error_cost_v.mul(pi_n);
                    free_address_probing
                        .add(occupied_address_probing)
                        .add(collision_penalty)
                };
                numerator.div(denominator).store(&mut costs[k..]);
            }
            if let Some(errors) = errors.as_deref_mut() {
                q_v.mul(pi_n).div(denominator).store(&mut errors[k..]);
            }
            n_v = n_v.add(step);
            k += V::LANES;
        }
    }
    for at in k..len {
        let n = (at + 1) as f64;
        let pi_n = tail[at];
        let denominator = 1.0 - q * (1.0 - pi_n);
        if let Some(costs) = costs.as_deref_mut() {
            let free_address_probing = r_plus_c * n * one_minus_q;
            let occupied_address_probing = r_plus_c_q * prefix[at];
            let collision_penalty = q_error_cost * pi_n;
            costs[at] =
                (free_address_probing + occupied_address_probing + collision_penalty) / denominator;
        }
        if let Some(errors) = errors.as_deref_mut() {
            errors[at] = q * pi_n / denominator;
        }
    }
}

/// The column-parallel blocked cost/error pass: `V::LANES` columns advance in
/// lockstep, one probe round per step. Lane `l` performs exactly the scalar
/// per-column program of `cost_block_pass_scalar` — the `0.0`-seeded left-fold
/// prefix (`prefix += π_{i−1}` on the step that evaluates `i`) and the same
/// left-associated numerator/denominator — so exact mode stays
/// `to_bits`-identical per lane while the serially-dependent prefix chains of
/// `LANES` columns retire concurrently. The probe-count coefficient starts at
/// `1.0` and advances by `+1.0` per round, which reproduces `i as f64` exactly
/// (small integers are exact in f64). Remainder columns (fewer than `LANES`
/// left) run the scalar program unchanged.
///
/// Outputs are r-major (column `j` at `out[j*n_max ..]`), so row stores
/// scatter lane by lane; gathers and scatters are scalar (no AVX2 gather —
/// its lane traps on faulting addresses differ, and the π rows live in L1
/// here anyway), only the arithmetic is wide.
///
/// # Safety
/// Requires `V`'s ISA extension (FMA too when `FAST`); every `tables[j]` must
/// hold at least `n_max + 1` entries, `r_plus_c`/`r_plus_c_q` one entry per
/// column, every provided output slice exactly `tables.len() * n_max`, and
/// `V::LANES <= MAX_LANES`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn cost_block_pass_body<V: LaneVector, const FAST: bool>(
    q: f64,
    one_minus_q: f64,
    q_error_cost: f64,
    r_plus_c: &[f64],
    r_plus_c_q: &[f64],
    n_max: usize,
    tables: &[&[f64]],
    mut costs: Option<&mut [f64]>,
    mut errors: Option<&mut [f64]>,
    mut pi_prefix: Option<&mut [f64]>,
    mut pi_n_out: Option<&mut [f64]>,
) {
    let n_cols = tables.len();
    debug_assert_eq!(r_plus_c.len(), n_cols);
    debug_assert_eq!(r_plus_c_q.len(), n_cols);
    let mut row = [0.0f64; MAX_LANES];
    let mut out_row = [0.0f64; MAX_LANES];
    let mut c0 = 0;
    // SAFETY: V's extension is active per this function's contract (FMA when
    // FAST). Lane loads/stores touch the MAX_LANES >= V::LANES scratch rows;
    // per-column reads `tables[c0 + l][i]` stay within the caller-asserted
    // `n_max + 1` table length for `i <= n_max` and `c0 + l < n_cols` by the
    // chunk loop condition; output writes land at `(c0 + l) * n_max + i - 1 <
    // n_cols * n_max`, the caller-asserted output length.
    unsafe {
        let q_v = V::splat(q);
        let one_minus_q_v = V::splat(one_minus_q);
        let q_error_cost_v = V::splat(q_error_cost);
        let one = V::splat(1.0);
        while c0 + V::LANES <= n_cols {
            let columns = &tables[c0..c0 + V::LANES];
            let rpc = V::load(&r_plus_c[c0..]);
            let rpcq = V::load(&r_plus_c_q[c0..]);
            let mut prefix = V::splat(0.0);
            let mut n_v = one;
            for (slot, table) in row.iter_mut().zip(columns) {
                // SAFETY: tables hold n_max + 1 >= 1 entries (caller assert).
                *slot = *table.get_unchecked(0);
            }
            let mut prev = V::load(&row);
            let mut drain_from = n_max + 1;
            for i in 1..=n_max {
                for (slot, table) in row.iter_mut().zip(columns) {
                    // SAFETY: i <= n_max < table.len() (caller assert).
                    *slot = *table.get_unchecked(i);
                }
                // Once every lane's π hits the zero tail it stays there
                // (π-tables are nonincreasing with an exact-zero tail), so
                // the remaining rounds take the cheaper drain loop below.
                // This round still runs the full body: its prefix update
                // folds in the last nonzero π row. The `== 0.0` check is
                // deliberately scalar — it rejects NaN lanes, so a table
                // violating the π contract falls through to the full body
                // rather than silently diverging from the scalar program.
                // The `one_minus_q > 0.0` guard keeps the degenerate q = 1
                // scenario (error term 0/0 = NaN) on the full body too.
                if one_minus_q > 0.0 && row[..V::LANES].iter().all(|&x| x == 0.0) {
                    drain_from = i + 1;
                }
                let pi_n = V::load(&row);
                // Lane l replays column (c0 + l)'s left fold exactly:
                // prefix += π_{i−1}, where prev carries last round's π row.
                prefix = prefix.add(prev);
                let denominator = if FAST {
                    q_v.mul_add(pi_n, one_minus_q_v)
                } else {
                    one.sub(q_v.mul(one.sub(pi_n)))
                };
                let at = i - 1;
                if let Some(costs) = costs.as_deref_mut() {
                    let free_address_probing = rpc.mul(n_v).mul(one_minus_q_v);
                    let numerator = if FAST {
                        let pre = rpcq.mul_add(prefix, free_address_probing);
                        q_error_cost_v.mul_add(pi_n, pre)
                    } else {
                        free_address_probing
                            .add(rpcq.mul(prefix))
                            .add(q_error_cost_v.mul(pi_n))
                    };
                    numerator.div(denominator).store(&mut out_row);
                    for (l, &value) in out_row[..V::LANES].iter().enumerate() {
                        // SAFETY: index < n_cols * n_max (caller assert).
                        *costs.get_unchecked_mut((c0 + l) * n_max + at) = value;
                    }
                }
                if let Some(errors) = errors.as_deref_mut() {
                    q_v.mul(pi_n).div(denominator).store(&mut out_row);
                    for (l, &value) in out_row[..V::LANES].iter().enumerate() {
                        // SAFETY: index < n_cols * n_max (caller assert).
                        *errors.get_unchecked_mut((c0 + l) * n_max + at) = value;
                    }
                }
                if let Some(out) = pi_prefix.as_deref_mut() {
                    prefix.store(&mut out_row);
                    for (l, &value) in out_row[..V::LANES].iter().enumerate() {
                        // SAFETY: index < n_cols * n_max (caller assert).
                        *out.get_unchecked_mut((c0 + l) * n_max + at) = value;
                    }
                }
                if let Some(out) = pi_n_out.as_deref_mut() {
                    for (l, &value) in row[..V::LANES].iter().enumerate() {
                        // SAFETY: index < n_cols * n_max (caller assert).
                        *out.get_unchecked_mut((c0 + l) * n_max + at) = value;
                    }
                }
                prev = pi_n;
                n_v = n_v.add(one);
                if drain_from <= n_max {
                    break;
                }
            }
            // Drain: every lane's π is an exact +0.0 from here on, which
            // collapses the per-round arithmetic without moving a bit:
            //   denominator = 1 − q·(1 − 0)   = the caller's 1 − q,
            //   collision   = q_error_cost·0  = +0.0 (adding it is the
            //                 identity on the strictly positive numerator),
            //   error       = q·0 / (1 − q)   = +0.0 exactly,
            //   prefix      += 0              = prefix (frozen).
            // FAST mode agrees: fma(x, 0, y) = y exactly. So the drain
            // pays one division per round instead of two, no gathers, and
            // no prefix fold — on cutoff-heavy grids that is most rounds.
            if drain_from <= n_max {
                let denominator = one_minus_q_v;
                let occupied = rpcq.mul(prefix);
                let frozen_prefix_row = {
                    let mut frozen = [0.0f64; MAX_LANES];
                    prefix.store(&mut frozen);
                    frozen
                };
                for i in drain_from..=n_max {
                    let at = i - 1;
                    if let Some(costs) = costs.as_deref_mut() {
                        let free_address_probing = rpc.mul(n_v).mul(one_minus_q_v);
                        let numerator = if FAST {
                            rpcq.mul_add(prefix, free_address_probing)
                        } else {
                            free_address_probing.add(occupied)
                        };
                        numerator.div(denominator).store(&mut out_row);
                        for (l, &value) in out_row[..V::LANES].iter().enumerate() {
                            // SAFETY: index < n_cols * n_max (caller assert).
                            *costs.get_unchecked_mut((c0 + l) * n_max + at) = value;
                        }
                    }
                    if let Some(errors) = errors.as_deref_mut() {
                        for l in 0..V::LANES {
                            // SAFETY: index < n_cols * n_max (caller assert).
                            *errors.get_unchecked_mut((c0 + l) * n_max + at) = 0.0;
                        }
                    }
                    if let Some(out) = pi_prefix.as_deref_mut() {
                        for (l, &value) in frozen_prefix_row[..V::LANES].iter().enumerate() {
                            // SAFETY: index < n_cols * n_max (caller assert).
                            *out.get_unchecked_mut((c0 + l) * n_max + at) = value;
                        }
                    }
                    if let Some(out) = pi_n_out.as_deref_mut() {
                        for l in 0..V::LANES {
                            // SAFETY: index < n_cols * n_max (caller assert).
                            *out.get_unchecked_mut((c0 + l) * n_max + at) = 0.0;
                        }
                    }
                    n_v = n_v.add(one);
                }
            }
            c0 += V::LANES;
        }
    }
    // Remainder columns: the scalar reference program, column by column.
    for (j, table) in tables.iter().enumerate().skip(c0) {
        let base = j * n_max;
        let mut prefix_sum = 0.0f64;
        for i in 1..=n_max {
            prefix_sum += table[i - 1];
            let pi_n = table[i];
            let at = base + (i - 1);
            let denominator = 1.0 - q * (1.0 - pi_n);
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c[j] * i as f64 * one_minus_q;
                let occupied_address_probing = r_plus_c_q[j] * prefix_sum;
                let collision_penalty = q_error_cost * pi_n;
                costs[at] = (free_address_probing + occupied_address_probing + collision_penalty)
                    / denominator;
            }
            if let Some(errors) = errors.as_deref_mut() {
                errors[at] = q * pi_n / denominator;
            }
            if let Some(prefix) = pi_prefix.as_deref_mut() {
                prefix[at] = prefix_sum;
            }
            if let Some(tail) = pi_n_out.as_deref_mut() {
                tail[at] = pi_n;
            }
        }
    }
}

/// One column of `ParamLandscape::min_cost_cell`: scan `prefix`/`tail` for the
/// cheapest cell under `incumbent`, returning the winning element index and
/// the updated incumbent.
///
/// The vector pass only *filters*: a chunk is skipped when no lane's
/// numerator beats the incumbent as of the chunk start (the incumbent is
/// monotonically non-increasing, so skipping is conservative); any chunk with
/// a candidate lane is replayed by the exact scalar loop, preserving the
/// scalar selection order bit-for-bit. The scalar early-exit
/// (`free_probing >= incumbent`, valid because `free_probing` grows with `n`
/// while every other numerator term is non-negative) is checked per chunk on
/// lane 0 and inside every replay.
///
/// # Safety
/// Requires `V`'s ISA extension; `prefix.len() == tail.len()` and
/// `V::LANES <= MAX_LANES`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn min_cost_scan_body<V: LaneVector>(
    q: f64,
    one_minus_q: f64,
    q_error_cost: f64,
    r_plus_c: f64,
    r_plus_c_q: f64,
    prefix: &[f64],
    tail: &[f64],
    mut incumbent: f64,
) -> (Option<usize>, f64) {
    let len = tail.len();
    debug_assert_eq!(prefix.len(), len);
    let mut best: Option<usize> = None;
    let mut lane_index = [0.0f64; MAX_LANES];
    for (i, slot) in lane_index.iter_mut().enumerate() {
        *slot = (i + 1) as f64;
    }
    let mut k = 0;
    // SAFETY: V's extension is active per this function's contract; every
    // load stays within the shared `len` bound checked by the loop condition,
    // and lane_index holds MAX_LANES >= V::LANES elements.
    unsafe {
        let one_minus_q_v = V::splat(one_minus_q);
        let q_error_cost_v = V::splat(q_error_cost);
        let r_plus_c_v = V::splat(r_plus_c);
        let r_plus_c_q_v = V::splat(r_plus_c_q);
        while k + V::LANES <= len {
            let first_free_probing = r_plus_c * (k + 1) as f64 * one_minus_q;
            if first_free_probing >= incumbent {
                return (best, incumbent);
            }
            let free_v = r_plus_c_v.mul(V::load(&lane_index)).mul(one_minus_q_v);
            let numerator_v = free_v
                .add(r_plus_c_q_v.mul(V::load(&prefix[k..])))
                .add(q_error_cost_v.mul(V::load(&tail[k..])));
            if V::any_lt(numerator_v, V::splat(incumbent)) {
                for at in k..k + V::LANES {
                    let free_probing = r_plus_c * (at + 1) as f64 * one_minus_q;
                    if free_probing >= incumbent {
                        return (best, incumbent);
                    }
                    let pi_n = tail[at];
                    let numerator = free_probing + r_plus_c_q * prefix[at] + q_error_cost * pi_n;
                    if numerator < incumbent {
                        let denominator = 1.0 - q * (1.0 - pi_n);
                        let cost = numerator / denominator;
                        if cost.is_finite() && cost < incumbent {
                            incumbent = cost;
                            best = Some(at);
                        }
                    }
                }
            }
            for slot in &mut lane_index[..V::LANES] {
                *slot += V::LANES as f64;
            }
            k += V::LANES;
        }
    }
    for at in k..len {
        let free_probing = r_plus_c * (at + 1) as f64 * one_minus_q;
        if free_probing >= incumbent {
            break;
        }
        let pi_n = tail[at];
        let numerator = free_probing + r_plus_c_q * prefix[at] + q_error_cost * pi_n;
        if numerator < incumbent {
            let denominator = 1.0 - q * (1.0 - pi_n);
            let cost = numerator / denominator;
            if cost.is_finite() && cost < incumbent {
                incumbent = cost;
                best = Some(at);
            }
        }
    }
    (best, incumbent)
}

// ---------------------------------------------------------------------------
// Feature-gated instantiations. These are the only functions `lib.rs` calls;
// each carries the runtime-detection obligation in its `# Safety` contract.
// The AVX2 tier enables `avx2,fma` together (detection requires both), the
// AVX-512 tier enables `avx512f` (which includes fused multiply-add).
// ---------------------------------------------------------------------------

macro_rules! instantiate {
    ($avx2:ident, $avx512:ident, $body:ident $(,const $flag:ident)? =>
        ($($arg:ident : $ty:ty),*) $(-> $ret:ty)?) => {
        /// # Safety
        /// Caller must have runtime-verified AVX2 and FMA support.
        #[target_feature(enable = "avx2,fma")]
        #[allow(clippy::too_many_arguments)]
        pub(crate) unsafe fn $avx2($($flag: bool,)? $($arg: $ty),*) $(-> $ret)? {
            // SAFETY: AVX2+FMA are available per this function's contract;
            // the generic body only uses F64x4 lane ops.
            unsafe {
                instantiate!(@call $body, F64x4 $(,$flag)? => ($($arg),*))
            }
        }

        /// # Safety
        /// Caller must have runtime-verified AVX-512F support.
        #[target_feature(enable = "avx512f")]
        #[allow(clippy::too_many_arguments)]
        pub(crate) unsafe fn $avx512($($flag: bool,)? $($arg: $ty),*) $(-> $ret)? {
            // SAFETY: AVX-512F is available per this function's contract; the
            // generic body only uses F64x8 lane ops.
            unsafe {
                instantiate!(@call $body, F64x8 $(,$flag)? => ($($arg),*))
            }
        }
    };
    (@call $body:ident, $vec:ident => ($($arg:ident),*)) => {
        $body::<$vec>($($arg),*)
    };
    (@call $body:ident, $vec:ident, $flag:ident => ($($arg:ident),*)) => {
        if $flag {
            $body::<$vec, true>($($arg),*)
        } else {
            $body::<$vec, false>($($arg),*)
        }
    };
}

instantiate!(fill_scaled_avx2, fill_scaled_avx512, fill_scaled_body =>
    (scale: f64, rs: &[f64], out: &mut [f64]));
instantiate!(clamp_unit_avx2, clamp_unit_avx512, clamp_unit_body =>
    (xs: &mut [f64]));
instantiate!(div_clamp_unit_avx2, div_clamp_unit_avx512, div_clamp_unit_body =>
    (base: f64, xs: &mut [f64]));
instantiate!(weighted_accumulate_avx2, weighted_accumulate_avx512, weighted_accumulate_body =>
    (weight: f64, src: &[f64], acc: &mut [f64]));
instantiate!(survival_exponential_avx2, survival_exponential_avx512, survival_exponential_body =>
    (delay: f64, loss: f64, scale: f64, neg_rate: f64, ts: &mut [f64]));
instantiate!(survival_deterministic_avx2, survival_deterministic_avx512, survival_deterministic_body =>
    (delay: f64, survived: f64, ts: &mut [f64]));
instantiate!(survival_uniform_avx2, survival_uniform_avx512, survival_uniform_body =>
    (lo: f64, hi: f64, mass: f64, survived: f64, width: f64, ts: &mut [f64]));
instantiate!(survival_weibull_avx2, survival_weibull_avx512, survival_weibull_body =>
    (delay: f64, scale: f64, shape: f64, mass: f64, survived: f64, ts: &mut [f64]));
instantiate!(cost_pass_avx2, cost_pass_avx512, cost_pass_body, const fast =>
    (q: f64, one_minus_q: f64, q_error_cost: f64, r_plus_c: f64, r_plus_c_q: f64,
     prefix: &[f64], tail: &[f64], costs: Option<&mut [f64]>, errors: Option<&mut [f64]>));
instantiate!(cost_block_pass_avx2, cost_block_pass_avx512, cost_block_pass_body, const fast =>
    (q: f64, one_minus_q: f64, q_error_cost: f64, r_plus_c: &'_ [f64], r_plus_c_q: &'_ [f64],
     n_max: usize, tables: &'_ [&'_ [f64]], costs: Option<&mut [f64]>, errors: Option<&mut [f64]>,
     pi_prefix: Option<&mut [f64]>, pi_n_out: Option<&mut [f64]>));
instantiate!(min_cost_scan_avx2, min_cost_scan_avx512, min_cost_scan_body =>
    (q: f64, one_minus_q: f64, q_error_cost: f64, r_plus_c: f64, r_plus_c_q: f64,
     prefix: &[f64], tail: &[f64], incumbent: f64) -> (Option<usize>, f64));
