//! Runtime-dispatched f64 lane kernels for the zeroconf cost model.
//!
//! This crate owns the workspace's only explicit SIMD: a small
//! `f64x4`/`f64x8` lane abstraction (see `lanes.rs`) instantiated for AVX2 and
//! AVX-512F via `std::arch`, with a portable scalar fallback on every other
//! target. The public functions here are all *safe*: each one re-checks the
//! requested [`Backend`] against the CPU's actual capabilities (cached
//! `is_x86_feature_detected!` probes) before entering an `unsafe`
//! feature-gated instantiation, and degrades to the scalar reference loop
//! otherwise. The scalar loops in this file are the normative programs — the
//! vector bodies replicate their operation order so the `exact` mode stays
//! `to_bits`-identical (proven by the parity suites in `crates/dist` and
//! `crates/core`).
//!
//! Two dispatch modes exist for the cost/error pass: [`Mode::Exact`]
//! (bit-identical) and [`Mode::Fast`] (fused multiply-adds, reassociated
//! numerator; ULP-bounded against exact, documented in DESIGN.md). π-table
//! construction is *always* exact: cached tables are shared across requests
//! and spilled to disk, so they must be backend- and mode-invariant.

#![deny(unsafe_op_in_unsafe_fn)]

mod lanes;

use std::sync::OnceLock;

/// The instruction tier a kernel actually ran with.
///
/// Ordered so that `min` over a set of observations yields the weakest tier
/// that participated — the engine uses this to surface silent scalar
/// fallbacks in its stats block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Backend {
    /// Portable scalar reference loops.
    Scalar = 0,
    /// 4-lane `__m256d` (requires AVX2 and FMA).
    Avx2 = 1,
    /// 8-lane `__m512d` (requires AVX-512F).
    Avx512 = 2,
}

impl Backend {
    /// Probe the CPU once and return the widest supported tier.
    ///
    /// The AVX2 tier also requires FMA (used by [`Mode::Fast`]); the two have
    /// shipped together on every AVX2-capable x86-64 part, so gating on both
    /// costs nothing and keeps fast-mode dispatch uniform.
    pub fn detect() -> Backend {
        static DETECTED: OnceLock<Backend> = OnceLock::new();
        *DETECTED.get_or_init(Self::probe)
    }

    #[cfg(target_arch = "x86_64")]
    fn probe() -> Backend {
        if std::arch::is_x86_feature_detected!("avx512f") {
            Backend::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn probe() -> Backend {
        Backend::Scalar
    }

    /// Number of f64 lanes a kernel processes per step on this tier.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => 4,
            Backend::Avx512 => 8,
        }
    }

    /// Stable lowercase label used in stats blocks and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Recover a backend from its `repr(u8)` discriminant (for atomics).
    pub fn from_u8(raw: u8) -> Backend {
        match raw {
            2 => Backend::Avx512,
            1 => Backend::Avx2,
            _ => Backend::Scalar,
        }
    }

    /// Clamp a requested tier to what the CPU can actually run.
    ///
    /// This is what makes the public kernels safe: no matter what a caller
    /// asks for, dispatch never exceeds the detected tier.
    fn effective(self) -> Backend {
        self.min(Self::detect())
    }
}

/// Rounding discipline for the cost/error pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Operation order matches the scalar kernel; results are
    /// `to_bits`-identical on every backend.
    #[default]
    Exact,
    /// Fused multiply-adds and a reassociated numerator/denominator; faster,
    /// bounded-ULP divergence from `Exact` (see the golden tests).
    Fast,
}

/// A kernel-selection policy, as expressed on the command line
/// (`--kernel scalar|simd|auto`) or via the `ZEROCONF_KERNEL` variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelChoice {
    /// Force the scalar reference loops.
    Scalar,
    /// Force SIMD: the widest detected tier (still scalar on hosts with
    /// neither AVX2 nor AVX-512).
    Simd,
    /// Honor `ZEROCONF_KERNEL` if set, otherwise behave like `Simd`.
    #[default]
    Auto,
}

impl KernelChoice {
    /// Parse a CLI/env spelling. Accepts `scalar`, `simd`, and `auto`.
    pub fn parse(value: &str) -> Option<KernelChoice> {
        match value {
            "scalar" => Some(KernelChoice::Scalar),
            "simd" => Some(KernelChoice::Simd),
            "auto" => Some(KernelChoice::Auto),
            _ => None,
        }
    }

    /// Spelling accepted by [`KernelChoice::parse`].
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Scalar => "scalar",
            KernelChoice::Simd => "simd",
            KernelChoice::Auto => "auto",
        }
    }

    /// Resolve the policy to a concrete backend.
    ///
    /// Only `Auto` consults the `ZEROCONF_KERNEL` environment variable (an
    /// unrecognized value is ignored); explicit choices win over it, which is
    /// what lets ci.sh force both backends through an unmodified binary.
    pub fn resolve(self) -> Backend {
        match self {
            KernelChoice::Scalar => Backend::Scalar,
            KernelChoice::Simd => Backend::detect(),
            KernelChoice::Auto => match env_choice() {
                Some(KernelChoice::Scalar) => Backend::Scalar,
                _ => Backend::detect(),
            },
        }
    }
}

fn env_choice() -> Option<KernelChoice> {
    static ENV: OnceLock<Option<KernelChoice>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("ZEROCONF_KERNEL")
            .ok()
            .and_then(|v| KernelChoice::parse(v.trim()))
    })
}

/// The per-column scenario constants consumed by [`cost_pass`] and
/// [`min_cost_scan`]; mirrors `ScenarioFactors` plus the per-column
/// `r + probe_cost` hoists from `crates/core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnTerms {
    /// Collision probability `q`.
    pub q: f64,
    /// `1 - q`.
    pub one_minus_q: f64,
    /// `q * error_cost`.
    pub q_error_cost: f64,
    /// `r + probe_cost` for this column.
    pub r_plus_c: f64,
    /// `(r + probe_cost) * q` for this column.
    pub r_plus_c_q: f64,
}

macro_rules! dispatch {
    ($backend:expr, $avx2:ident($($a2:expr),*), $avx512:ident($($a5:expr),*), $scalar:block) => {
        match $backend.effective() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                // SAFETY: `effective` only returns Avx2 after
                // `is_x86_feature_detected!` confirmed AVX2 and FMA, which is
                // exactly the instantiation's contract.
                unsafe { lanes::$avx2($($a2),*) };
                Backend::Avx2
            }
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => {
                // SAFETY: `effective` only returns Avx512 after
                // `is_x86_feature_detected!` confirmed AVX-512F, which is
                // exactly the instantiation's contract.
                unsafe { lanes::$avx512($($a5),*) };
                Backend::Avx512
            }
            _ => {
                $scalar
                Backend::Scalar
            }
        }
    };
}

/// `out[k] = scale * rs[k]`. Returns the backend that ran.
///
/// # Panics
/// When `rs` and `out` differ in length.
pub fn fill_scaled(backend: Backend, scale: f64, rs: &[f64], out: &mut [f64]) -> Backend {
    assert_eq!(
        rs.len(),
        out.len(),
        "fill_scaled slices must share a length"
    );
    dispatch!(
        backend,
        fill_scaled_avx2(scale, rs, out),
        fill_scaled_avx512(scale, rs, out),
        {
            for (t, &r) in out.iter_mut().zip(rs) {
                *t = scale * r;
            }
        }
    )
}

/// `xs[k] = xs[k].clamp(0.0, 1.0)` (NaN propagates, as with `f64::clamp`).
/// Returns the backend that ran.
pub fn clamp_unit(backend: Backend, xs: &mut [f64]) -> Backend {
    dispatch!(backend, clamp_unit_avx2(xs), clamp_unit_avx512(xs), {
        for x in xs.iter_mut() {
            *x = x.clamp(0.0, 1.0);
        }
    })
}

/// `xs[k] = (xs[k] / base).clamp(0.0, 1.0)`. Returns the backend that ran.
pub fn div_clamp_unit(backend: Backend, base: f64, xs: &mut [f64]) -> Backend {
    dispatch!(
        backend,
        div_clamp_unit_avx2(base, xs),
        div_clamp_unit_avx512(base, xs),
        {
            for x in xs.iter_mut() {
                *x = (*x / base).clamp(0.0, 1.0);
            }
        }
    )
}

/// `acc[k] += weight * src[k]`. Returns the backend that ran.
///
/// # Panics
/// When `acc` and `src` differ in length.
pub fn weighted_accumulate(backend: Backend, weight: f64, src: &[f64], acc: &mut [f64]) -> Backend {
    assert_eq!(
        acc.len(),
        src.len(),
        "weighted_accumulate slices must share a length"
    );
    dispatch!(
        backend,
        weighted_accumulate_avx2(weight, src, acc),
        weighted_accumulate_avx512(weight, src, acc),
        {
            for (a, &s) in acc.iter_mut().zip(src) {
                *a += weight * s;
            }
        }
    )
}

/// Defective-exponential survival over `ts` in place:
/// `1.0` before `delay`, else `loss + scale * exp(neg_rate * (t - delay))`.
/// Returns the backend that ran.
pub fn survival_exponential(
    backend: Backend,
    delay: f64,
    loss: f64,
    scale: f64,
    neg_rate: f64,
    ts: &mut [f64],
) -> Backend {
    dispatch!(
        backend,
        survival_exponential_avx2(delay, loss, scale, neg_rate, ts),
        survival_exponential_avx512(delay, loss, scale, neg_rate, ts),
        {
            for t in ts.iter_mut() {
                *t = if *t < delay {
                    1.0
                } else {
                    loss + scale * (neg_rate * (*t - delay)).exp()
                };
            }
        }
    )
}

/// Deterministic (point-mass) survival over `ts` in place:
/// `survived` once `t >= delay`, else `1.0`. Returns the backend that ran.
pub fn survival_deterministic(
    backend: Backend,
    delay: f64,
    survived: f64,
    ts: &mut [f64],
) -> Backend {
    dispatch!(
        backend,
        survival_deterministic_avx2(delay, survived, ts),
        survival_deterministic_avx512(delay, survived, ts),
        {
            for t in ts.iter_mut() {
                *t = if *t >= delay { survived } else { 1.0 };
            }
        }
    )
}

/// Uniform survival over `ts` in place: `1.0` below `lo`, `survived` at/above
/// `hi`, linear in between. Returns the backend that ran.
pub fn survival_uniform(
    backend: Backend,
    lo: f64,
    hi: f64,
    mass: f64,
    survived: f64,
    width: f64,
    ts: &mut [f64],
) -> Backend {
    dispatch!(
        backend,
        survival_uniform_avx2(lo, hi, mass, survived, width, ts),
        survival_uniform_avx512(lo, hi, mass, survived, width, ts),
        {
            for t in ts.iter_mut() {
                *t = if *t < lo {
                    1.0
                } else if *t >= hi {
                    survived
                } else {
                    let fraction_remaining = (hi - *t) / width;
                    survived + mass * fraction_remaining
                };
            }
        }
    )
}

/// Defective-Weibull survival over `ts` in place: `1.0` before `delay`, else
/// `survived + mass * exp(-((t - delay) / scale).powf(shape))`. Returns the
/// backend that ran.
pub fn survival_weibull(
    backend: Backend,
    delay: f64,
    scale: f64,
    shape: f64,
    mass: f64,
    survived: f64,
    ts: &mut [f64],
) -> Backend {
    dispatch!(
        backend,
        survival_weibull_avx2(delay, scale, shape, mass, survived, ts),
        survival_weibull_avx512(delay, scale, shape, mass, survived, ts),
        {
            for t in ts.iter_mut() {
                *t = if *t < delay {
                    1.0
                } else {
                    let hazard = ((*t - delay) / scale).powf(shape);
                    survived + mass * (-hazard).exp()
                };
            }
        }
    )
}

/// The column cost/error pass over precomputed π sufficient statistics.
/// Element `k` is probe count `n = k + 1`; writes any output slice provided.
/// Returns the backend that ran.
///
/// # Panics
/// When `prefix`, `tail`, or a provided output slice disagree on length.
pub fn cost_pass(
    backend: Backend,
    mode: Mode,
    terms: ColumnTerms,
    prefix: &[f64],
    tail: &[f64],
    costs: Option<&mut [f64]>,
    errors: Option<&mut [f64]>,
) -> Backend {
    assert_eq!(
        prefix.len(),
        tail.len(),
        "cost_pass statistics must share a length"
    );
    if let Some(costs) = costs.as_deref() {
        assert_eq!(
            costs.len(),
            tail.len(),
            "cost_pass cost slice must share the length"
        );
    }
    if let Some(errors) = errors.as_deref() {
        assert_eq!(
            errors.len(),
            tail.len(),
            "cost_pass error slice must share the length"
        );
    }
    let fast = mode == Mode::Fast;
    let ColumnTerms {
        q,
        one_minus_q,
        q_error_cost,
        r_plus_c,
        r_plus_c_q,
    } = terms;
    dispatch!(
        backend,
        cost_pass_avx2(
            fast,
            q,
            one_minus_q,
            q_error_cost,
            r_plus_c,
            r_plus_c_q,
            prefix,
            tail,
            costs,
            errors
        ),
        cost_pass_avx512(
            fast,
            q,
            one_minus_q,
            q_error_cost,
            r_plus_c,
            r_plus_c_q,
            prefix,
            tail,
            costs,
            errors
        ),
        {
            let mut costs = costs;
            let mut errors = errors;
            for (at, (&pi_n, &pi_prefix)) in tail.iter().zip(prefix).enumerate() {
                let denominator = 1.0 - q * (1.0 - pi_n);
                if let Some(costs) = costs.as_deref_mut() {
                    let free_address_probing = r_plus_c * (at + 1) as f64 * one_minus_q;
                    let occupied_address_probing = r_plus_c_q * pi_prefix;
                    let collision_penalty = q_error_cost * pi_n;
                    costs[at] =
                        (free_address_probing + occupied_address_probing + collision_penalty)
                            / denominator;
                }
                if let Some(errors) = errors.as_deref_mut() {
                    errors[at] = q * pi_n / denominator;
                }
            }
        }
    )
}

/// The scenario-constant (broadcast) factors of the column-parallel
/// blocked pass [`cost_block_pass`]; the per-column `r + c` terms travel
/// as slices instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockTerms {
    /// Collision probability `q`.
    pub q: f64,
    /// `1 - q`.
    pub one_minus_q: f64,
    /// `q * error_cost`.
    pub q_error_cost: f64,
}

/// Column-parallel cost/error pass over a whole block of π-tables: `LANES`
/// columns advance in lockstep, one probe round per step, with lane `j`
/// running *exactly* the scalar per-column program — its own `0.0`-seeded
/// left-fold π prefix and the same operation association — so exact mode
/// stays `to_bits`-identical while the serially-dependent prefix chain is
/// amortized across `LANES` independent columns. This is the structural
/// win over [`cost_pass`], which pays the full prefix-add latency chain
/// column by column.
///
/// Outputs are r-major: column `j` occupies `out[j*n_max .. (j+1)*n_max]`.
/// Returns the backend that ran.
///
/// Once every column of a chunk reaches the π-tables' exact-zero tail,
/// the vector tiers switch to a drain loop that pays one division per
/// round instead of two and skips the gathers — an algebraic collapse
/// (`q·0/d = +0.0`, `x + q_error_cost·0 = x`, `1 − q·(1 − 0) = 1 − q`)
/// that moves no bits. The drain leans on π-table structure: entries in
/// `[0, 1]`, nonincreasing per column, zero tails exact (`NaN` entries —
/// which only a caller violating the π contract can produce — are
/// detected and keep the full per-round program instead).
///
/// # Panics
/// When `r_plus_c`, `r_plus_c_q`, and `tables` disagree on the column
/// count, any table holds fewer than `n_max + 1` entries, or a provided
/// output slice is not exactly `tables.len() * n_max` long.
#[allow(clippy::too_many_arguments)]
pub fn cost_block_pass(
    backend: Backend,
    mode: Mode,
    terms: BlockTerms,
    r_plus_c: &[f64],
    r_plus_c_q: &[f64],
    n_max: usize,
    tables: &[&[f64]],
    costs: Option<&mut [f64]>,
    errors: Option<&mut [f64]>,
    pi_prefix: Option<&mut [f64]>,
    pi_n_out: Option<&mut [f64]>,
) -> Backend {
    let n_cols = tables.len();
    assert_eq!(
        r_plus_c.len(),
        n_cols,
        "cost_block_pass needs one r + c per column"
    );
    assert_eq!(
        r_plus_c_q.len(),
        n_cols,
        "cost_block_pass needs one (r + c)q per column"
    );
    for table in tables {
        assert!(
            table.len() > n_max,
            "cost_block_pass tables need n_max + 1 entries"
        );
    }
    let cells = n_cols * n_max;
    for slice in [
        costs.as_deref(),
        errors.as_deref(),
        pi_prefix.as_deref(),
        pi_n_out.as_deref(),
    ]
    .into_iter()
    .flatten()
    {
        assert_eq!(
            slice.len(),
            cells,
            "cost_block_pass outputs must hold n_cols * n_max entries"
        );
    }
    let fast = mode == Mode::Fast;
    let BlockTerms {
        q,
        one_minus_q,
        q_error_cost,
    } = terms;
    dispatch!(
        backend,
        cost_block_pass_avx2(
            fast,
            q,
            one_minus_q,
            q_error_cost,
            r_plus_c,
            r_plus_c_q,
            n_max,
            tables,
            costs,
            errors,
            pi_prefix,
            pi_n_out
        ),
        cost_block_pass_avx512(
            fast,
            q,
            one_minus_q,
            q_error_cost,
            r_plus_c,
            r_plus_c_q,
            n_max,
            tables,
            costs,
            errors,
            pi_prefix,
            pi_n_out
        ),
        {
            cost_block_pass_scalar(
                q,
                one_minus_q,
                q_error_cost,
                r_plus_c,
                r_plus_c_q,
                n_max,
                tables,
                costs,
                errors,
                pi_prefix,
                pi_n_out,
            );
        }
    )
}

/// The normative scalar program of [`cost_block_pass`]: the per-column
/// single-pass loop of `ColumnKernel`, column by column, r-major. Every
/// vector body replays exactly this association per lane.
#[allow(clippy::too_many_arguments)]
fn cost_block_pass_scalar(
    q: f64,
    one_minus_q: f64,
    q_error_cost: f64,
    r_plus_c: &[f64],
    r_plus_c_q: &[f64],
    n_max: usize,
    tables: &[&[f64]],
    mut costs: Option<&mut [f64]>,
    mut errors: Option<&mut [f64]>,
    mut pi_prefix: Option<&mut [f64]>,
    mut pi_n_out: Option<&mut [f64]>,
) {
    for (j, table) in tables.iter().enumerate() {
        let base = j * n_max;
        let mut prefix_sum = 0.0f64;
        for i in 1..=n_max {
            prefix_sum += table[i - 1];
            let pi_n = table[i];
            let at = base + (i - 1);
            let denominator = 1.0 - q * (1.0 - pi_n);
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c[j] * i as f64 * one_minus_q;
                let occupied_address_probing = r_plus_c_q[j] * prefix_sum;
                let collision_penalty = q_error_cost * pi_n;
                costs[at] = (free_address_probing + occupied_address_probing + collision_penalty)
                    / denominator;
            }
            if let Some(errors) = errors.as_deref_mut() {
                errors[at] = q * pi_n / denominator;
            }
            if let Some(prefix) = pi_prefix.as_deref_mut() {
                prefix[at] = prefix_sum;
            }
            if let Some(tail) = pi_n_out.as_deref_mut() {
                tail[at] = pi_n;
            }
        }
    }
}

/// One column of the `min_cost_cell` scan: find the cheapest element under
/// `incumbent`. Returns the winning element index (probe count `n = k + 1`)
/// if any cell improved on the incumbent, plus the updated incumbent.
///
/// Selection is `to_bits`-faithful to the scalar loop on every backend: the
/// vector pass only skips chunks whose numerators all fail the incumbent
/// test, and replays candidate chunks with the scalar program (see
/// `lanes::min_cost_scan_body` for the monotonicity argument).
///
/// # Panics
/// When `prefix` and `tail` differ in length.
pub fn min_cost_scan(
    backend: Backend,
    terms: ColumnTerms,
    prefix: &[f64],
    tail: &[f64],
    incumbent: f64,
) -> (Option<usize>, f64) {
    assert_eq!(
        prefix.len(),
        tail.len(),
        "min_cost_scan statistics must share a length"
    );
    let ColumnTerms {
        q,
        one_minus_q,
        q_error_cost,
        r_plus_c,
        r_plus_c_q,
    } = terms;
    match backend.effective() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            // SAFETY: `effective` only returns Avx2 after
            // `is_x86_feature_detected!` confirmed AVX2 and FMA, which is
            // exactly the instantiation's contract.
            unsafe {
                lanes::min_cost_scan_avx2(
                    q,
                    one_minus_q,
                    q_error_cost,
                    r_plus_c,
                    r_plus_c_q,
                    prefix,
                    tail,
                    incumbent,
                )
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => {
            // SAFETY: `effective` only returns Avx512 after
            // `is_x86_feature_detected!` confirmed AVX-512F, which is exactly
            // the instantiation's contract.
            unsafe {
                lanes::min_cost_scan_avx512(
                    q,
                    one_minus_q,
                    q_error_cost,
                    r_plus_c,
                    r_plus_c_q,
                    prefix,
                    tail,
                    incumbent,
                )
            }
        }
        _ => {
            let mut incumbent = incumbent;
            let mut best = None;
            for (at, (&pi_n, &pi_prefix)) in tail.iter().zip(prefix).enumerate() {
                let free_probing = r_plus_c * (at + 1) as f64 * one_minus_q;
                if free_probing >= incumbent {
                    break;
                }
                let numerator = free_probing + r_plus_c_q * pi_prefix + q_error_cost * pi_n;
                if numerator < incumbent {
                    let denominator = 1.0 - q * (1.0 - pi_n);
                    let cost = numerator / denominator;
                    if cost.is_finite() && cost < incumbent {
                        incumbent = cost;
                        best = Some(at);
                    }
                }
            }
            (best, incumbent)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| (i as f64).sin().abs() * 3.0 - 0.5)
            .collect()
    }

    fn backends() -> Vec<Backend> {
        let mut tiers = vec![Backend::Scalar];
        if Backend::detect() >= Backend::Avx2 {
            tiers.push(Backend::Avx2);
        }
        if Backend::detect() >= Backend::Avx512 {
            tiers.push(Backend::Avx512);
        }
        tiers
    }

    #[test]
    fn backend_ordering_reflects_capability_tiers() {
        assert!(Backend::Scalar < Backend::Avx2);
        assert!(Backend::Avx2 < Backend::Avx512);
        assert_eq!(Backend::Scalar.lanes(), 1);
        assert_eq!(Backend::Avx2.lanes(), 4);
        assert_eq!(Backend::Avx512.lanes(), 8);
        for tier in [Backend::Scalar, Backend::Avx2, Backend::Avx512] {
            assert_eq!(Backend::from_u8(tier as u8), tier);
        }
    }

    #[test]
    fn kernel_choice_parsing_round_trips() {
        for choice in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            assert_eq!(KernelChoice::parse(choice.name()), Some(choice));
        }
        assert_eq!(KernelChoice::parse("sse9"), None);
        assert_eq!(KernelChoice::Scalar.resolve(), Backend::Scalar);
        assert_eq!(KernelChoice::Simd.resolve(), Backend::detect());
    }

    #[test]
    fn requesting_more_than_the_cpu_has_degrades_gracefully() {
        let mut xs = inputs(7);
        let used = clamp_unit(Backend::Avx512, &mut xs);
        assert!(used <= Backend::detect());
        for &x in &xs {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn elementwise_kernels_match_scalar_bit_for_bit() {
        for backend in backends() {
            for len in 0..=19 {
                let rs = inputs(len);
                let mut scalar_out = vec![0.0; len];
                let mut simd_out = vec![0.0; len];
                fill_scaled(Backend::Scalar, 3.5, &rs, &mut scalar_out);
                fill_scaled(backend, 3.5, &rs, &mut simd_out);
                assert_bits_eq(&scalar_out, &simd_out);

                let mut scalar_clamped = rs.clone();
                let mut simd_clamped = rs.clone();
                clamp_unit(Backend::Scalar, &mut scalar_clamped);
                clamp_unit(backend, &mut simd_clamped);
                assert_bits_eq(&scalar_clamped, &simd_clamped);

                let mut scalar_div = rs.clone();
                let mut simd_div = rs.clone();
                div_clamp_unit(Backend::Scalar, 0.75, &mut scalar_div);
                div_clamp_unit(backend, 0.75, &mut simd_div);
                assert_bits_eq(&scalar_div, &simd_div);

                let mut scalar_acc = inputs(len);
                let mut simd_acc = scalar_acc.clone();
                weighted_accumulate(Backend::Scalar, 0.3, &rs, &mut scalar_acc);
                weighted_accumulate(backend, 0.3, &rs, &mut simd_acc);
                assert_bits_eq(&scalar_acc, &simd_acc);
            }
        }
    }

    #[test]
    fn clamp_propagates_nan_and_signed_zero_like_scalar_clamp() {
        for backend in backends() {
            let mut xs = vec![f64::NAN, -0.0, 0.0, 1.5, -2.0, f64::INFINITY, 0.25, 0.75];
            clamp_unit(backend, &mut xs);
            assert!(xs[0].is_nan(), "{backend:?} must propagate NaN");
            assert_eq!(xs[1].to_bits(), (-0.0f64).clamp(0.0, 1.0).to_bits());
            assert_eq!(xs[3], 1.0);
            assert_eq!(xs[4], 0.0);
            assert_eq!(xs[5], 1.0);
        }
    }

    fn assert_bits_eq(expected: &[f64], got: &[f64]) {
        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(got).enumerate() {
            assert!(
                e.to_bits() == g.to_bits(),
                "lane {i}: expected {e:?} ({:#x}), got {g:?} ({:#x})",
                e.to_bits(),
                g.to_bits()
            );
        }
    }
}
