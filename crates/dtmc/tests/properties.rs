// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based tests for the Markov-chain substrate.

use proptest::prelude::*;
use zeroconf_dtmc::{classify, transient, AbsorbingAnalysis, Dtmc, DtmcBuilder, StateId};

/// Strategy: a random absorbing chain with `n` transient states feeding a
/// single absorbing sink. Every transient state has a direct escape
/// probability of at least 0.05, so absorption is guaranteed and the
/// analysis is well conditioned.
fn absorbing_chain(n: usize) -> impl Strategy<Value = (Dtmc, Vec<StateId>, StateId)> {
    let weights = prop::collection::vec(
        (
            0.05f64..1.0,
            prop::collection::vec(0.0f64..1.0, n),
            prop::collection::vec(0.0f64..5.0, n + 1),
        ),
        n,
    );
    weights.prop_map(move |rows| {
        let mut b = DtmcBuilder::new();
        let transient: Vec<StateId> = (0..n).map(|i| b.add_state(format!("t{i}"))).collect();
        let sink = b.add_state("sink");
        for (i, (escape, raw, rewards)) in rows.iter().enumerate() {
            // Normalize the raw weights to the probability mass left after
            // the escape edge.
            let total: f64 = raw.iter().sum::<f64>();
            let stay_mass = 1.0 - escape;
            let mut cumulative = 0.0;
            if total > 0.0 {
                for (j, w) in raw.iter().enumerate() {
                    let p = stay_mass * w / total;
                    cumulative += p;
                    if p > 0.0 {
                        b.add_transition(transient[i], transient[j], p, rewards[j])
                            .unwrap();
                    }
                }
            }
            b.add_transition(transient[i], sink, 1.0 - cumulative, rewards[n])
                .unwrap();
        }
        b.make_absorbing(sink).unwrap();
        (b.build().unwrap(), transient, sink)
    })
}

proptest! {
    #[test]
    fn absorption_probability_into_single_sink_is_one(
        (chain, transient, sink) in absorbing_chain(5)
    ) {
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            let p = analysis.absorption_probability(s, sink).unwrap();
            prop_assert!((p - 1.0).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn expected_steps_are_positive_and_finite(
        (chain, transient, _) in absorbing_chain(5)
    ) {
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            let steps = analysis.expected_steps(s).unwrap();
            prop_assert!(steps >= 1.0 - 1e-12);
            prop_assert!(steps.is_finite());
        }
    }

    #[test]
    fn expected_reward_is_nonnegative_for_nonnegative_rewards(
        (chain, transient, _) in absorbing_chain(4)
    ) {
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            let reward = analysis.expected_total_reward(s).unwrap();
            prop_assert!(reward >= -1e-12);
        }
    }

    #[test]
    fn variance_is_nonnegative((chain, transient, _) in absorbing_chain(4)) {
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            prop_assert!(analysis.total_reward_variance(s).unwrap() >= 0.0);
        }
    }

    #[test]
    fn k_step_distributions_stay_normalized(
        (chain, transient, _) in absorbing_chain(4),
        steps in 0usize..50
    ) {
        for &s in &transient {
            let d = transient::distribution_after(&chain, s, steps).unwrap();
            let total: f64 = d.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(d.iter().all(|&p| (-1e-12..=1.0 + 1e-9).contains(&p)));
        }
    }

    #[test]
    fn finite_horizon_reward_converges_to_absorbing_reward(
        (chain, transient, _) in absorbing_chain(3)
    ) {
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            let total = analysis.expected_total_reward(s).unwrap();
            let horizon = transient::expected_reward_within(&chain, s, 3000).unwrap();
            prop_assert!(
                (total - horizon).abs() < 1e-6 * (1.0 + total.abs()),
                "total {total}, horizon {horizon}"
            );
        }
    }

    #[test]
    fn classification_partitions_state_space((chain, _, _) in absorbing_chain(5)) {
        let cls = classify::classify(&chain);
        let mut all: Vec<StateId> = cls.transient.clone();
        all.extend(cls.recurrent.iter().copied());
        all.sort();
        all.dedup();
        prop_assert_eq!(all.len(), chain.num_states());
    }

    #[test]
    fn sccs_cover_all_states_exactly_once((chain, _, _) in absorbing_chain(6)) {
        let comps = classify::strongly_connected_components(&chain);
        let mut all: Vec<StateId> = comps.into_iter().flatten().collect();
        let before = all.len();
        all.sort();
        all.dedup();
        prop_assert_eq!(before, all.len());
        prop_assert_eq!(all.len(), chain.num_states());
    }

    #[test]
    fn expected_steps_dominate_probability_weighted_rewards(
        (chain, transient, _) in absorbing_chain(4)
    ) {
        // With all rewards <= 5, total reward <= 5 * steps.
        let analysis = AbsorbingAnalysis::new(&chain).unwrap();
        for &s in &transient {
            let steps = analysis.expected_steps(s).unwrap();
            let reward = analysis.expected_total_reward(s).unwrap();
            prop_assert!(reward <= 5.0 * steps + 1e-9);
        }
    }
}
