use std::error::Error;
use std::fmt;

use zeroconf_linalg::LinalgError;

/// Errors produced while building or analysing a Markov chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DtmcError {
    /// A transition probability was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Source state index.
        from: usize,
        /// Target state index.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// A transition reward was not finite.
    InvalidReward {
        /// Source state index.
        from: usize,
        /// Target state index.
        to: usize,
        /// The offending value.
        value: f64,
    },
    /// The outgoing probabilities of a state do not sum to one.
    RowNotStochastic {
        /// The state whose row is invalid.
        state: usize,
        /// Name of that state.
        name: String,
        /// Actual row sum.
        sum: f64,
    },
    /// A state index referenced a state that does not exist.
    UnknownState {
        /// The offending index.
        state: usize,
        /// Number of states in the chain.
        num_states: usize,
    },
    /// Two transitions were added for the same `(from, to)` pair.
    DuplicateTransition {
        /// Source state index.
        from: usize,
        /// Target state index.
        to: usize,
    },
    /// The chain has no states.
    EmptyChain,
    /// An absorbing-chain analysis was requested but the chain has no
    /// absorbing states.
    NoAbsorbingStates,
    /// A state cannot reach any absorbing state, so absorption quantities
    /// are undefined (or infinite).
    AbsorptionUnreachable {
        /// The trapped state.
        state: usize,
        /// Name of that state.
        name: String,
    },
    /// The requested analysis needs a transient state but an absorbing one
    /// was supplied.
    StateNotTransient {
        /// The offending state.
        state: usize,
    },
    /// A stationary-distribution computation was attempted on a reducible
    /// chain.
    NotIrreducible,
    /// A self-loop on an absorbing state carries a nonzero reward, which
    /// would make total rewards infinite.
    AbsorbingRewardLoop {
        /// The absorbing state with a rewarded self-loop.
        state: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
}

impl fmt::Display for DtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtmcError::InvalidProbability { from, to, value } => write!(
                f,
                "invalid probability {value} on transition {from} -> {to}"
            ),
            DtmcError::InvalidReward { from, to, value } => {
                write!(f, "invalid reward {value} on transition {from} -> {to}")
            }
            DtmcError::RowNotStochastic { state, name, sum } => write!(
                f,
                "outgoing probabilities of state {state} ({name}) sum to {sum}, not 1"
            ),
            DtmcError::UnknownState { state, num_states } => {
                write!(f, "state {state} does not exist (chain has {num_states})")
            }
            DtmcError::DuplicateTransition { from, to } => {
                write!(f, "duplicate transition {from} -> {to}")
            }
            DtmcError::EmptyChain => write!(f, "chain has no states"),
            DtmcError::NoAbsorbingStates => write!(f, "chain has no absorbing states"),
            DtmcError::AbsorptionUnreachable { state, name } => {
                write!(f, "state {state} ({name}) cannot reach any absorbing state")
            }
            DtmcError::StateNotTransient { state } => {
                write!(f, "state {state} is not transient")
            }
            DtmcError::NotIrreducible => write!(f, "chain is not irreducible"),
            DtmcError::AbsorbingRewardLoop { state } => write!(
                f,
                "absorbing state {state} has a self-loop with nonzero reward"
            ),
            DtmcError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for DtmcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DtmcError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for DtmcError {
    fn from(e: LinalgError) -> Self {
        DtmcError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_row_not_stochastic_includes_name() {
        let err = DtmcError::RowNotStochastic {
            state: 2,
            name: "probe1".to_owned(),
            sum: 0.9,
        };
        let msg = err.to_string();
        assert!(msg.contains("probe1"));
        assert!(msg.contains("0.9"));
    }

    #[test]
    fn linalg_errors_convert_and_expose_source() {
        let err: DtmcError = LinalgError::Empty.into();
        assert!(matches!(err, DtmcError::Linalg(_)));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn non_linalg_errors_have_no_source() {
        assert!(Error::source(&DtmcError::EmptyChain).is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DtmcError>();
    }
}
