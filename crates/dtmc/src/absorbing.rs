//! Absorbing-chain analysis: absorption probabilities, expected steps and
//! expected/variance of the total accumulated reward.

use zeroconf_linalg::{LuDecomposition, Matrix};

use crate::{classify, Dtmc, DtmcError, StateId};

/// Precomputed analysis of an absorbing Markov chain.
///
/// Construction partitions the state space into transient states and
/// absorbing states, verifies that every transient state can actually reach
/// absorption, and LU-factors the matrix `I − P′` (with `P′` the transient
/// sub-matrix, exactly the object the paper manipulates in Sections 4.1 and
/// 5). All queries are then linear solves against that factorization.
///
/// # Examples
///
/// ```
/// use zeroconf_dtmc::{AbsorbingAnalysis, DtmcBuilder};
///
/// # fn main() -> Result<(), zeroconf_dtmc::DtmcError> {
/// let mut b = DtmcBuilder::new();
/// let s = b.add_state("start");
/// let heads = b.add_state("heads");
/// let tails = b.add_state("tails");
/// b.add_transition(s, heads, 0.3, 0.0)?;
/// b.add_transition(s, tails, 0.7, 0.0)?;
/// b.make_absorbing(heads)?;
/// b.make_absorbing(tails)?;
/// let chain = b.build()?;
/// let analysis = AbsorbingAnalysis::new(&chain)?;
/// let p = analysis.absorption_probability(s, heads)?;
/// assert!((p - 0.3).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AbsorbingAnalysis {
    chain: Dtmc,
    /// Transient states in index order.
    transient: Vec<StateId>,
    /// Absorbing states in index order.
    absorbing: Vec<StateId>,
    /// Position of each state in `transient` (usize::MAX when absorbing).
    transient_position: Vec<usize>,
    /// LU factors of `I − P′`.
    system: LuDecomposition,
}

impl AbsorbingAnalysis {
    /// Analyses a chain, cloning it into the analysis.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::NoAbsorbingStates`] when the chain has none.
    /// - [`DtmcError::AbsorptionUnreachable`] when some state can avoid
    ///   absorption forever (it lies in or can only reach a non-absorbing
    ///   recurrent class).
    /// - [`DtmcError::Linalg`] if factorization fails (not expected for a
    ///   valid absorbing chain).
    pub fn new(chain: &Dtmc) -> Result<Self, DtmcError> {
        let absorbing = classify::absorbing_states(chain);
        if absorbing.is_empty() {
            return Err(DtmcError::NoAbsorbingStates);
        }
        let can_absorb = classify::states_reaching(chain, &absorbing)?;
        if can_absorb.len() != chain.num_states() {
            let mut reachable = vec![false; chain.num_states()];
            for s in &can_absorb {
                reachable[s.index()] = true;
            }
            let trapped = (0..chain.num_states())
                .find(|&i| !reachable[i])
                .map(StateId)
                .expect("some state must be unreachable");
            return Err(DtmcError::AbsorptionUnreachable {
                state: trapped.index(),
                name: chain.name(trapped)?.to_owned(),
            });
        }

        let transient: Vec<StateId> = chain.states().filter(|s| !absorbing.contains(s)).collect();
        let mut transient_position = vec![usize::MAX; chain.num_states()];
        for (pos, s) in transient.iter().enumerate() {
            transient_position[s.index()] = pos;
        }

        // Assemble I − P′ over the transient states. For an all-absorbing
        // chain a trivial 1x1 identity keeps the factorization total; all
        // queries on absorbing states early-return before touching it.
        let nt = transient.len();
        let mut system = Matrix::identity(nt.max(1));
        for (row, &s) in transient.iter().enumerate() {
            for t in chain.transitions_from(s)? {
                let pos = transient_position[t.to.index()];
                if pos != usize::MAX {
                    system[(row, pos)] -= t.probability;
                }
            }
        }
        let system = LuDecomposition::new(&system)?;

        Ok(AbsorbingAnalysis {
            chain: chain.clone(),
            transient,
            absorbing,
            transient_position,
            system,
        })
    }

    /// The analysed chain.
    pub fn chain(&self) -> &Dtmc {
        &self.chain
    }

    /// Transient states in index order.
    pub fn transient_states(&self) -> &[StateId] {
        &self.transient
    }

    /// Absorbing states in index order.
    pub fn absorbing_states(&self) -> &[StateId] {
        &self.absorbing
    }

    /// Probability of being absorbed in `target`, starting from `from`.
    ///
    /// Solves `(I − P′)x = e_target` where `e_target` collects the one-step
    /// probabilities into `target` — the computation of Section 5 of the
    /// paper.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::UnknownState`] for out-of-range ids.
    /// - [`DtmcError::StateNotTransient`]-free: `from` may be absorbing (the
    ///   result is then 1 or 0); but `target` must be absorbing, otherwise
    ///   [`DtmcError::StateNotTransient`] is returned with the misused
    ///   state.
    pub fn absorption_probability(&self, from: StateId, target: StateId) -> Result<f64, DtmcError> {
        self.chain.check_state(from)?;
        self.chain.check_state(target)?;
        if !self.absorbing.contains(&target) {
            return Err(DtmcError::StateNotTransient {
                state: target.index(),
            });
        }
        if self.absorbing.contains(&from) {
            return Ok(if from == target { 1.0 } else { 0.0 });
        }
        let x = self.absorption_vector(target)?;
        Ok(x[self.transient_position[from.index()]])
    }

    /// Absorption probabilities into `target` for *all* transient states,
    /// ordered like [`AbsorbingAnalysis::transient_states`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingAnalysis::absorption_probability`].
    pub fn absorption_vector(&self, target: StateId) -> Result<Vec<f64>, DtmcError> {
        self.chain.check_state(target)?;
        if !self.absorbing.contains(&target) {
            return Err(DtmcError::StateNotTransient {
                state: target.index(),
            });
        }
        if self.transient.is_empty() {
            return Ok(Vec::new());
        }
        let mut rhs = vec![0.0; self.transient.len()];
        for (row, &s) in self.transient.iter().enumerate() {
            for t in self.chain.transitions_from(s)? {
                if t.to == target {
                    rhs[row] += t.probability;
                }
            }
        }
        Ok(self.system.solve(&rhs)?)
    }

    /// Expected number of steps until absorption, starting from `from`
    /// (zero when `from` is absorbing).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] for an out-of-range id.
    pub fn expected_steps(&self, from: StateId) -> Result<f64, DtmcError> {
        self.chain.check_state(from)?;
        if self.absorbing.contains(&from) {
            return Ok(0.0);
        }
        let rhs = vec![1.0; self.transient.len()];
        let x = self.system.solve(&rhs)?;
        Ok(x[self.transient_position[from.index()]])
    }

    /// Expected total reward accumulated until absorption from `from` —
    /// the paper's central quantity (Eq. 2): `a = (I − P′)⁻¹ w` with
    /// `w_i = Σ_j p_ij c_ij`.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::UnknownState`] for an out-of-range id.
    /// - [`DtmcError::AbsorbingRewardLoop`] if any absorbing state's
    ///   self-loop carries a nonzero reward (total reward would diverge).
    pub fn expected_total_reward(&self, from: StateId) -> Result<f64, DtmcError> {
        self.chain.check_state(from)?;
        if self.absorbing.contains(&from) {
            self.check_absorbing_rewards()?;
            return Ok(0.0);
        }
        let x = self.expected_total_rewards()?;
        Ok(x[self.transient_position[from.index()]])
    }

    /// Expected total rewards for all transient states, ordered like
    /// [`AbsorbingAnalysis::transient_states`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingAnalysis::expected_total_reward`].
    pub fn expected_total_rewards(&self) -> Result<Vec<f64>, DtmcError> {
        self.check_absorbing_rewards()?;
        if self.transient.is_empty() {
            return Ok(Vec::new());
        }
        let rhs: Vec<f64> = self
            .transient
            .iter()
            .map(|&s| {
                self.chain.transitions[s.index()]
                    .iter()
                    .map(|t| t.probability * t.reward)
                    .sum()
            })
            .collect();
        Ok(self.system.solve(&rhs)?)
    }

    /// Expected number of visits to each transient state before
    /// absorption, starting from `from` — one row of the *fundamental
    /// matrix* `N = (I − P′)⁻¹`, ordered like
    /// [`AbsorbingAnalysis::transient_states`]. The entry for `from`
    /// itself counts the initial visit.
    ///
    /// Computed with a single transposed solve:
    /// `Nᵀ e_from = ((I − P′)ᵀ)⁻¹ e_from`.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::UnknownState`] for an out-of-range id.
    /// - [`DtmcError::StateNotTransient`] when `from` is absorbing (visit
    ///   counts to transient states are then all zero — but the query is
    ///   almost certainly a bug, so it errs).
    pub fn expected_visits(&self, from: StateId) -> Result<Vec<f64>, DtmcError> {
        self.chain.check_state(from)?;
        let pos = self.transient_position[from.index()];
        if pos == usize::MAX {
            return Err(DtmcError::StateNotTransient {
                state: from.index(),
            });
        }
        let mut rhs = vec![0.0; self.transient.len()];
        rhs[pos] = 1.0;
        Ok(self.system.solve_transposed(&rhs)?)
    }

    /// Expected number of visits to `to` before absorption, starting from
    /// `from` (the single fundamental-matrix entry `N[from, to]`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingAnalysis::expected_visits`], plus
    /// [`DtmcError::StateNotTransient`] for an absorbing `to`.
    pub fn expected_visits_to(&self, from: StateId, to: StateId) -> Result<f64, DtmcError> {
        self.chain.check_state(to)?;
        let to_pos = self.transient_position[to.index()];
        if to_pos == usize::MAX {
            return Err(DtmcError::StateNotTransient { state: to.index() });
        }
        Ok(self.expected_visits(from)?[to_pos])
    }

    /// Variance of the total reward accumulated until absorption from
    /// `from`.
    ///
    /// This goes beyond the paper (which only studies the mean): with
    /// `m = E[V]` the mean-vector, the second moments satisfy
    /// `s_i = Σ_j p_ij (c_ij² + 2 c_ij m_j + s_j)`, another linear system in
    /// the same matrix `I − P′`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AbsorbingAnalysis::expected_total_reward`].
    pub fn total_reward_variance(&self, from: StateId) -> Result<f64, DtmcError> {
        self.chain.check_state(from)?;
        if self.absorbing.contains(&from) {
            self.check_absorbing_rewards()?;
            return Ok(0.0);
        }
        let means = self.expected_total_rewards()?;
        let mean_of = |state: StateId| -> f64 {
            let pos = self.transient_position[state.index()];
            if pos == usize::MAX {
                0.0
            } else {
                means[pos]
            }
        };
        let rhs: Vec<f64> = self
            .transient
            .iter()
            .map(|&s| {
                self.chain.transitions[s.index()]
                    .iter()
                    .map(|t| t.probability * (t.reward * t.reward + 2.0 * t.reward * mean_of(t.to)))
                    .sum()
            })
            .collect();
        let second_moments = self.system.solve(&rhs)?;
        let pos = self.transient_position[from.index()];
        let variance = second_moments[pos] - means[pos] * means[pos];
        // Guard against tiny negative values from cancellation.
        Ok(variance.max(0.0))
    }

    fn check_absorbing_rewards(&self) -> Result<(), DtmcError> {
        for &s in &self.absorbing {
            if self.chain.reward(s, s)? != 0.0 {
                return Err(DtmcError::AbsorbingRewardLoop { state: s.index() });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::DtmcBuilder;

    use super::*;

    /// Geometric retry chain: retry with probability p (cost 1), succeed
    /// with probability 1-p (cost 0).
    fn geometric(p: f64) -> (Dtmc, StateId, StateId) {
        let mut b = DtmcBuilder::new();
        let try_ = b.add_state("try");
        let done = b.add_state("done");
        b.add_transition(try_, try_, p, 1.0).unwrap();
        b.add_transition(try_, done, 1.0 - p, 0.0).unwrap();
        b.make_absorbing(done).unwrap();
        (b.build().unwrap(), try_, done)
    }

    #[test]
    fn geometric_expected_steps() {
        let (c, try_, _) = geometric(0.5);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        // Expected steps to absorption = 1 / (1-p) = 2.
        assert!((a.expected_steps(try_).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_expected_reward() {
        let (c, try_, _) = geometric(0.5);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        // Number of retries is geometric with mean p/(1-p) = 1.
        assert!((a.expected_total_reward(try_).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_reward_variance() {
        let (c, try_, _) = geometric(0.5);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        // Retries ~ Geometric(1-p) on {0,1,...}: variance p/(1-p)^2 = 2.
        assert!((a.total_reward_variance(try_).unwrap() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn absorbing_start_state_has_zero_everything() {
        let (c, _, done) = geometric(0.3);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert_eq!(a.expected_steps(done).unwrap(), 0.0);
        assert_eq!(a.expected_total_reward(done).unwrap(), 0.0);
        assert_eq!(a.total_reward_variance(done).unwrap(), 0.0);
        assert_eq!(a.absorption_probability(done, done).unwrap(), 1.0);
    }

    #[test]
    fn two_target_absorption_probabilities_sum_to_one() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let m = b.add_state("mid");
        let win = b.add_state("win");
        let lose = b.add_state("lose");
        b.add_transition(s, m, 0.5, 0.0).unwrap();
        b.add_transition(s, win, 0.5, 0.0).unwrap();
        b.add_transition(m, s, 0.2, 0.0).unwrap();
        b.add_transition(m, lose, 0.8, 0.0).unwrap();
        b.make_absorbing(win).unwrap();
        b.make_absorbing(lose).unwrap();
        let c = b.build().unwrap();
        let a = AbsorbingAnalysis::new(&c).unwrap();
        let pw = a.absorption_probability(s, win).unwrap();
        let pl = a.absorption_probability(s, lose).unwrap();
        assert!((pw + pl - 1.0).abs() < 1e-12);
        // Hand computation: P(win from s) = 0.5 + 0.5*0.2*P(win from s)
        // => P = 0.5 / 0.9.
        assert!((pw - 0.5 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn rejects_chain_without_absorbing_states() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, z, 1.0, 0.0).unwrap();
        b.add_transition(z, a, 1.0, 0.0).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&c),
            Err(DtmcError::NoAbsorbingStates)
        ));
    }

    #[test]
    fn rejects_trapped_states() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let la = b.add_state("loop_a");
        let lb = b.add_state("loop_b");
        let ok = b.add_state("ok");
        b.add_transition(s, la, 0.5, 0.0).unwrap();
        b.add_transition(s, ok, 0.5, 0.0).unwrap();
        b.add_transition(la, lb, 1.0, 0.0).unwrap();
        b.add_transition(lb, la, 1.0, 0.0).unwrap();
        b.make_absorbing(ok).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(
            AbsorbingAnalysis::new(&c),
            Err(DtmcError::AbsorptionUnreachable { .. })
        ));
    }

    #[test]
    fn target_must_be_absorbing() {
        let (c, try_, _) = geometric(0.4);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert!(matches!(
            a.absorption_probability(try_, try_),
            Err(DtmcError::StateNotTransient { .. })
        ));
    }

    #[test]
    fn expected_steps_of_linear_path() {
        let mut b = DtmcBuilder::new();
        let states: Vec<StateId> = (0..5).map(|i| b.add_state(format!("s{i}"))).collect();
        for w in states.windows(2) {
            b.add_transition(w[0], w[1], 1.0, 1.0).unwrap();
        }
        b.make_absorbing(states[4]).unwrap();
        let c = b.build().unwrap();
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert!((a.expected_steps(states[0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((a.expected_total_reward(states[0]).unwrap() - 4.0).abs() < 1e-12);
        // Deterministic path: zero variance.
        assert!(a.total_reward_variance(states[0]).unwrap() < 1e-10);
    }

    #[test]
    fn geometric_visit_counts_match_hand_formula() {
        // Visits to `try` before absorption ~ 1 + Geometric: mean 1/(1-p).
        let (c, try_, _) = geometric(0.25);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        let visits = a.expected_visits(try_).unwrap();
        assert_eq!(visits.len(), 1);
        assert!((visits[0] - 1.0 / 0.75).abs() < 1e-12);
        assert!((a.expected_visits_to(try_, try_).unwrap() - 1.0 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn visit_counts_sum_to_expected_steps() {
        // Σ_j N[from, j] over transient j equals the expected number of
        // steps (each step occupies exactly one transient state).
        let mut b = DtmcBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let s2 = b.add_state("s2");
        let sink = b.add_state("sink");
        b.add_transition(s0, s1, 0.6, 0.0).unwrap();
        b.add_transition(s0, sink, 0.4, 0.0).unwrap();
        b.add_transition(s1, s2, 0.5, 0.0).unwrap();
        b.add_transition(s1, s0, 0.5, 0.0).unwrap();
        b.add_transition(s2, sink, 1.0, 0.0).unwrap();
        b.make_absorbing(sink).unwrap();
        let c = b.build().unwrap();
        let a = AbsorbingAnalysis::new(&c).unwrap();
        let visits = a.expected_visits(s0).unwrap();
        let steps = a.expected_steps(s0).unwrap();
        let total: f64 = visits.iter().sum();
        assert!((total - steps).abs() < 1e-12, "{total} vs {steps}");
    }

    #[test]
    fn visit_queries_validate_their_states() {
        let (c, try_, done) = geometric(0.5);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert!(matches!(
            a.expected_visits(done),
            Err(DtmcError::StateNotTransient { .. })
        ));
        assert!(matches!(
            a.expected_visits_to(try_, done),
            Err(DtmcError::StateNotTransient { .. })
        ));
        assert!(a.expected_visits(StateId(99)).is_err());
    }

    #[test]
    fn rewarded_absorbing_loop_is_rejected() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let sink = b.add_state("sink");
        b.add_transition(s, sink, 1.0, 1.0).unwrap();
        b.add_transition(sink, sink, 1.0, 5.0).unwrap();
        let c = b.build().unwrap();
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert!(matches!(
            a.expected_total_reward(s),
            Err(DtmcError::AbsorbingRewardLoop { .. })
        ));
    }

    #[test]
    fn analysis_exposes_partition() {
        let (c, try_, done) = geometric(0.4);
        let a = AbsorbingAnalysis::new(&c).unwrap();
        assert_eq!(a.transient_states(), &[try_]);
        assert_eq!(a.absorbing_states(), &[done]);
        assert_eq!(a.chain().num_states(), 2);
    }

    #[test]
    fn absorption_vector_orders_like_transient_states() {
        let mut b = DtmcBuilder::new();
        let s0 = b.add_state("s0");
        let s1 = b.add_state("s1");
        let sink = b.add_state("sink");
        b.add_transition(s0, s1, 1.0, 0.0).unwrap();
        b.add_transition(s1, sink, 1.0, 0.0).unwrap();
        b.make_absorbing(sink).unwrap();
        let c = b.build().unwrap();
        let a = AbsorbingAnalysis::new(&c).unwrap();
        let v = a.absorption_vector(sink).unwrap();
        assert_eq!(v.len(), 2);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 1.0).abs() < 1e-12);
    }
}
