//! The validated Markov-chain type.

use std::fmt;

use zeroconf_linalg::Matrix;

use crate::DtmcError;

/// Index of a state in a [`Dtmc`].
///
/// `StateId`s are handed out by
/// [`DtmcBuilder::add_state`](crate::DtmcBuilder::add_state) in insertion order and are plain indices;
/// the newtype exists so that state handles cannot be confused with other
/// integers in user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One outgoing transition of a state: target, probability and reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Target state.
    pub to: StateId,
    /// Transition probability (validated to lie in `(0, 1]`).
    pub probability: f64,
    /// Reward (cost) charged when this transition is taken.
    pub reward: f64,
}

/// A validated discrete-time Markov chain with transition rewards.
///
/// Constructed through [`DtmcBuilder`](crate::DtmcBuilder); every row is
/// guaranteed to be stochastic within
/// [`STOCHASTIC_TOLERANCE`](crate::STOCHASTIC_TOLERANCE) and every
/// probability/reward is finite.
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    pub(crate) names: Vec<String>,
    /// Outgoing transitions per state, sorted by target index.
    pub(crate) transitions: Vec<Vec<Transition>>,
}

impl Dtmc {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// All state ids in index order.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.names.len()).map(StateId)
    }

    /// Name of a state.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] for an out-of-range id.
    pub fn name(&self, state: StateId) -> Result<&str, DtmcError> {
        self.names
            .get(state.0)
            .map(String::as_str)
            .ok_or(DtmcError::UnknownState {
                state: state.0,
                num_states: self.names.len(),
            })
    }

    /// Looks a state up by name (linear scan; chains here are small).
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.names.iter().position(|n| n == name).map(StateId)
    }

    /// The outgoing transitions of a state, sorted by target index.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] for an out-of-range id.
    pub fn transitions_from(&self, state: StateId) -> Result<&[Transition], DtmcError> {
        self.transitions
            .get(state.0)
            .map(Vec::as_slice)
            .ok_or(DtmcError::UnknownState {
                state: state.0,
                num_states: self.names.len(),
            })
    }

    /// Probability of moving from `from` to `to` in one step (zero when no
    /// transition exists).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] when either id is out of range.
    pub fn probability(&self, from: StateId, to: StateId) -> Result<f64, DtmcError> {
        self.check_state(to)?;
        Ok(self
            .transitions_from(from)?
            .iter()
            .find(|t| t.to == to)
            .map_or(0.0, |t| t.probability))
    }

    /// Reward on the `from -> to` transition (zero when no transition
    /// exists, matching the paper's convention `p_ij = 0 ⇒ c_ij = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] when either id is out of range.
    pub fn reward(&self, from: StateId, to: StateId) -> Result<f64, DtmcError> {
        self.check_state(to)?;
        Ok(self
            .transitions_from(from)?
            .iter()
            .find(|t| t.to == to)
            .map_or(0.0, |t| t.reward))
    }

    /// True when the state is absorbing: its only transition is a self-loop
    /// with probability one.
    ///
    /// # Errors
    ///
    /// Returns [`DtmcError::UnknownState`] for an out-of-range id.
    pub fn is_absorbing(&self, state: StateId) -> Result<bool, DtmcError> {
        let ts = self.transitions_from(state)?;
        Ok(ts.len() == 1 && ts[0].to == state && (ts[0].probability - 1.0).abs() < 1e-12)
    }

    /// The full transition-probability matrix `P`.
    pub fn transition_matrix(&self) -> Matrix {
        let n = self.num_states();
        let mut p = Matrix::zeros(n, n);
        for (from, ts) in self.transitions.iter().enumerate() {
            for t in ts {
                p[(from, t.to.0)] = t.probability;
            }
        }
        p
    }

    /// The transition-reward matrix `C` (zero where `P` is zero).
    pub fn reward_matrix(&self) -> Matrix {
        let n = self.num_states();
        let mut c = Matrix::zeros(n, n);
        for (from, ts) in self.transitions.iter().enumerate() {
            for t in ts {
                c[(from, t.to.0)] = t.reward;
            }
        }
        c
    }

    /// Per-state expected one-step reward `w_i = Σ_j p_ij · c_ij`.
    pub fn expected_step_rewards(&self) -> Vec<f64> {
        self.transitions
            .iter()
            .map(|ts| ts.iter().map(|t| t.probability * t.reward).sum())
            .collect()
    }

    pub(crate) fn check_state(&self, state: StateId) -> Result<(), DtmcError> {
        if state.0 < self.names.len() {
            Ok(())
        } else {
            Err(DtmcError::UnknownState {
                state: state.0,
                num_states: self.names.len(),
            })
        }
    }
}

impl fmt::Display for Dtmc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DTMC with {} states:", self.num_states())?;
        for (from, ts) in self.transitions.iter().enumerate() {
            for t in ts {
                writeln!(
                    f,
                    "  {} --{:.6}/{:.6e}--> {}",
                    self.names[from], t.probability, t.reward, self.names[t.to.0]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::DtmcBuilder;

    use super::*;

    fn two_state() -> Dtmc {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, a, 0.5, 1.0).unwrap();
        b.add_transition(a, z, 0.5, 2.0).unwrap();
        b.add_transition(z, z, 1.0, 0.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn names_and_lookup() {
        let c = two_state();
        let a = c.state_by_name("a").unwrap();
        assert_eq!(c.name(a).unwrap(), "a");
        assert_eq!(c.state_by_name("missing"), None);
        assert!(c.name(StateId(9)).is_err());
    }

    #[test]
    fn probability_and_reward_lookup() {
        let c = two_state();
        let a = c.state_by_name("a").unwrap();
        let z = c.state_by_name("z").unwrap();
        assert_eq!(c.probability(a, z).unwrap(), 0.5);
        assert_eq!(c.reward(a, z).unwrap(), 2.0);
        assert_eq!(c.probability(z, a).unwrap(), 0.0);
        assert_eq!(c.reward(z, a).unwrap(), 0.0);
    }

    #[test]
    fn absorbing_detection() {
        let c = two_state();
        let a = c.state_by_name("a").unwrap();
        let z = c.state_by_name("z").unwrap();
        assert!(!c.is_absorbing(a).unwrap());
        assert!(c.is_absorbing(z).unwrap());
    }

    #[test]
    fn matrices_reflect_transitions() {
        let c = two_state();
        let p = c.transition_matrix();
        assert_eq!(p[(0, 0)], 0.5);
        assert_eq!(p[(0, 1)], 0.5);
        assert_eq!(p[(1, 1)], 1.0);
        let r = c.reward_matrix();
        assert_eq!(r[(0, 1)], 2.0);
        assert_eq!(r[(1, 1)], 0.0);
    }

    #[test]
    fn expected_step_rewards_weight_by_probability() {
        let c = two_state();
        let w = c.expected_step_rewards();
        assert!((w[0] - (0.5 * 1.0 + 0.5 * 2.0)).abs() < 1e-15);
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn display_lists_transitions_with_names() {
        let text = format!("{}", two_state());
        assert!(text.contains("a --"));
        assert!(text.contains("--> z"));
    }

    #[test]
    fn state_id_display() {
        assert_eq!(StateId(3).to_string(), "s3");
    }

    #[test]
    fn states_iterates_in_order() {
        let c = two_state();
        let ids: Vec<usize> = c.states().map(StateId::index).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
