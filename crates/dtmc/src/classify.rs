//! State-space classification: reachability, strongly connected components
//! and the transient/recurrent partition.

use crate::{Dtmc, DtmcError, StateId};

/// The structural classification of a chain's state space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// States whose only transition is the probability-one self-loop.
    pub absorbing: Vec<StateId>,
    /// States that lie in a closed (bottom) strongly connected component
    /// of two or more states, or that are absorbing.
    pub recurrent: Vec<StateId>,
    /// States from which the chain eventually leaves forever.
    pub transient: Vec<StateId>,
}

/// States reachable from `start` (including `start` itself) following
/// positive-probability transitions.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for an out-of-range start state.
pub fn reachable_from(chain: &Dtmc, start: StateId) -> Result<Vec<StateId>, DtmcError> {
    chain.check_state(start)?;
    let n = chain.num_states();
    let mut seen = vec![false; n];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(s) = stack.pop() {
        for t in chain.transitions_from(s)? {
            if !seen[t.to.index()] {
                seen[t.to.index()] = true;
                stack.push(t.to);
            }
        }
    }
    Ok((0..n).filter(|&i| seen[i]).map(StateId).collect())
}

/// States that can reach at least one state in `targets`.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] if any target is out of range.
pub fn states_reaching(chain: &Dtmc, targets: &[StateId]) -> Result<Vec<StateId>, DtmcError> {
    for &t in targets {
        chain.check_state(t)?;
    }
    let n = chain.num_states();
    // Build the reverse adjacency once, then BFS backwards from the targets.
    let mut reverse: Vec<Vec<usize>> = vec![Vec::new(); n];
    for s in chain.states() {
        for t in chain.transitions_from(s)? {
            reverse[t.to.index()].push(s.index());
        }
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<usize> = targets.iter().map(|t| t.index()).collect();
    for &t in targets {
        seen[t.index()] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &reverse[s] {
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    Ok((0..n).filter(|&i| seen[i]).map(StateId).collect())
}

/// All absorbing states of the chain.
pub fn absorbing_states(chain: &Dtmc) -> Vec<StateId> {
    chain
        .states()
        .filter(|&s| chain.is_absorbing(s).unwrap_or(false))
        .collect()
}

/// Strongly connected components in reverse topological order (Tarjan).
///
/// Each component is a sorted vector of state ids. Reverse topological
/// order means a component appears *before* any component it can reach —
/// the natural order for bottom-component detection.
pub fn strongly_connected_components(chain: &Dtmc) -> Vec<Vec<StateId>> {
    // Iterative Tarjan to avoid recursion-depth limits on long chains.
    let n = chain.num_states();
    let adjacency: Vec<Vec<usize>> = (0..n)
        .map(|s| chain.transitions[s].iter().map(|t| t.to.index()).collect())
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<StateId>> = Vec::new();

    // Explicit DFS frame: (node, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos < adjacency[v].len() {
                let w = adjacency[v][*child_pos];
                *child_pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack never underflows");
                        on_stack[w] = false;
                        component.push(StateId(w));
                        if w == v {
                            break;
                        }
                    }
                    component.sort();
                    components.push(component);
                }
            }
        }
    }
    components
}

/// Classifies every state as absorbing, recurrent or transient.
///
/// A component is *closed* when no transition leaves it; closed components
/// are recurrent, everything else is transient. Absorbing states are the
/// singleton closed components with a self-loop.
pub fn classify(chain: &Dtmc) -> Classification {
    let components = strongly_connected_components(chain);
    let mut recurrent = Vec::new();
    let mut transient = Vec::new();
    for component in &components {
        let closed = component.iter().all(|&s| {
            chain.transitions[s.index()]
                .iter()
                .all(|t| component.binary_search(&t.to).is_ok())
        });
        if closed {
            recurrent.extend(component.iter().copied());
        } else {
            transient.extend(component.iter().copied());
        }
    }
    recurrent.sort();
    transient.sort();
    Classification {
        absorbing: absorbing_states(chain),
        recurrent,
        transient,
    }
}

#[cfg(test)]
mod tests {
    use crate::DtmcBuilder;

    use super::*;

    /// start -> {loop_a <-> loop_b} and start -> sink (absorbing).
    fn sample() -> (Dtmc, [StateId; 4]) {
        let mut b = DtmcBuilder::new();
        let start = b.add_state("start");
        let la = b.add_state("loop_a");
        let lb = b.add_state("loop_b");
        let sink = b.add_state("sink");
        b.add_transition(start, la, 0.5, 0.0).unwrap();
        b.add_transition(start, sink, 0.5, 0.0).unwrap();
        b.add_transition(la, lb, 1.0, 0.0).unwrap();
        b.add_transition(lb, la, 1.0, 0.0).unwrap();
        b.make_absorbing(sink).unwrap();
        (b.build().unwrap(), [start, la, lb, sink])
    }

    #[test]
    fn reachability_from_start_covers_everything() {
        let (c, [start, ..]) = sample();
        assert_eq!(reachable_from(&c, start).unwrap().len(), 4);
    }

    #[test]
    fn reachability_from_closed_loop_stays_inside() {
        let (c, [_, la, lb, _]) = sample();
        let r = reachable_from(&c, la).unwrap();
        assert_eq!(r, vec![la, lb]);
    }

    #[test]
    fn states_reaching_sink() {
        let (c, [start, _, _, sink]) = sample();
        let r = states_reaching(&c, &[sink]).unwrap();
        assert_eq!(r, vec![start, sink]);
    }

    #[test]
    fn absorbing_states_found() {
        let (c, [.., sink]) = sample();
        assert_eq!(absorbing_states(&c), vec![sink]);
    }

    #[test]
    fn scc_groups_the_two_cycle() {
        let (c, [start, la, lb, sink]) = sample();
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 3);
        assert!(comps.contains(&vec![la, lb]));
        assert!(comps.contains(&vec![start]));
        assert!(comps.contains(&vec![sink]));
    }

    #[test]
    fn scc_order_is_reverse_topological() {
        let (c, [start, ..]) = sample();
        let comps = strongly_connected_components(&c);
        // `start` can reach everything, so its (singleton) component must
        // come last.
        assert_eq!(*comps.last().unwrap(), vec![start]);
    }

    #[test]
    fn classification_partitions_the_space() {
        let (c, [start, la, lb, sink]) = sample();
        let cls = classify(&c);
        assert_eq!(cls.absorbing, vec![sink]);
        assert_eq!(cls.transient, vec![start]);
        assert_eq!(cls.recurrent, vec![la, lb, sink]);
    }

    #[test]
    fn irreducible_chain_is_fully_recurrent() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, z, 1.0, 0.0).unwrap();
        b.add_transition(z, a, 1.0, 0.0).unwrap();
        let c = b.build().unwrap();
        let cls = classify(&c);
        assert!(cls.transient.is_empty());
        assert!(cls.absorbing.is_empty());
        assert_eq!(cls.recurrent.len(), 2);
    }

    #[test]
    fn unknown_states_are_rejected() {
        let (c, _) = sample();
        assert!(reachable_from(&c, StateId(99)).is_err());
        assert!(states_reaching(&c, &[StateId(99)]).is_err());
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        // 20k-state path exercises the iterative Tarjan.
        let mut b = DtmcBuilder::with_capacity(20_000);
        let states: Vec<StateId> = (0..20_000).map(|i| b.add_state(format!("s{i}"))).collect();
        for w in states.windows(2) {
            b.add_transition(w[0], w[1], 1.0, 0.0).unwrap();
        }
        b.make_absorbing(*states.last().unwrap()).unwrap();
        let c = b.build().unwrap();
        let comps = strongly_connected_components(&c);
        assert_eq!(comps.len(), 20_000);
        let cls = classify(&c);
        assert_eq!(cls.transient.len(), 19_999);
    }
}
