//! Finite-horizon (transient) analysis: k-step state distributions and
//! accumulated rewards over a bounded number of steps.

use crate::{Dtmc, DtmcError, StateId};

/// State-occupancy distribution after exactly `steps` steps, starting from
/// the point distribution on `start`.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for an out-of-range start state.
///
/// # Examples
///
/// ```
/// use zeroconf_dtmc::{transient, DtmcBuilder};
///
/// # fn main() -> Result<(), zeroconf_dtmc::DtmcError> {
/// let mut b = DtmcBuilder::new();
/// let a = b.add_state("a");
/// let z = b.add_state("z");
/// b.add_transition(a, z, 1.0, 0.0)?;
/// b.make_absorbing(z)?;
/// let chain = b.build()?;
/// let dist = transient::distribution_after(&chain, a, 1)?;
/// assert_eq!(dist[z.index()], 1.0);
/// # Ok(())
/// # }
/// ```
pub fn distribution_after(
    chain: &Dtmc,
    start: StateId,
    steps: usize,
) -> Result<Vec<f64>, DtmcError> {
    chain.check_state(start)?;
    let mut dist = vec![0.0; chain.num_states()];
    dist[start.index()] = 1.0;
    let mut next = vec![0.0; chain.num_states()];
    for _ in 0..steps {
        next.iter_mut().for_each(|v| *v = 0.0);
        for s in chain.states() {
            let mass = dist[s.index()];
            if mass == 0.0 {
                continue;
            }
            for t in chain.transitions_from(s)? {
                next[t.to.index()] += mass * t.probability;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    Ok(dist)
}

/// Probability of being in `target` after exactly `steps` steps from
/// `start`.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for out-of-range ids.
pub fn step_probability(
    chain: &Dtmc,
    start: StateId,
    target: StateId,
    steps: usize,
) -> Result<f64, DtmcError> {
    chain.check_state(target)?;
    let dist = distribution_after(chain, start, steps)?;
    Ok(dist[target.index()])
}

/// Expected reward accumulated over the first `steps` transitions, starting
/// from `start`.
///
/// Unlike
/// [`AbsorbingAnalysis::expected_total_reward`](crate::AbsorbingAnalysis::expected_total_reward)
/// this is well defined
/// for any chain, including non-absorbing ones.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for an out-of-range start state.
pub fn expected_reward_within(
    chain: &Dtmc,
    start: StateId,
    steps: usize,
) -> Result<f64, DtmcError> {
    chain.check_state(start)?;
    let step_rewards = chain.expected_step_rewards();
    let mut dist = vec![0.0; chain.num_states()];
    dist[start.index()] = 1.0;
    let mut total = 0.0;
    let mut next = vec![0.0; chain.num_states()];
    for _ in 0..steps {
        // Reward expected on this transition, then advance the distribution.
        total += dist
            .iter()
            .zip(&step_rewards)
            .map(|(m, w)| m * w)
            .sum::<f64>();
        next.iter_mut().for_each(|v| *v = 0.0);
        for s in chain.states() {
            let mass = dist[s.index()];
            if mass == 0.0 {
                continue;
            }
            for t in chain.transitions_from(s)? {
                next[t.to.index()] += mass * t.probability;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    Ok(total)
}

/// Probability of having been absorbed in `target` within (at most)
/// `steps` steps: the cumulative counterpart of [`step_probability`] for an
/// absorbing target.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for out-of-range ids and
/// [`DtmcError::StateNotTransient`] when `target` is not absorbing.
pub fn absorbed_within(
    chain: &Dtmc,
    start: StateId,
    target: StateId,
    steps: usize,
) -> Result<f64, DtmcError> {
    if !chain.is_absorbing(target)? {
        return Err(DtmcError::StateNotTransient {
            state: target.index(),
        });
    }
    // For an absorbing target, being there after k steps means having been
    // absorbed at some earlier step, so the k-step probability is already
    // cumulative.
    step_probability(chain, start, target, steps)
}

#[cfg(test)]
mod tests {
    use crate::DtmcBuilder;

    use super::*;

    fn coin_path() -> (Dtmc, StateId, StateId, StateId) {
        // s --1/2--> ok, s --1/2--> s (reward 1 per retry)
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let ok = b.add_state("ok");
        let err = b.add_state("err");
        b.add_transition(s, s, 0.25, 1.0).unwrap();
        b.add_transition(s, ok, 0.5, 0.0).unwrap();
        b.add_transition(s, err, 0.25, 2.0).unwrap();
        b.make_absorbing(ok).unwrap();
        b.make_absorbing(err).unwrap();
        (b.build().unwrap(), s, ok, err)
    }

    #[test]
    fn zero_steps_is_point_mass() {
        let (c, s, ..) = coin_path();
        let d = distribution_after(&c, s, 0).unwrap();
        assert_eq!(d[s.index()], 1.0);
        assert_eq!(d.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn one_step_matches_transition_row() {
        let (c, s, ok, err) = coin_path();
        let d = distribution_after(&c, s, 1).unwrap();
        assert!((d[s.index()] - 0.25).abs() < 1e-15);
        assert!((d[ok.index()] - 0.5).abs() < 1e-15);
        assert!((d[err.index()] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn distribution_stays_normalized() {
        let (c, s, ..) = coin_path();
        for k in 0..20 {
            let d = distribution_after(&c, s, k).unwrap();
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12, "step {k}");
        }
    }

    #[test]
    fn long_horizon_converges_to_absorption_probabilities() {
        let (c, s, ok, err) = coin_path();
        let d = distribution_after(&c, s, 200).unwrap();
        // P(ok) = 0.5 / 0.75, P(err) = 0.25 / 0.75.
        assert!((d[ok.index()] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[err.index()] - 1.0 / 3.0).abs() < 1e-12);
        assert!(d[s.index()] < 1e-20);
    }

    #[test]
    fn step_probability_reads_single_entry() {
        let (c, s, ok, _) = coin_path();
        let p = step_probability(&c, s, ok, 1).unwrap();
        assert!((p - 0.5).abs() < 1e-15);
    }

    #[test]
    fn finite_horizon_reward_approaches_total_reward() {
        let (c, s, ..) = coin_path();
        // Expected total reward: retries contribute 0.25*1 per visit to s,
        // the error exit contributes 0.25*2; visits to s have mean 1/0.75.
        let per_visit = 0.25 * 1.0 + 0.25 * 2.0;
        let expected_total = per_visit / 0.75;
        let within = expected_reward_within(&c, s, 500).unwrap();
        assert!((within - expected_total).abs() < 1e-12);
    }

    #[test]
    fn finite_horizon_reward_is_monotone() {
        let (c, s, ..) = coin_path();
        let mut prev = 0.0;
        for k in 1..10 {
            let now = expected_reward_within(&c, s, k).unwrap();
            assert!(now >= prev);
            prev = now;
        }
    }

    #[test]
    fn absorbed_within_is_cumulative() {
        let (c, s, ok, _) = coin_path();
        let mut prev = 0.0;
        for k in 0..30 {
            let now = absorbed_within(&c, s, ok, k).unwrap();
            assert!(now + 1e-15 >= prev, "not monotone at step {k}");
            prev = now;
        }
        assert!((prev - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn absorbed_within_rejects_transient_target() {
        let (c, s, ..) = coin_path();
        assert!(matches!(
            absorbed_within(&c, s, s, 5),
            Err(DtmcError::StateNotTransient { .. })
        ));
    }

    #[test]
    fn unknown_start_is_rejected() {
        let (c, ..) = coin_path();
        assert!(distribution_after(&c, StateId(42), 1).is_err());
        assert!(expected_reward_within(&c, StateId(42), 1).is_err());
    }
}
