//! Monte-Carlo simulation of chain paths.
//!
//! Sampling paths through the DRM provides an independent check of the
//! closed-form results and a fallback for models too large to solve
//! directly. The zeroconf validation experiment (`figures validate`)
//! compares these estimates against Eq. (3)/(4).

use zeroconf_rng::Rng;

use crate::{Dtmc, DtmcError, StateId};

/// Outcome of a single simulated path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathOutcome {
    /// State in which the path ended (absorbing, or wherever it stood when
    /// the step bound was hit).
    pub final_state: StateId,
    /// Number of transitions taken.
    pub steps: usize,
    /// Sum of the rewards on the taken transitions.
    pub total_reward: f64,
    /// True when the path ended in an absorbing state.
    pub absorbed: bool,
}

/// Aggregated results of many simulated paths.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationSummary {
    /// Number of paths sampled.
    pub paths: usize,
    /// Mean of the per-path total rewards.
    pub mean_reward: f64,
    /// Unbiased sample variance of the per-path total rewards.
    pub reward_variance: f64,
    /// Mean number of steps per path.
    pub mean_steps: f64,
    /// Fraction of paths that ended in each state (indexed by state id).
    pub final_state_frequency: Vec<f64>,
    /// Number of paths cut off by the step bound before absorption.
    pub truncated: usize,
}

/// Samples a single path from `start` until an absorbing state is entered
/// or `max_steps` transitions have been taken.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for an out-of-range start state.
pub fn sample_path<R: Rng + ?Sized>(
    chain: &Dtmc,
    start: StateId,
    max_steps: usize,
    rng: &mut R,
) -> Result<PathOutcome, DtmcError> {
    chain.check_state(start)?;
    let mut state = start;
    let mut total_reward = 0.0;
    let mut steps = 0;
    while steps < max_steps {
        if chain.is_absorbing(state)? {
            return Ok(PathOutcome {
                final_state: state,
                steps,
                total_reward,
                absorbed: true,
            });
        }
        let transitions = chain.transitions_from(state)?;
        let mut u: f64 = rng.gen();
        let mut chosen = *transitions
            .last()
            .expect("validated chain rows are non-empty");
        for t in transitions {
            if u < t.probability {
                chosen = *t;
                break;
            }
            u -= t.probability;
        }
        total_reward += chosen.reward;
        state = chosen.to;
        steps += 1;
    }
    let absorbed = chain.is_absorbing(state)?;
    Ok(PathOutcome {
        final_state: state,
        steps,
        total_reward,
        absorbed,
    })
}

/// Samples `paths` independent paths and aggregates them.
///
/// # Errors
///
/// Returns [`DtmcError::UnknownState`] for an out-of-range start state and
/// [`DtmcError::EmptyChain`] when `paths == 0`.
pub fn run<R: Rng + ?Sized>(
    chain: &Dtmc,
    start: StateId,
    paths: usize,
    max_steps: usize,
    rng: &mut R,
) -> Result<SimulationSummary, DtmcError> {
    if paths == 0 {
        return Err(DtmcError::EmptyChain);
    }
    chain.check_state(start)?;
    let mut mean = 0.0;
    let mut m2 = 0.0;
    let mut steps_sum = 0usize;
    let mut truncated = 0usize;
    let mut final_counts = vec![0usize; chain.num_states()];
    for k in 0..paths {
        let outcome = sample_path(chain, start, max_steps, rng)?;
        // Welford's online mean/variance update.
        let delta = outcome.total_reward - mean;
        mean += delta / (k as f64 + 1.0);
        m2 += delta * (outcome.total_reward - mean);
        steps_sum += outcome.steps;
        if !outcome.absorbed {
            truncated += 1;
        }
        final_counts[outcome.final_state.index()] += 1;
    }
    let reward_variance = if paths > 1 {
        m2 / (paths as f64 - 1.0)
    } else {
        0.0
    };
    Ok(SimulationSummary {
        paths,
        mean_reward: mean,
        reward_variance,
        mean_steps: steps_sum as f64 / paths as f64,
        final_state_frequency: final_counts
            .into_iter()
            .map(|c| c as f64 / paths as f64)
            .collect(),
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use crate::{AbsorbingAnalysis, DtmcBuilder};

    use super::*;

    fn biased_coin() -> (Dtmc, StateId, StateId, StateId) {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let ok = b.add_state("ok");
        let err = b.add_state("err");
        b.add_transition(s, s, 0.2, 1.0).unwrap();
        b.add_transition(s, ok, 0.6, 0.5).unwrap();
        b.add_transition(s, err, 0.2, 3.0).unwrap();
        b.make_absorbing(ok).unwrap();
        b.make_absorbing(err).unwrap();
        (b.build().unwrap(), s, ok, err)
    }

    #[test]
    fn single_path_terminates_and_accumulates() {
        let (c, s, ..) = biased_coin();
        let mut rng = StdRng::seed_from_u64(7);
        let p = sample_path(&c, s, 10_000, &mut rng).unwrap();
        assert!(p.absorbed);
        assert!(p.total_reward >= 0.5);
    }

    #[test]
    fn deterministic_path_outcome_is_exact() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, z, 1.0, 2.5).unwrap();
        b.make_absorbing(z).unwrap();
        let c = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let p = sample_path(&c, a, 100, &mut rng).unwrap();
        assert_eq!(p.final_state, z);
        assert_eq!(p.steps, 1);
        assert_eq!(p.total_reward, 2.5);
    }

    #[test]
    fn summary_agrees_with_analytic_mean() {
        let (c, s, ..) = biased_coin();
        let analysis = AbsorbingAnalysis::new(&c).unwrap();
        let exact = analysis.expected_total_reward(s).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let summary = run(&c, s, 60_000, 10_000, &mut rng).unwrap();
        // Standard error is roughly sqrt(var/n); allow five sigma.
        let se = (summary.reward_variance / summary.paths as f64).sqrt();
        assert!(
            (summary.mean_reward - exact).abs() < 5.0 * se + 1e-9,
            "mean {} vs exact {} (se {})",
            summary.mean_reward,
            exact,
            se
        );
        assert_eq!(summary.truncated, 0);
    }

    #[test]
    fn summary_variance_agrees_with_analytic_variance() {
        let (c, s, ..) = biased_coin();
        let analysis = AbsorbingAnalysis::new(&c).unwrap();
        let exact_var = analysis.total_reward_variance(s).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let summary = run(&c, s, 60_000, 10_000, &mut rng).unwrap();
        assert!(
            (summary.reward_variance - exact_var).abs() / exact_var < 0.1,
            "var {} vs exact {}",
            summary.reward_variance,
            exact_var
        );
    }

    #[test]
    fn final_state_frequencies_match_absorption_probabilities() {
        let (c, s, ok, err) = biased_coin();
        let analysis = AbsorbingAnalysis::new(&c).unwrap();
        let p_ok = analysis.absorption_probability(s, ok).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let summary = run(&c, s, 40_000, 10_000, &mut rng).unwrap();
        assert!((summary.final_state_frequency[ok.index()] - p_ok).abs() < 0.01);
        assert!((summary.final_state_frequency[err.index()] - (1.0 - p_ok)).abs() < 0.01);
    }

    #[test]
    fn truncation_is_reported() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, s, 0.999999, 0.0).unwrap();
        b.add_transition(s, t, 0.000001, 0.0).unwrap();
        b.make_absorbing(t).unwrap();
        let c = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let summary = run(&c, s, 50, 10, &mut rng).unwrap();
        assert!(summary.truncated > 0);
    }

    #[test]
    fn zero_paths_is_an_error() {
        let (c, s, ..) = biased_coin();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(run(&c, s, 0, 10, &mut rng).is_err());
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (c, s, ..) = biased_coin();
        let a = run(&c, s, 1000, 1000, &mut StdRng::seed_from_u64(123)).unwrap();
        let b = run(&c, s, 1000, 1000, &mut StdRng::seed_from_u64(123)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn starting_at_absorbing_state_is_a_zero_path() {
        let (c, _, ok, _) = biased_coin();
        let mut rng = StdRng::seed_from_u64(3);
        let p = sample_path(&c, ok, 100, &mut rng).unwrap();
        assert_eq!(p.steps, 0);
        assert_eq!(p.total_reward, 0.0);
        assert!(p.absorbed);
    }
}
