//! Incremental construction and validation of Markov chains.

use crate::{chain::Transition, Dtmc, DtmcError, StateId, STOCHASTIC_TOLERANCE};

/// Builder for [`Dtmc`] values.
///
/// States are added first (each returning its [`StateId`]), transitions
/// second; [`DtmcBuilder::build`] validates that every row is stochastic.
/// Probabilities of exactly zero are accepted and dropped, so that generic
/// model-construction code does not need to special-case vanishing branches
/// (the paper's convention `p_ij = 0 ⇒ c_ij = 0` is preserved by dropping
/// the attached reward too).
///
/// # Examples
///
/// ```
/// use zeroconf_dtmc::DtmcBuilder;
///
/// # fn main() -> Result<(), zeroconf_dtmc::DtmcError> {
/// let mut b = DtmcBuilder::new();
/// let s = b.add_state("start");
/// let t = b.add_state("target");
/// b.add_transition(s, t, 1.0, 3.0)?;
/// b.add_transition(t, t, 1.0, 0.0)?;
/// let chain = b.build()?;
/// assert_eq!(chain.num_states(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DtmcBuilder {
    names: Vec<String>,
    transitions: Vec<Vec<Transition>>,
}

impl DtmcBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DtmcBuilder::default()
    }

    /// Creates an empty builder with capacity for `n` states.
    pub fn with_capacity(n: usize) -> Self {
        DtmcBuilder {
            names: Vec::with_capacity(n),
            transitions: Vec::with_capacity(n),
        }
    }

    /// Adds a state and returns its id. Names need not be unique, but
    /// unique names make [`Dtmc::state_by_name`] useful.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.names.push(name.into());
        self.transitions.push(Vec::new());
        StateId(self.names.len() - 1)
    }

    /// Number of states added so far.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Adds a transition with the given probability and reward.
    ///
    /// A probability of exactly `0.0` is accepted and silently dropped.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::UnknownState`] if either endpoint was never added.
    /// - [`DtmcError::InvalidProbability`] if `probability ∉ [0, 1]` or is
    ///   not finite.
    /// - [`DtmcError::InvalidReward`] if `reward` is not finite.
    /// - [`DtmcError::DuplicateTransition`] if the `(from, to)` pair already
    ///   has a transition.
    pub fn add_transition(
        &mut self,
        from: StateId,
        to: StateId,
        probability: f64,
        reward: f64,
    ) -> Result<&mut Self, DtmcError> {
        let n = self.names.len();
        for endpoint in [from, to] {
            if endpoint.0 >= n {
                return Err(DtmcError::UnknownState {
                    state: endpoint.0,
                    num_states: n,
                });
            }
        }
        if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
            return Err(DtmcError::InvalidProbability {
                from: from.0,
                to: to.0,
                value: probability,
            });
        }
        if !reward.is_finite() {
            return Err(DtmcError::InvalidReward {
                from: from.0,
                to: to.0,
                value: reward,
            });
        }
        if self.transitions[from.0].iter().any(|t| t.to == to) {
            return Err(DtmcError::DuplicateTransition {
                from: from.0,
                to: to.0,
            });
        }
        if probability > 0.0 {
            self.transitions[from.0].push(Transition {
                to,
                probability,
                reward,
            });
        }
        Ok(self)
    }

    /// Marks a state absorbing: adds the probability-one, zero-reward
    /// self-loop the validation requires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DtmcBuilder::add_transition`].
    pub fn make_absorbing(&mut self, state: StateId) -> Result<&mut Self, DtmcError> {
        self.add_transition(state, state, 1.0, 0.0)
    }

    /// Validates and finalizes the chain.
    ///
    /// # Errors
    ///
    /// - [`DtmcError::EmptyChain`] if no states were added.
    /// - [`DtmcError::RowNotStochastic`] if any state's outgoing
    ///   probabilities do not sum to one within
    ///   [`STOCHASTIC_TOLERANCE`](crate::STOCHASTIC_TOLERANCE).
    pub fn build(self) -> Result<Dtmc, DtmcError> {
        if self.names.is_empty() {
            return Err(DtmcError::EmptyChain);
        }
        for (state, ts) in self.transitions.iter().enumerate() {
            let sum: f64 = ts.iter().map(|t| t.probability).sum();
            if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
                return Err(DtmcError::RowNotStochastic {
                    state,
                    name: self.names[state].clone(),
                    sum,
                });
            }
        }
        let mut transitions = self.transitions;
        for ts in &mut transitions {
            ts.sort_by_key(|t| t.to.0);
        }
        Ok(Dtmc {
            names: self.names,
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_chain() {
        assert!(matches!(
            DtmcBuilder::new().build(),
            Err(DtmcError::EmptyChain)
        ));
    }

    #[test]
    fn build_rejects_substochastic_row() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        b.add_transition(s, s, 0.5, 0.0).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, DtmcError::RowNotStochastic { state: 0, .. }));
    }

    #[test]
    fn build_rejects_superstochastic_row() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, s, 0.7, 0.0).unwrap();
        b.add_transition(s, t, 0.7, 0.0).unwrap();
        b.make_absorbing(t).unwrap();
        assert!(matches!(b.build(), Err(DtmcError::RowNotStochastic { .. })));
    }

    #[test]
    fn build_accepts_tiny_rounding_error() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, s, 0.1 + 0.2, 0.0).unwrap(); // 0.30000000000000004
        b.add_transition(s, t, 0.7, 0.0).unwrap();
        b.make_absorbing(t).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn add_transition_rejects_bad_probability() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        for bad in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.add_transition(s, s, bad, 0.0),
                Err(DtmcError::InvalidProbability { .. })
            ));
        }
    }

    #[test]
    fn add_transition_rejects_bad_reward() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        assert!(matches!(
            b.add_transition(s, s, 0.5, f64::NAN),
            Err(DtmcError::InvalidReward { .. })
        ));
    }

    #[test]
    fn add_transition_rejects_unknown_states() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        assert!(matches!(
            b.add_transition(s, StateId(7), 1.0, 0.0),
            Err(DtmcError::UnknownState { state: 7, .. })
        ));
    }

    #[test]
    fn duplicate_transitions_are_rejected() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, t, 0.5, 0.0).unwrap();
        assert!(matches!(
            b.add_transition(s, t, 0.5, 0.0),
            Err(DtmcError::DuplicateTransition { from: 0, to: 1 })
        ));
    }

    #[test]
    fn zero_probability_transitions_are_dropped() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, t, 0.0, 100.0).unwrap();
        b.add_transition(s, s, 1.0, 0.0).unwrap();
        b.make_absorbing(t).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.probability(s, t).unwrap(), 0.0);
        assert_eq!(chain.reward(s, t).unwrap(), 0.0);
    }

    #[test]
    fn dropped_zero_probability_edge_does_not_block_readding() {
        // A zero-probability edge is never stored, so the same (from, to)
        // pair can later be added with a real probability.
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        b.add_transition(s, s, 0.0, 0.0).unwrap();
        assert!(b.add_transition(s, s, 1.0, 0.0).is_ok());
    }

    #[test]
    fn transitions_are_sorted_by_target_after_build() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        let m = b.add_state("m");
        b.add_transition(a, m, 0.5, 0.0).unwrap();
        b.add_transition(a, z, 0.25, 0.0).unwrap();
        b.add_transition(a, a, 0.25, 0.0).unwrap();
        b.make_absorbing(z).unwrap();
        b.make_absorbing(m).unwrap();
        let chain = b.build().unwrap();
        let targets: Vec<usize> = chain
            .transitions_from(a)
            .unwrap()
            .iter()
            .map(|t| t.to.index())
            .collect();
        assert_eq!(targets, vec![0, 1, 2]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = DtmcBuilder::with_capacity(8);
        assert_eq!(b.num_states(), 0);
        b.add_state("x");
        assert_eq!(b.num_states(), 1);
    }
}
