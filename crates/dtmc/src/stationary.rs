//! Stationary distributions of irreducible chains.
//!
//! Not needed for the absorbing zeroconf DRMs themselves, but part of a
//! complete chain-analysis substrate: the multi-host simulator's background
//! traffic models and the ablation benchmarks use it.

use zeroconf_linalg::LuDecomposition;

use crate::{classify, Dtmc, DtmcError};

/// Computes the stationary distribution `π` with `π P = π`, `Σ π = 1` by a
/// direct linear solve.
///
/// The singular system `(Pᵀ − I) π = 0` is made nonsingular by replacing
/// the last equation with the normalization constraint.
///
/// # Errors
///
/// - [`DtmcError::NotIrreducible`] if the chain is not a single strongly
///   connected component (the stationary distribution would not be unique).
/// - [`DtmcError::Linalg`] if the solve fails.
///
/// # Examples
///
/// ```
/// use zeroconf_dtmc::{stationary, DtmcBuilder};
///
/// # fn main() -> Result<(), zeroconf_dtmc::DtmcError> {
/// let mut b = DtmcBuilder::new();
/// let a = b.add_state("a");
/// let z = b.add_state("z");
/// b.add_transition(a, a, 0.5, 0.0)?;
/// b.add_transition(a, z, 0.5, 0.0)?;
/// b.add_transition(z, a, 1.0, 0.0)?;
/// let chain = b.build()?;
/// let pi = stationary::distribution(&chain)?;
/// assert!((pi[a.index()] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn distribution(chain: &Dtmc) -> Result<Vec<f64>, DtmcError> {
    let components = classify::strongly_connected_components(chain);
    if components.len() != 1 {
        return Err(DtmcError::NotIrreducible);
    }
    let n = chain.num_states();
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let p = chain.transition_matrix();
    // Build A = Pᵀ − I, then overwrite the last row with 1s (normalization).
    let mut a = p.transpose();
    for i in 0..n {
        a[(i, i)] -= 1.0;
    }
    for j in 0..n {
        a[(n - 1, j)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let pi = LuDecomposition::new(&a)?.solve(&b)?;
    Ok(pi)
}

/// Long-run average reward per step for an irreducible chain:
/// `Σ_i π_i · w_i` with `w_i` the expected one-step reward of state `i`.
///
/// # Errors
///
/// Same conditions as [`distribution`].
pub fn long_run_reward_rate(chain: &Dtmc) -> Result<f64, DtmcError> {
    let pi = distribution(chain)?;
    let w = chain.expected_step_rewards();
    Ok(pi.iter().zip(&w).map(|(p, r)| p * r).sum())
}

#[cfg(test)]
mod tests {
    use crate::DtmcBuilder;

    use super::*;

    #[test]
    fn two_state_stationary_matches_hand_computation() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        b.add_transition(a, z, 0.3, 0.0).unwrap();
        b.add_transition(a, a, 0.7, 0.0).unwrap();
        b.add_transition(z, a, 0.4, 0.0).unwrap();
        b.add_transition(z, z, 0.6, 0.0).unwrap();
        let c = b.build().unwrap();
        let pi = distribution(&c).unwrap();
        // Balance: pi_a * 0.3 = pi_z * 0.4 => pi_a/pi_z = 4/3.
        assert!((pi[a.index()] - 4.0 / 7.0).abs() < 1e-12);
        assert!((pi[z.index()] - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_invariant_under_p() {
        let mut b = DtmcBuilder::new();
        let s0 = b.add_state("0");
        let s1 = b.add_state("1");
        let s2 = b.add_state("2");
        b.add_transition(s0, s1, 0.9, 0.0).unwrap();
        b.add_transition(s0, s2, 0.1, 0.0).unwrap();
        b.add_transition(s1, s2, 0.5, 0.0).unwrap();
        b.add_transition(s1, s0, 0.5, 0.0).unwrap();
        b.add_transition(s2, s0, 1.0, 0.0).unwrap();
        let c = b.build().unwrap();
        let pi = distribution(&c).unwrap();
        let p = c.transition_matrix();
        // pi P = pi  <=>  Pᵀ pi = pi.
        let mapped = p.transpose().matvec(&pi).unwrap();
        for (l, r) in mapped.iter().zip(&pi) {
            assert!((l - r).abs() < 1e-12);
        }
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_for_symmetric_cycle() {
        let mut b = DtmcBuilder::new();
        let states: Vec<_> = (0..4).map(|i| b.add_state(format!("s{i}"))).collect();
        for i in 0..4 {
            b.add_transition(states[i], states[(i + 1) % 4], 1.0, 1.0)
                .unwrap();
        }
        let c = b.build().unwrap();
        let pi = distribution(&c).unwrap();
        for p in &pi {
            assert!((p - 0.25).abs() < 1e-12);
        }
        assert!((long_run_reward_rate(&c).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reducible_chain_is_rejected() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        let t = b.add_state("t");
        b.add_transition(s, t, 1.0, 0.0).unwrap();
        b.make_absorbing(t).unwrap();
        let c = b.build().unwrap();
        assert!(matches!(distribution(&c), Err(DtmcError::NotIrreducible)));
    }

    #[test]
    fn single_state_chain_is_trivially_stationary() {
        let mut b = DtmcBuilder::new();
        let s = b.add_state("s");
        b.make_absorbing(s).unwrap();
        let c = b.build().unwrap();
        assert_eq!(distribution(&c).unwrap(), vec![1.0]);
    }

    #[test]
    fn long_run_reward_weights_by_occupancy() {
        let mut b = DtmcBuilder::new();
        let a = b.add_state("a");
        let z = b.add_state("z");
        // Symmetric swap; reward 2 only when leaving a.
        b.add_transition(a, z, 1.0, 2.0).unwrap();
        b.add_transition(z, a, 1.0, 0.0).unwrap();
        let c = b.build().unwrap();
        assert!((long_run_reward_rate(&c).unwrap() - 1.0).abs() < 1e-12);
    }
}
