//! Discrete-time Markov chains with transition rewards.
//!
//! The zeroconf cost paper models protocol initialization as a *family of
//! discrete-time Markov reward models* (DRMs): Markov chains whose
//! transitions carry costs, analysed from a start state to a set of
//! absorbing states. This crate implements that machinery generically:
//!
//! - [`DtmcBuilder`] / [`Dtmc`] — construction with named states and
//!   validation that every row is stochastic;
//! - [`classify`] — reachability, Tarjan SCC decomposition and
//!   transient/recurrent classification;
//! - [`AbsorbingAnalysis`] — absorption probabilities
//!   `(I − P′)⁻¹ · e` (Section 5 of the paper), expected steps to
//!   absorption, expected total reward `(I − P′)⁻¹ · w` (Eq. 2/3) and the
//!   total-reward *variance* (an extension beyond the paper);
//! - [`transient`] — k-step state distributions and finite-horizon
//!   accumulated rewards;
//! - [`stationary`] — stationary distributions of irreducible chains;
//! - [`simulate`] — Monte-Carlo path sampling of the chain, including
//!   accumulated path rewards.
//!
//! # Examples
//!
//! A two-state "retry until success" chain:
//!
//! ```
//! use zeroconf_dtmc::{AbsorbingAnalysis, DtmcBuilder};
//!
//! # fn main() -> Result<(), zeroconf_dtmc::DtmcError> {
//! let mut b = DtmcBuilder::new();
//! let try_ = b.add_state("try");
//! let done = b.add_state("done");
//! b.add_transition(try_, try_, 0.25, 1.0)?; // retry costs 1
//! b.add_transition(try_, done, 0.75, 0.0)?;
//! b.add_transition(done, done, 1.0, 0.0)?;
//! let chain = b.build()?;
//!
//! let analysis = AbsorbingAnalysis::new(&chain)?;
//! // Expected number of retries: 0.25 / 0.75 = 1/3.
//! let cost = analysis.expected_total_reward(try_)?;
//! assert!((cost - 1.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod absorbing;
mod builder;
mod chain;
pub mod classify;
mod error;
pub mod simulate;
pub mod stationary;
pub mod transient;

pub use absorbing::AbsorbingAnalysis;
pub use builder::DtmcBuilder;
pub use chain::{Dtmc, StateId, Transition};
pub use error::DtmcError;

/// Tolerance within which each row of a transition matrix must sum to one.
pub const STOCHASTIC_TOLERANCE: f64 = 1e-9;
