// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based bit-identity of the parametric reconstruction layer.
//!
//! Random scenarios across all six reply-time distribution families,
//! random grids (including the `r = 0` boundary), and random
//! re-parameterized economics: the `C`/`Err` values reconstructed from
//! the sufficient statistic `(Σπ, π_n)` must match the kernel and the
//! per-`n` closed forms float for float.

use std::sync::Arc;

use proptest::prelude::*;
use zeroconf_cost::kernel::ScenarioFactors;
use zeroconf_cost::param::ParamLandscape;
use zeroconf_cost::{cost, Scenario};
use zeroconf_dist::{
    DefectiveDeterministic, DefectiveExponential, DefectiveUniform, DefectiveWeibull, Empirical,
    Mixture, ReplyTimeDistribution,
};

fn reply_time() -> impl Strategy<Value = Arc<dyn ReplyTimeDistribution>> {
    let exponential = (0.0f64..=0.5, 0.1f64..50.0, 0.0f64..5.0).prop_map(|(loss, rate, delay)| {
        Arc::new(DefectiveExponential::from_loss(loss, rate, delay).unwrap())
            as Arc<dyn ReplyTimeDistribution>
    });
    let deterministic = (0.5f64..=1.0, 0.0f64..5.0).prop_map(|(mass, delay)| {
        Arc::new(DefectiveDeterministic::new(mass, delay).unwrap())
            as Arc<dyn ReplyTimeDistribution>
    });
    let uniform = (0.5f64..=1.0, 0.0f64..2.0, 0.1f64..5.0).prop_map(|(mass, lo, width)| {
        Arc::new(DefectiveUniform::new(mass, lo, lo + width).unwrap())
            as Arc<dyn ReplyTimeDistribution>
    });
    let weibull =
        (0.5f64..=1.0, 0.5f64..3.0, 0.1f64..3.0, 0.0f64..2.0).prop_map(|(mass, k, scale, d)| {
            Arc::new(DefectiveWeibull::new(mass, k, scale, d).unwrap())
                as Arc<dyn ReplyTimeDistribution>
        });
    let empirical = proptest::collection::vec(
        prop_oneof![(0.01f64..10.0).prop_map(Some), Just(None)],
        2..30,
    )
    .prop_filter_map("needs at least one arrival", |obs| {
        Empirical::from_observations(obs)
            .ok()
            .map(|e| Arc::new(e) as Arc<dyn ReplyTimeDistribution>)
    });
    let mixture = (
        (0.0f64..=0.5, 0.1f64..50.0, 0.0f64..5.0),
        (0.5f64..=1.0, 0.0f64..5.0),
        0.1f64..0.9,
    )
        .prop_map(|((loss, rate, delay), (mass, det_delay), w)| {
            let a: Arc<dyn ReplyTimeDistribution> =
                Arc::new(DefectiveExponential::from_loss(loss, rate, delay).unwrap());
            let b: Arc<dyn ReplyTimeDistribution> =
                Arc::new(DefectiveDeterministic::new(mass, det_delay).unwrap());
            Arc::new(Mixture::new(vec![(w, a), (1.0 - w, b)]).unwrap())
                as Arc<dyn ReplyTimeDistribution>
        });
    prop_oneof![
        exponential,
        deterministic,
        uniform,
        weibull,
        empirical,
        mixture
    ]
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (1e-6f64..=0.999, 0.0f64..100.0, 0.0f64..1e36, reply_time()).prop_map(|(q, c, e, dist)| {
        Scenario::builder()
            .occupancy(q)
            .probe_cost(c)
            .error_cost(e)
            .reply_time(dist)
            .build()
            .unwrap()
    })
}

fn listening_period() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(f64::MIN_POSITIVE),
        1e-12f64..1e-6,
        0.0f64..60.0,
        60.0f64..1e4,
    ]
}

proptest! {
    #[test]
    fn reconstruction_matches_closed_forms_bitwise(
        scenario in scenario(),
        n_max in 1u32..=96,
        rs in proptest::collection::vec(listening_period(), 1..8),
    ) {
        let landscape = ParamLandscape::build(&scenario, n_max, &rs).unwrap();
        let factors = ScenarioFactors::new(&scenario);
        for (j, &r) in rs.iter().enumerate() {
            for n in 1..=n_max {
                let direct = cost::mean_cost(&scenario, n, r).unwrap();
                prop_assert_eq!(
                    landscape.cost_at(&factors, j, n).to_bits(),
                    direct.to_bits(),
                    "C(n = {}, r = {}) diverges: reconstructed {} vs direct {}",
                    n, r, landscape.cost_at(&factors, j, n), direct
                );
                let direct_err = cost::error_probability(&scenario, n, r).unwrap();
                prop_assert_eq!(
                    landscape.error_at(&factors, j, n).to_bits(),
                    direct_err.to_bits(),
                    "Err(n = {}, r = {}) diverges: reconstructed {} vs direct {}",
                    n, r, landscape.error_at(&factors, j, n), direct_err
                );
            }
        }
    }

    #[test]
    fn reparameterization_matches_fresh_evaluation_bitwise(
        scenario in scenario(),
        q in 1e-6f64..=0.999,
        c in 0.0f64..100.0,
        e in 0.0f64..1e36,
        n_max in 1u32..=48,
        rs in proptest::collection::vec(listening_period(), 1..6),
    ) {
        let landscape = ParamLandscape::build(&scenario, n_max, &rs).unwrap();
        let varied = scenario
            .with_occupancy(q).unwrap()
            .with_probe_cost(c).unwrap()
            .with_error_cost(e).unwrap();
        let factors = ScenarioFactors::new(&varied);
        for (j, &r) in rs.iter().enumerate() {
            for n in 1..=n_max {
                let direct = cost::mean_cost(&varied, n, r).unwrap();
                prop_assert_eq!(
                    landscape.cost_at(&factors, j, n).to_bits(),
                    direct.to_bits()
                );
                let direct_err = cost::error_probability(&varied, n, r).unwrap();
                prop_assert_eq!(
                    landscape.error_at(&factors, j, n).to_bits(),
                    direct_err.to_bits()
                );
            }
        }
    }
}
