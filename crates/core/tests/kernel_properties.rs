// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based bit-identity of the single-pass column kernel.
//!
//! The O(n_max) [`ColumnKernel`] claims to reproduce the per-`n`
//! `mean_cost_from_pis` / `error_probability_from_pis` closed forms
//! *float for float* — same operations, same association order, no
//! tolerance. These properties stress that claim across random
//! scenarios, `n_max ∈ 1..=256`, and r grids that include the `r = 0`
//! boundary and subnormal-adjacent values.

use std::sync::Arc;

use proptest::prelude::*;
use zeroconf_cost::kernel::{ColumnBlockKernel, ColumnKernel};
use zeroconf_cost::{cost, Scenario};
use zeroconf_dist::DefectiveExponential;

fn scenario() -> impl Strategy<Value = Scenario> {
    // Occupancy strictly inside (0, 1); costs non-negative and finite;
    // reply-time loss/rate/delay across the regimes the paper sweeps.
    (
        1e-6f64..=0.999,
        0.0f64..100.0,
        0.0f64..1e36,
        0.0f64..=0.5,
        0.1f64..50.0,
        0.0f64..5.0,
    )
        .prop_map(|(q, c, e, loss, rate, delay)| {
            let dist = DefectiveExponential::from_loss(loss, rate, delay).unwrap();
            Scenario::builder()
                .occupancy(q)
                .probe_cost(c)
                .error_cost(e)
                .reply_time(Arc::new(dist))
                .build()
                .unwrap()
        })
}

fn listening_period() -> impl Strategy<Value = f64> {
    prop_oneof![
        // The r = 0 boundary and subnormal-adjacent values: the kernel
        // must take the same denormal-handling path as the closed form.
        Just(0.0f64),
        Just(f64::MIN_POSITIVE),
        Just(f64::MIN_POSITIVE * 4.0),
        Just(5e-324f64),
        1e-12f64..1e-6,
        0.0f64..60.0,
        60.0f64..1e4,
    ]
}

proptest! {
    #[test]
    fn kernel_matches_per_n_closed_forms_bitwise(
        scenario in scenario(),
        n_max in 1u32..=256,
        r in listening_period(),
    ) {
        let pis = cost::pi_table(&scenario, n_max, r).unwrap();
        let kernel = ColumnKernel::new(&scenario);
        let mut costs = vec![0.0f64; n_max as usize];
        let mut errors = vec![0.0f64; n_max as usize];
        kernel
            .evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for n in 1..=n_max {
            let direct_cost = cost::mean_cost_from_pis(&scenario, n, r, &pis).unwrap();
            let direct_error = cost::error_probability_from_pis(&scenario, n, &pis).unwrap();
            prop_assert_eq!(
                costs[n as usize - 1].to_bits(),
                direct_cost.to_bits(),
                "C(n = {}, r = {}) diverges: kernel {} vs direct {}",
                n, r, costs[n as usize - 1], direct_cost
            );
            prop_assert_eq!(
                errors[n as usize - 1].to_bits(),
                direct_error.to_bits(),
                "E(n = {}, r = {}) diverges: kernel {} vs direct {}",
                n, r, errors[n as usize - 1], direct_error
            );
        }
    }

    #[test]
    fn kernel_accepts_oversized_cached_tables(
        scenario in scenario(),
        n_max in 1u32..=128,
        extra in 0u32..=64,
        r in listening_period(),
    ) {
        // A cached π-table computed for a larger sweep must evaluate the
        // smaller column to the same bits as an exact-size table: the
        // prefix sum only ever reads the first n_max + 1 entries.
        let exact = cost::pi_table(&scenario, n_max, r).unwrap();
        let oversized = cost::pi_table(&scenario, n_max + extra, r).unwrap();
        let kernel = ColumnKernel::new(&scenario);
        let mut from_exact = vec![0.0f64; n_max as usize];
        let mut from_oversized = vec![0.0f64; n_max as usize];
        kernel.evaluate(n_max, r, &exact, Some(&mut from_exact), None).unwrap();
        kernel.evaluate(n_max, r, &oversized, Some(&mut from_oversized), None).unwrap();
        for (a, b) in from_exact.iter().zip(&from_oversized) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn block_kernel_matches_per_column_paths_bitwise(
        scenario in scenario(),
        n_max in 1u32..=96,
        rs in proptest::collection::vec(listening_period(), 1..10),
    ) {
        // The blocked batch path — batched π-tables (with the zero-tail
        // cutoff) plus the r-major block evaluation — must reproduce the
        // per-column `pi_table` + `ColumnKernel` results float for float.
        let block = ColumnBlockKernel::new(&scenario);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let reference = cost::pi_table(&scenario, n_max, r).unwrap();
            prop_assert_eq!(tables[j].len(), reference.len());
            for (i, (a, b)) in tables[j].iter().zip(&reference).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "pi[{}](r = {}) diverges: block {} vs reference {}",
                    i, r, a, b
                );
            }
        }
        let cells = rs.len() * n_max as usize;
        let mut costs = vec![0.0f64; cells];
        let mut errors = vec![0.0f64; cells];
        block
            .evaluate(n_max, &rs, &tables, Some(&mut costs), Some(&mut errors))
            .unwrap();
        let kernel = ColumnKernel::new(&scenario);
        for (j, &r) in rs.iter().enumerate() {
            let mut column_costs = vec![0.0f64; n_max as usize];
            let mut column_errors = vec![0.0f64; n_max as usize];
            kernel
                .evaluate(n_max, r, &tables[j], Some(&mut column_costs), Some(&mut column_errors))
                .unwrap();
            let span = j * n_max as usize..(j + 1) * n_max as usize;
            for (a, b) in costs[span.clone()].iter().zip(&column_costs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in errors[span].iter().zip(&column_errors) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
