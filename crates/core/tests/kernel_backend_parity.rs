//! Cross-backend parity for the column kernels and the parametric layer.
//!
//! The exact-mode contract: every SIMD tier the host supports computes
//! `to_bits`-identical results to the scalar reference kernels —
//! π-tables, the blocked cost/error pass, statistic capture, parametric
//! reconstruction, and the `min_cost_cell` selection. Grid extents run
//! `1..=17` (full 4- and 8-lane chunks plus every remainder), across all
//! six reply-time families. Fast mode is covered by ULP-bounded goldens:
//! fused/reassociated arithmetic may drift a few ULP from exact but no
//! further, and π-tables stay bit-identical even in fast mode.

use std::sync::Arc;

use zeroconf_cost::kernel::{Backend, ColumnBlockKernel, ColumnKernel, Mode, ScenarioFactors};
use zeroconf_cost::param::ParamLandscape;
use zeroconf_cost::{cost, Scenario};
use zeroconf_dist::{
    DefectiveDeterministic, DefectiveExponential, DefectiveUniform, DefectiveWeibull, Empirical,
    Mixture, ReplyTimeDistribution,
};

/// One scenario per reply-time distribution family.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let exponential: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveExponential::from_loss(1e-6, 10.0, 1.0).unwrap());
    let deterministic: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveDeterministic::new(0.999, 1.0).unwrap());
    let uniform: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveUniform::new(0.99, 0.5, 2.5).unwrap());
    let weibull: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveWeibull::new(0.995, 1.7, 1.2, 0.3).unwrap());
    let mixture: Arc<dyn ReplyTimeDistribution> = Arc::new(
        Mixture::new(vec![
            (0.7, Arc::clone(&exponential)),
            (0.3, Arc::clone(&deterministic)),
        ])
        .unwrap(),
    );
    let empirical: Arc<dyn ReplyTimeDistribution> = Arc::new(
        Empirical::from_observations(vec![
            Some(0.4),
            Some(0.9),
            Some(1.1),
            Some(1.6),
            Some(2.2),
            None,
        ])
        .unwrap(),
    );
    [
        ("exponential", exponential),
        ("deterministic", deterministic),
        ("uniform", uniform),
        ("weibull", weibull),
        ("mixture", mixture),
        ("empirical", empirical),
    ]
    .into_iter()
    .map(|(name, dist)| {
        (
            name,
            Scenario::builder()
                .hosts(1000)
                .unwrap()
                .probe_cost(2.0)
                .error_cost(1e12)
                .reply_time(dist)
                .build()
                .unwrap(),
        )
    })
    .collect()
}

fn backends() -> Vec<Backend> {
    let mut tiers = vec![Backend::Scalar];
    if Backend::detect() >= Backend::Avx2 {
        tiers.push(Backend::Avx2);
    }
    if Backend::detect() >= Backend::Avx512 {
        tiers.push(Backend::Avx512);
    }
    tiers
}

/// An r-grid of `len` columns including the `r = 0` boundary.
fn r_grid(len: usize) -> Vec<f64> {
    (0..len).map(|j| 0.45 * j as f64).collect()
}

fn assert_bits_eq(context: &str, expected: &[f64], got: &[f64]) {
    assert_eq!(expected.len(), got.len(), "{context}: lengths differ");
    for (k, (e, g)) in expected.iter().zip(got).enumerate() {
        assert!(
            e.to_bits() == g.to_bits(),
            "{context}, element {k}: expected {e:?} ({:#018x}), got {g:?} ({:#018x})",
            e.to_bits(),
            g.to_bits()
        );
    }
}

/// Distance in units-in-the-last-place between two finite f64s of the
/// same sign (the monotone bit-pattern trick).
fn ulp_distance(a: f64, b: f64) -> u64 {
    let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
    ia.abs_diff(ib)
}

/// The full blocked kernel — π-table build plus the cost/error pass and
/// the sufficient-statistic slabs — is bit-identical to the scalar
/// construction on every backend, for every lane-remainder extent along
/// *both* axes: probe counts (the per-column loop length) and columns
/// (the lane dimension of the column-parallel block pass — widths up to
/// 2·8+1 cover full 4- and 8-lane chunks plus every remainder).
#[test]
fn blocked_kernel_exact_mode_is_bit_identical_across_backends() {
    for (name, scenario) in scenarios() {
        let scalar = ColumnBlockKernel::new(&scenario);
        for backend in backends() {
            let kernel = ColumnBlockKernel::with_backend(&scenario, backend, Mode::Exact);
            for (n_max, width) in [
                (1u32, 5usize),
                (3, 17),
                (4, 9),
                (5, 1),
                (8, 8),
                (9, 4),
                (16, 17),
                (17, 12),
            ] {
                let rs = r_grid(width);
                let cells = n_max as usize * rs.len();
                let tables = scalar.pi_tables(n_max, &rs).unwrap();
                let simd_tables = kernel.pi_tables(n_max, &rs).unwrap();
                for (j, (t, s)) in tables.iter().zip(&simd_tables).enumerate() {
                    assert_bits_eq(&format!("{name} {backend:?} π column {j}"), t, s);
                }
                let slab = kernel.pi_table_block(n_max, &rs).unwrap();
                for (j, t) in tables.iter().enumerate() {
                    assert_bits_eq(
                        &format!("{name} {backend:?} slab π column {j}"),
                        t,
                        slab.column(j),
                    );
                }
                let mut want = BlockOutputs::new(cells);
                scalar
                    .evaluate_with_statistic(
                        n_max,
                        &rs,
                        &tables,
                        Some(&mut want.costs),
                        Some(&mut want.errors),
                        Some(&mut want.pi_prefix),
                        Some(&mut want.pi_n),
                    )
                    .unwrap();
                let mut got = BlockOutputs::new(cells);
                kernel
                    .evaluate_with_statistic(
                        n_max,
                        &rs,
                        &simd_tables,
                        Some(&mut got.costs),
                        Some(&mut got.errors),
                        Some(&mut got.pi_prefix),
                        Some(&mut got.pi_n),
                    )
                    .unwrap();
                let context = format!("{name} {backend:?} n_max={n_max} width={width}");
                assert_bits_eq(&format!("{context} costs"), &want.costs, &got.costs);
                assert_bits_eq(&format!("{context} errors"), &want.errors, &got.errors);
                assert_bits_eq(
                    &format!("{context} π-prefix"),
                    &want.pi_prefix,
                    &got.pi_prefix,
                );
                assert_bits_eq(&format!("{context} π_n"), &want.pi_n, &got.pi_n);
            }
        }
    }
}

/// The four r-major output slabs of the blocked statistic pass.
struct BlockOutputs {
    costs: Vec<f64>,
    errors: Vec<f64>,
    pi_prefix: Vec<f64>,
    pi_n: Vec<f64>,
}

impl BlockOutputs {
    fn new(cells: usize) -> BlockOutputs {
        BlockOutputs {
            costs: vec![0.0; cells],
            errors: vec![0.0; cells],
            pi_prefix: vec![0.0; cells],
            pi_n: vec![0.0; cells],
        }
    }
}

/// The single-column kernel with statistic capture matches the scalar
/// path bit for bit, statistic included, on every backend.
#[test]
fn column_kernel_statistic_capture_is_bit_identical_across_backends() {
    for (name, scenario) in scenarios() {
        let scalar = ColumnKernel::new(&scenario);
        for backend in backends() {
            let kernel = ColumnKernel::with_backend(&scenario, backend, Mode::Exact);
            for n_max in 1..=17u32 {
                let r = 1.3;
                let pis = cost::pi_table(&scenario, n_max, r).unwrap();
                let len = n_max as usize;
                let mut want = (
                    vec![0.0; len],
                    vec![0.0; len],
                    vec![0.0; len],
                    vec![0.0; len],
                );
                scalar
                    .evaluate_with_statistic(
                        n_max,
                        r,
                        &pis,
                        Some(&mut want.0),
                        Some(&mut want.1),
                        Some(&mut want.2),
                        Some(&mut want.3),
                    )
                    .unwrap();
                let mut got = (
                    vec![0.0; len],
                    vec![0.0; len],
                    vec![0.0; len],
                    vec![0.0; len],
                );
                kernel
                    .evaluate_with_statistic(
                        n_max,
                        r,
                        &pis,
                        Some(&mut got.0),
                        Some(&mut got.1),
                        Some(&mut got.2),
                        Some(&mut got.3),
                    )
                    .unwrap();
                let context = format!("{name} {backend:?} n_max={n_max}");
                assert_bits_eq(&format!("{context} costs"), &want.0, &got.0);
                assert_bits_eq(&format!("{context} errors"), &want.1, &got.1);
                assert_bits_eq(&format!("{context} π-prefix"), &want.2, &got.2);
                assert_bits_eq(&format!("{context} π_n"), &want.3, &got.3);
            }
        }
    }
}

/// Parametric reconstruction and the min-cost selection dispatch match
/// their scalar twins exactly on every backend, including under
/// re-parameterized economics.
#[test]
fn param_layer_reconstruction_and_selection_are_backend_invariant() {
    let economies = [
        (0.05f64, 3.5f64, 5e20f64),
        (0.4, 0.5, 1e35),
        (0.9, 0.0, 0.0),
    ];
    for (name, scenario) in scenarios() {
        for n_max in [1u32, 4, 7, 16, 17] {
            let rs = r_grid(9);
            let landscape = ParamLandscape::build(&scenario, n_max, &rs).unwrap();
            for (q, c, e) in economies {
                let varied = scenario
                    .with_occupancy(q)
                    .unwrap()
                    .with_probe_cost(c)
                    .unwrap()
                    .with_error_cost(e)
                    .unwrap();
                let factors = ScenarioFactors::new(&varied);
                let mut want_costs = vec![0.0f64; landscape.len()];
                let mut want_errors = vec![0.0f64; landscape.len()];
                landscape.reconstruct(&factors, Some(&mut want_costs), Some(&mut want_errors));
                let want_cell = landscape.min_cost_cell(&factors);
                for backend in backends() {
                    let mut costs = vec![0.0f64; landscape.len()];
                    let mut errors = vec![0.0f64; landscape.len()];
                    landscape.reconstruct_with(
                        &factors,
                        backend,
                        Mode::Exact,
                        Some(&mut costs),
                        Some(&mut errors),
                    );
                    let context = format!("{name} {backend:?} n_max={n_max} q={q} c={c} E={e}");
                    assert_bits_eq(&format!("{context} costs"), &want_costs, &costs);
                    assert_bits_eq(&format!("{context} errors"), &want_errors, &errors);

                    let cell = landscape.min_cost_cell_with(&factors, backend);
                    match (want_cell, cell) {
                        (None, None) => {}
                        (Some((wj, wn, wc, we)), Some((j, n, cost, err))) => {
                            assert_eq!((wj, wn), (j, n), "{context} selected cell");
                            assert_eq!(wc.to_bits(), cost.to_bits(), "{context} cost bits");
                            assert_eq!(we.to_bits(), err.to_bits(), "{context} error bits");
                        }
                        other => panic!("{context}: selection diverged: {other:?}"),
                    }
                }
            }
        }
    }
}

/// Fast mode trades bit identity for fused arithmetic; the divergence
/// from exact must stay within a few ULP on finite cells, and π-tables
/// must remain bit-identical (they are cached and shared, so they are
/// never mode-dependent).
#[test]
fn fast_mode_stays_within_ulp_bounds_of_exact() {
    const MAX_ULP: u64 = 8;
    for (name, scenario) in scenarios() {
        for backend in backends() {
            let exact = ColumnBlockKernel::with_backend(&scenario, backend, Mode::Exact);
            let fast = ColumnBlockKernel::with_backend(&scenario, backend, Mode::Fast);
            let n_max = 17u32;
            let rs = r_grid(17);
            let cells = n_max as usize * rs.len();
            let tables = exact.pi_tables(n_max, &rs).unwrap();
            let fast_tables = fast.pi_tables(n_max, &rs).unwrap();
            for (j, (t, s)) in tables.iter().zip(&fast_tables).enumerate() {
                assert_bits_eq(&format!("{name} {backend:?} fast π column {j}"), t, s);
            }
            let mut exact_costs = vec![0.0f64; cells];
            let mut exact_errors = vec![0.0f64; cells];
            exact
                .evaluate(
                    n_max,
                    &rs,
                    &tables,
                    Some(&mut exact_costs),
                    Some(&mut exact_errors),
                )
                .unwrap();
            let mut fast_costs = vec![0.0f64; cells];
            let mut fast_errors = vec![0.0f64; cells];
            fast.evaluate(
                n_max,
                &rs,
                &tables,
                Some(&mut fast_costs),
                Some(&mut fast_errors),
            )
            .unwrap();
            for (k, (e, f)) in exact_costs.iter().zip(&fast_costs).enumerate() {
                if e.is_finite() || f.is_finite() {
                    assert!(
                        ulp_distance(*e, *f) <= MAX_ULP,
                        "{name} {backend:?} cost cell {k}: exact {e:?} vs fast {f:?}"
                    );
                }
            }
            for (k, (e, f)) in exact_errors.iter().zip(&fast_errors).enumerate() {
                if e.is_finite() || f.is_finite() {
                    assert!(
                        ulp_distance(*e, *f) <= MAX_ULP,
                        "{name} {backend:?} error cell {k}: exact {e:?} vs fast {f:?}"
                    );
                }
            }
        }
    }
}
