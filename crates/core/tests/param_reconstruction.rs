//! Golden bit-identity of the parametric sufficient-statistic layer.
//!
//! [`ParamLandscape`] claims that `C(n, r)` and `Err(n, r)` reconstructed
//! from the per-cell statistic `(Σ_{i<n} π_i, π_n)` reproduce the kernel
//! (and therefore the per-`n` closed forms) *float for float* — no
//! tolerance. This suite asserts that with [`f64::to_bits`] across all
//! six reply-time distribution families, both under the scenario's own
//! economics and under re-parameterized `(q, E, c)`.

use std::sync::Arc;

use zeroconf_cost::kernel::{evaluate_column, ScenarioFactors};
use zeroconf_cost::param::ParamLandscape;
use zeroconf_cost::{cost, Scenario};
use zeroconf_dist::{
    DefectiveDeterministic, DefectiveExponential, DefectiveUniform, DefectiveWeibull, Empirical,
    Mixture, ReplyTimeDistribution,
};

/// One scenario per reply-time distribution family.
fn scenarios() -> Vec<(&'static str, Scenario)> {
    let exponential: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveExponential::from_loss(1e-6, 10.0, 1.0).unwrap());
    let deterministic: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveDeterministic::new(0.999, 1.0).unwrap());
    let uniform: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveUniform::new(0.99, 0.5, 2.5).unwrap());
    let weibull: Arc<dyn ReplyTimeDistribution> =
        Arc::new(DefectiveWeibull::new(0.995, 1.7, 1.2, 0.3).unwrap());
    let mixture: Arc<dyn ReplyTimeDistribution> = Arc::new(
        Mixture::new(vec![
            (0.7, Arc::clone(&exponential)),
            (0.3, Arc::clone(&deterministic)),
        ])
        .unwrap(),
    );
    let empirical: Arc<dyn ReplyTimeDistribution> = Arc::new(
        Empirical::from_observations(vec![
            Some(0.4),
            Some(0.9),
            Some(1.1),
            Some(1.6),
            Some(2.2),
            None,
        ])
        .unwrap(),
    );
    [
        ("exponential", exponential),
        ("deterministic", deterministic),
        ("uniform", uniform),
        ("weibull", weibull),
        ("mixture", mixture),
        ("empirical", empirical),
    ]
    .into_iter()
    .map(|(name, dist)| {
        (
            name,
            Scenario::builder()
                .hosts(1000)
                .unwrap()
                .probe_cost(2.0)
                .error_cost(1e12)
                .reply_time(dist)
                .build()
                .unwrap(),
        )
    })
    .collect()
}

#[test]
fn reconstruction_is_bit_identical_across_all_six_distributions() {
    let n_max = 20u32;
    let rs = [0.0, 0.3, 1.0, 2.0, 4.5, 12.0];
    for (name, scenario) in scenarios() {
        let landscape = ParamLandscape::build(&scenario, n_max, &rs).unwrap();
        let factors = ScenarioFactors::new(&scenario);
        for (j, &r) in rs.iter().enumerate() {
            let (costs, errors) = evaluate_column(&scenario, n_max, r).unwrap();
            for n in 1..=n_max {
                assert_eq!(
                    landscape.cost_at(&factors, j, n).to_bits(),
                    costs[n as usize - 1].to_bits(),
                    "{name}: C(n = {n}, r = {r})"
                );
                assert_eq!(
                    landscape.error_at(&factors, j, n).to_bits(),
                    errors[n as usize - 1].to_bits(),
                    "{name}: Err(n = {n}, r = {r})"
                );
            }
        }
    }
}

#[test]
fn reparameterized_reconstruction_matches_direct_evaluation_bitwise() {
    // The statistic is scenario-economics-free: one landscape must serve
    // any (q, E, c) the caller re-parameterizes with, matching a from-
    // scratch evaluation of the varied scenario bit for bit.
    let n_max = 12u32;
    let rs = [0.2, 1.5, 6.0];
    let economies = [
        (0.05f64, 3.5f64, 5e20f64),
        (0.4, 0.5, 1e35),
        (0.9, 0.0, 0.0),
    ];
    for (name, scenario) in scenarios() {
        let landscape = ParamLandscape::build(&scenario, n_max, &rs).unwrap();
        for (q, c, e) in economies {
            let varied = scenario
                .with_occupancy(q)
                .unwrap()
                .with_probe_cost(c)
                .unwrap()
                .with_error_cost(e)
                .unwrap();
            let factors = ScenarioFactors::new(&varied);
            for (j, &r) in rs.iter().enumerate() {
                for n in 1..=n_max {
                    let direct = cost::mean_cost(&varied, n, r).unwrap();
                    assert_eq!(
                        landscape.cost_at(&factors, j, n).to_bits(),
                        direct.to_bits(),
                        "{name}: C(n = {n}, r = {r}) under (q = {q}, c = {c}, E = {e})"
                    );
                    let direct_err = cost::error_probability(&varied, n, r).unwrap();
                    assert_eq!(
                        landscape.error_at(&factors, j, n).to_bits(),
                        direct_err.to_bits(),
                        "{name}: Err(n = {n}, r = {r}) under (q = {q}, c = {c}, E = {e})"
                    );
                }
            }
        }
    }
}

#[test]
fn slab_reconstruction_matches_the_block_kernel_slabs_bitwise() {
    // The whole-landscape reconstruction must reproduce exactly what the
    // block kernel would have written for the same grid.
    use zeroconf_cost::kernel::ColumnBlockKernel;
    let n_max = 16u32;
    let rs = [0.1, 0.7, 3.0, 9.0];
    for (name, scenario) in scenarios() {
        let block = ColumnBlockKernel::new(&scenario);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        let cells = rs.len() * n_max as usize;
        let mut kernel_costs = vec![0.0; cells];
        let mut kernel_errors = vec![0.0; cells];
        block
            .evaluate(
                n_max,
                &rs,
                &tables,
                Some(&mut kernel_costs),
                Some(&mut kernel_errors),
            )
            .unwrap();
        let landscape = block.param_landscape(n_max, &rs).unwrap();
        let mut costs = vec![0.0; cells];
        let mut errors = vec![0.0; cells];
        landscape.reconstruct(
            &ScenarioFactors::new(&scenario),
            Some(&mut costs),
            Some(&mut errors),
        );
        for at in 0..cells {
            assert_eq!(
                costs[at].to_bits(),
                kernel_costs[at].to_bits(),
                "{name}: cost slab at {at}"
            );
            assert_eq!(
                errors[at].to_bits(),
                kernel_errors[at].to_bits(),
                "{name}: error slab at {at}"
            );
        }
    }
}
