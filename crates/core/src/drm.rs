//! The discrete-time Markov reward model of Section 3.1 / 4.1, built
//! explicitly.
//!
//! The closed forms of Eq. (3) and Eq. (4) were derived by hand from the
//! matrices `P_n` and `C_n`; this module constructs those matrices as an
//! actual [`Dtmc`] and re-derives both quantities by linear solves, exactly
//! as the paper's Eq. (2) and Section 5 prescribe. Agreement between the
//! two routes (validated by unit, property and integration tests) is the
//! strongest internal-correctness evidence this reproduction has.

use zeroconf_dist::noanswer;
use zeroconf_dtmc::{AbsorbingAnalysis, Dtmc, DtmcBuilder, StateId};

use crate::cost::{check_n, check_r};
use crate::{CostError, Scenario};

/// The constructed model together with its named states.
#[derive(Debug, Clone)]
pub struct Drm {
    /// The underlying chain (states: `start`, `probe1..probeN`, `error`,
    /// `ok` — in that order, matching the index table in Section 4.1).
    pub chain: Dtmc,
    /// The initial state.
    pub start: StateId,
    /// The probe states `1st … nth`.
    pub probes: Vec<StateId>,
    /// The absorbing collision state.
    pub error: StateId,
    /// The absorbing success state.
    pub ok: StateId,
}

/// Builds the DRM for `n` probes and listening period `r` (Figure 1 /
/// Section 4.1 of the paper).
///
/// Transition structure:
///
/// - `start → probe1` with probability `q`, cost `r + c`;
/// - `start → ok` with probability `1 − q`, cost `n(r + c)`;
/// - `probe_i → probe_{i+1}` with probability `p_i(r)`, cost `r + c`;
/// - `probe_i → start` with probability `1 − p_i(r)`, cost `0`;
/// - `probe_n → error` with probability `p_n(r)`, cost `E`;
/// - `error`, `ok` absorbing.
///
/// # Errors
///
/// - [`CostError::InvalidProbeCount`] / [`CostError::InvalidListeningPeriod`]
///   on bad arguments.
/// - [`CostError::Dtmc`] if chain validation fails (not expected).
pub fn build(scenario: &Scenario, n: u32, r: f64) -> Result<Drm, CostError> {
    check_n(n)?;
    check_r(r)?;
    let q = scenario.occupancy();
    let c = scenario.probe_cost();
    let e = scenario.error_cost();
    let p: Vec<f64> = (1..=n as usize)
        .map(|i| noanswer::no_answer_probability(scenario.reply_time(), i, r))
        .collect::<Result<_, _>>()?;

    let mut b = DtmcBuilder::with_capacity(n as usize + 3);
    let start = b.add_state("start");
    let probes: Vec<StateId> = (1..=n).map(|i| b.add_state(format!("probe{i}"))).collect();
    let error = b.add_state("error");
    let ok = b.add_state("ok");

    b.add_transition(start, probes[0], q, r + c)?;
    b.add_transition(start, ok, 1.0 - q, n as f64 * (r + c))?;
    for i in 0..n as usize {
        let next = if i + 1 < n as usize {
            probes[i + 1]
        } else {
            error
        };
        let step_cost = if i + 1 < n as usize { r + c } else { e };
        b.add_transition(probes[i], next, p[i], step_cost)?;
        b.add_transition(probes[i], start, 1.0 - p[i], 0.0)?;
    }
    b.make_absorbing(error)?;
    b.make_absorbing(ok)?;
    Ok(Drm {
        chain: b.build()?,
        start,
        probes,
        error,
        ok,
    })
}

/// Mean total cost by solving Eq. (2) on the explicit DRM.
///
/// # Errors
///
/// Same conditions as [`build`], plus chain-analysis failures.
pub fn mean_cost_via_drm(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    let drm = build(scenario, n, r)?;
    let analysis = AbsorbingAnalysis::new(&drm.chain)?;
    Ok(analysis.expected_total_reward(drm.start)?)
}

/// Collision probability by the absorption computation of Section 5.
///
/// # Errors
///
/// Same conditions as [`build`], plus chain-analysis failures.
pub fn error_probability_via_drm(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    let drm = build(scenario, n, r)?;
    let analysis = AbsorbingAnalysis::new(&drm.chain)?;
    Ok(analysis.absorption_probability(drm.start, drm.error)?)
}

/// Standard deviation of the total run cost (extension beyond the paper;
/// the DRM's reward variance, computed per
/// [`AbsorbingAnalysis::total_reward_variance`]).
///
/// # Errors
///
/// Same conditions as [`build`], plus chain-analysis failures.
pub fn cost_standard_deviation(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    let drm = build(scenario, n, r)?;
    let analysis = AbsorbingAnalysis::new(&drm.chain)?;
    Ok(analysis.total_reward_variance(drm.start)?.sqrt())
}

/// Expected number of protocol steps (address draws plus probe rounds)
/// until the run resolves.
///
/// # Errors
///
/// Same conditions as [`build`], plus chain-analysis failures.
pub fn expected_steps(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    let drm = build(scenario, n, r)?;
    let analysis = AbsorbingAnalysis::new(&drm.chain)?;
    Ok(analysis.expected_steps(drm.start)?)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::{cost, Scenario};

    use super::*;

    /// A moderately lossy scenario where nothing is numerically extreme.
    fn moderate() -> Scenario {
        Scenario::builder()
            .occupancy(0.3)
            .probe_cost(1.5)
            .error_cost(500.0)
            .reply_time(Arc::new(DefectiveExponential::new(0.8, 2.0, 0.4).unwrap()))
            .build()
            .unwrap()
    }

    /// The paper's Figure 2 scenario (numerically extreme E and defect).
    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn structure_matches_section_4_1() {
        let drm = build(&moderate(), 4, 1.0).unwrap();
        let chain = &drm.chain;
        assert_eq!(chain.num_states(), 7); // start, 4 probes, error, ok
        assert_eq!(chain.name(drm.start).unwrap(), "start");
        assert_eq!(chain.name(drm.probes[0]).unwrap(), "probe1");
        assert!(chain.is_absorbing(drm.error).unwrap());
        assert!(chain.is_absorbing(drm.ok).unwrap());
        // start row: q to probe1 with cost r+c, 1-q to ok with cost n(r+c).
        assert!((chain.probability(drm.start, drm.probes[0]).unwrap() - 0.3).abs() < 1e-15);
        assert!((chain.reward(drm.start, drm.probes[0]).unwrap() - 2.5).abs() < 1e-15);
        assert!((chain.probability(drm.start, drm.ok).unwrap() - 0.7).abs() < 1e-15);
        assert!((chain.reward(drm.start, drm.ok).unwrap() - 10.0).abs() < 1e-15);
        // Last probe exits to error with cost E.
        assert!((chain.reward(drm.probes[3], drm.error).unwrap() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn transition_matrix_layout_matches_paper_indexing() {
        // Section 4.1's table: row(start) = 1, row(nth) = n+1,
        // row(error) = n+2, row(ok) = n+3 (1-based).
        let drm = build(&moderate(), 3, 0.5).unwrap();
        let p = drm.chain.transition_matrix();
        assert_eq!(p.rows(), 6);
        // p_{1,2} = q.
        assert!((p[(0, 1)] - 0.3).abs() < 1e-15);
        // p_{1,n+3} = 1 − q.
        assert!((p[(0, 5)] - 0.7).abs() < 1e-15);
        // Absorbing rows.
        assert_eq!(p[(4, 4)], 1.0);
        assert_eq!(p[(5, 5)], 1.0);
        // Every row is stochastic.
        for r in 0..6 {
            let sum: f64 = (0..6).map(|c| p[(r, c)]).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_form_cost_matches_linear_solve_moderate() {
        let s = moderate();
        for n in [1u32, 2, 3, 5, 8] {
            for r in [0.0, 0.3, 1.0, 2.5] {
                let closed = cost::mean_cost(&s, n, r).unwrap();
                let solved = mean_cost_via_drm(&s, n, r).unwrap();
                assert!(
                    ((closed - solved) / closed).abs() < 1e-10,
                    "n = {n}, r = {r}: closed {closed} vs solved {solved}"
                );
            }
        }
    }

    #[test]
    fn closed_form_cost_matches_linear_solve_figure2() {
        let s = figure2();
        for (n, r) in [(3u32, 2.0), (4, 2.0), (4, 0.2), (8, 1.5)] {
            let closed = cost::mean_cost(&s, n, r).unwrap();
            let solved = mean_cost_via_drm(&s, n, r).unwrap();
            assert!(
                ((closed - solved) / closed).abs() < 1e-9,
                "n = {n}, r = {r}: closed {closed:e} vs solved {solved:e}"
            );
        }
    }

    #[test]
    fn closed_form_error_matches_absorption_solve() {
        let s = moderate();
        for n in [1u32, 2, 4, 6] {
            for r in [0.0, 0.5, 1.5] {
                let closed = cost::error_probability(&s, n, r).unwrap();
                let solved = error_probability_via_drm(&s, n, r).unwrap();
                assert!(
                    (closed - solved).abs() < 1e-12,
                    "n = {n}, r = {r}: closed {closed} vs solved {solved}"
                );
            }
        }
    }

    #[test]
    fn absorption_probabilities_sum_to_one() {
        let drm = build(&moderate(), 4, 1.0).unwrap();
        let analysis = AbsorbingAnalysis::new(&drm.chain).unwrap();
        let pe = analysis
            .absorption_probability(drm.start, drm.error)
            .unwrap();
        let po = analysis.absorption_probability(drm.start, drm.ok).unwrap();
        assert!((pe + po - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_standard_deviation_is_positive_for_risky_runs() {
        let s = moderate();
        let sd = cost_standard_deviation(&s, 3, 0.8).unwrap();
        assert!(sd > 0.0);
        // With a large penalty E and non-negligible error probability the
        // standard deviation dwarfs the mean (rare catastrophic outcome).
        let mean = cost::mean_cost(&s, 3, 0.8).unwrap();
        assert!(sd > mean * 0.1, "sd {sd} vs mean {mean}");
    }

    #[test]
    fn expected_steps_grow_with_occupancy() {
        let lo = moderate().with_occupancy(0.05).unwrap();
        let hi = moderate().with_occupancy(0.6).unwrap();
        let steps_lo = expected_steps(&lo, 4, 1.0).unwrap();
        let steps_hi = expected_steps(&hi, 4, 1.0).unwrap();
        assert!(steps_hi > steps_lo);
        // Lower bound: one hop from start to resolution.
        assert!(steps_lo >= 1.0);
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = moderate();
        assert!(build(&s, 0, 1.0).is_err());
        assert!(build(&s, 4, -0.1).is_err());
        assert!(mean_cost_via_drm(&s, 0, 1.0).is_err());
        assert!(error_probability_via_drm(&s, 4, f64::NAN).is_err());
    }

    #[test]
    fn n_one_has_single_probe_state() {
        let drm = build(&moderate(), 1, 1.0).unwrap();
        assert_eq!(drm.probes.len(), 1);
        assert_eq!(drm.chain.num_states(), 4);
        // probe1 goes straight to error on silence.
        assert!(drm.chain.probability(drm.probes[0], drm.error).unwrap() > 0.0);
    }
}
