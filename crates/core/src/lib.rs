//! The IPv4 zeroconf cost model of Bohnenkamp, van der Stok, Hermanns and
//! Vaandrager (DSN 2003).
//!
//! A fresh host joining a link-local IPv4 network picks a random address
//! out of 65024, probes it `n` times with a listening period of `r`
//! seconds after each probe, retreats to a new address on any reply, and
//! accepts the address after `n` silent rounds — possibly *colliding* with
//! an existing host if all replies were lost. The paper models this
//! initialization phase as a family of discrete-time Markov reward models
//! and derives closed forms for
//!
//! - the **mean total cost** of a protocol run (Eq. 3), mixing waiting
//!   time `r`, per-probe network "postage" `c` and a collision penalty `E`
//!   into one dimensionless user-dissatisfaction scale, and
//! - the **collision probability** (Eq. 4), the complement of the
//!   protocol's reliability,
//!
//! and then optimizes the designer-controlled parameters `n` and `r`
//! against them.
//!
//! This crate implements all of it:
//!
//! - [`Scenario`] — the application-specific parameters `(q, c, E, F_X)`;
//! - [`Scenario::mean_cost`] / [`Scenario::error_probability`] — the
//!   closed forms, plus [`drm`] to build the underlying Markov reward model
//!   explicitly and cross-check against a linear solve (`*_via_drm`);
//! - [`optimize`] — `r_opt(n)`, the optimal-probe-count map `N(r)`, the
//!   envelope `C_min(r)` and the joint optimum `(n*, r*)`;
//! - [`calibrate`] — the Section 4.5 inverse problem: which `(E, c)` make
//!   the draft-recommended `(n = 4, r = 2)` (or `(4, 0.2)`) cost-optimal;
//! - [`param`] — the parametric sufficient-statistic layer: per-cell
//!   `(Σπ, π_n)` slabs from which `C` and `Err` are rational functions of
//!   `(q, E, c)`, reconstructed bit-identically without distribution math;
//! - [`sensitivity`] — elasticities and parameter sweeps;
//! - [`paper`] — the exact parameter sets behind every figure and number
//!   in the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use zeroconf_cost::paper;
//!
//! # fn main() -> Result<(), zeroconf_cost::CostError> {
//! let scenario = paper::figure2_scenario()?;
//! // Cost of the draft-recommended configuration (n = 4 probes, r = 2 s):
//! let cost = scenario.mean_cost(4, 2.0)?;
//! // Collision probability of the same configuration:
//! let risk = scenario.error_probability(4, 2.0)?;
//! assert!(cost > 0.0 && risk > 0.0 && risk < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod cost;
pub mod drm;
mod error;
pub mod kernel;
pub mod metrics;
pub mod optimize;
pub mod paper;
pub mod param;
mod scenario;
pub mod schedule;
pub mod sensitivity;
pub mod tradeoff;

pub use error::CostError;
pub use scenario::{Scenario, ScenarioBuilder};

/// Number of link-local IPv4 addresses IANA reserves for zeroconf
/// (169.254.1.0 – 169.254.254.255; Section 1 of the paper).
pub const ADDRESS_SPACE_SIZE: u32 = 65024;

/// Probe count recommended by the Internet-Draft the paper analyses.
pub const DRAFT_PROBE_COUNT: u32 = 4;

/// Listening period (seconds) the draft recommends for unreliable
/// (wireless) links.
pub const DRAFT_LISTEN_UNRELIABLE: f64 = 2.0;

/// Listening period (seconds) the draft recommends for reliable links.
pub const DRAFT_LISTEN_RELIABLE: f64 = 0.2;
