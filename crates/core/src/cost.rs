//! The closed forms: mean total cost (Eq. 3), collision probability
//! (Eq. 4), the large-`r` asymptote and the `ν` bound of Section 4.4.

use zeroconf_dist::noanswer;

use crate::kernel::ScenarioFactors;
use crate::{CostError, Scenario};

/// A breakdown of the mean total cost into its Eq. (3) ingredients, for
/// reporting and debugging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostComponents {
    /// `(r + c) · n(1 − q)`: probing cost of the final, successful attempt.
    pub free_address_probing: f64,
    /// `(r + c) · q · Σ_{i=0}^{n−1} π_i(r)`: probing cost spent on occupied
    /// addresses.
    pub occupied_address_probing: f64,
    /// `q · E · π_n(r)`: expected collision penalty.
    pub collision_penalty: f64,
    /// The normalization `1 − q(1 − π_n(r))` (probability that one attempt
    /// resolves directly to `ok` or `error`).
    pub denominator: f64,
    /// The resulting total `C(n, r)`.
    pub total: f64,
}

/// Mean total cost `C(n, r)` — Eq. (3):
///
/// ```text
///            (r+c)·( n(1−q) + q·Σ_{i=0}^{n−1} π_i(r) ) + q·E·π_n(r)
/// C(n, r) = ────────────────────────────────────────────────────────
///                          1 − q·(1 − π_n(r))
/// ```
///
/// # Errors
///
/// - [`CostError::InvalidProbeCount`] when `n == 0`.
/// - [`CostError::InvalidListeningPeriod`] for negative/non-finite `r`.
pub fn mean_cost(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    Ok(cost_components(scenario, n, r)?.total)
}

/// The full Eq. (3) breakdown behind [`mean_cost`].
///
/// # Errors
///
/// Same conditions as [`mean_cost`].
pub fn cost_components(scenario: &Scenario, n: u32, r: f64) -> Result<CostComponents, CostError> {
    check_n(n)?;
    check_r(r)?;
    let pis = noanswer::pi_sequence(scenario.reply_time(), n as usize, r)?;
    cost_components_from_pis(scenario, n, r, &pis)
}

/// The π-table `[π_0(r), …, π_{n_max}(r)]` for `scenario`'s reply-time
/// distribution — the shared input of the `*_from_pis` evaluators below.
///
/// The table depends only on the reply-time distribution and `r`, never on
/// `q`, `E` or `c`, so one table serves every probe count `n ≤ n_max` *and*
/// every re-evaluation under changed economic parameters. Because `π` is a
/// running prefix product, a table computed for a larger `n_max` is
/// bit-identical on its shared prefix with a shorter one; slicing a cached
/// table therefore reproduces the direct [`mean_cost`] floats exactly.
///
/// # Errors
///
/// Returns [`CostError::InvalidListeningPeriod`] for negative or
/// non-finite `r`.
pub fn pi_table(scenario: &Scenario, n_max: u32, r: f64) -> Result<Vec<f64>, CostError> {
    check_r(r)?;
    Ok(noanswer::pi_sequence(
        scenario.reply_time(),
        n_max as usize,
        r,
    )?)
}

/// [`cost_components`] evaluated against a caller-supplied π-table (from
/// [`pi_table`], possibly cached and longer than `n + 1`).
///
/// This is the *single* implementation of the Eq. (3) arithmetic — the
/// direct entry points delegate here — so evaluating through a cache is
/// bit-identical to evaluating directly.
///
/// # Errors
///
/// Same conditions as [`mean_cost`], plus [`CostError::PiTableTooShort`]
/// when `pis` has fewer than `n + 1` entries.
pub fn cost_components_from_pis(
    scenario: &Scenario,
    n: u32,
    r: f64,
    pis: &[f64],
) -> Result<CostComponents, CostError> {
    check_n(n)?;
    check_r(r)?;
    check_table(n, pis)?;
    // The shared hoist: every factor below is the same expression the
    // inline form computed (`1 − q`, `(r+c)·q` left-associated, `q·E`),
    // so the components keep their exact bits.
    let f = ScenarioFactors::new(scenario);
    let pi_n = pis[n as usize];
    let pi_prefix_sum: f64 = pis[..n as usize].iter().sum();

    let free_address_probing = (r + f.probe_cost) * n as f64 * f.one_minus_q;
    let occupied_address_probing = (r + f.probe_cost) * f.q * pi_prefix_sum;
    let collision_penalty = f.q_error_cost * pi_n;
    let denominator = 1.0 - f.q * (1.0 - pi_n);
    let total = (free_address_probing + occupied_address_probing + collision_penalty) / denominator;
    Ok(CostComponents {
        free_address_probing,
        occupied_address_probing,
        collision_penalty,
        denominator,
        total,
    })
}

/// [`mean_cost`] evaluated against a caller-supplied π-table.
///
/// # Errors
///
/// Same conditions as [`cost_components_from_pis`].
pub fn mean_cost_from_pis(
    scenario: &Scenario,
    n: u32,
    r: f64,
    pis: &[f64],
) -> Result<f64, CostError> {
    Ok(cost_components_from_pis(scenario, n, r, pis)?.total)
}

/// Collision probability `E(n, r)` — Eq. (4):
///
/// ```text
///                  q·π_n(r)
/// E(n, r) = ─────────────────────
///            1 − q·(1 − π_n(r))
/// ```
///
/// # Errors
///
/// Same conditions as [`mean_cost`].
pub fn error_probability(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    check_n(n)?;
    check_r(r)?;
    let pis = noanswer::pi_sequence(scenario.reply_time(), n as usize, r)?;
    error_probability_from_pis(scenario, n, &pis)
}

/// [`error_probability`] evaluated against a caller-supplied π-table.
///
/// Eq. (4) needs only `q` and `π_n(r)`, so `r` itself does not appear.
///
/// # Errors
///
/// [`CostError::InvalidProbeCount`] when `n == 0`,
/// [`CostError::PiTableTooShort`] when `pis` has fewer than `n + 1`
/// entries.
pub fn error_probability_from_pis(
    scenario: &Scenario,
    n: u32,
    pis: &[f64],
) -> Result<f64, CostError> {
    check_n(n)?;
    check_table(n, pis)?;
    let f = ScenarioFactors::new(scenario);
    let pi_n = pis[n as usize];
    Ok(f.q * pi_n / (1.0 - f.q * (1.0 - pi_n)))
}

/// The asymptote `A_n(r)` that `C_n(r)` approaches as `r → ∞`
/// (Section 4.2):
///
/// ```text
/// A_n(r) = (r+c)·( n(1−q) + q·Σ_{i=0}^{n−1} (1−l)^i ) / (1 − q)
/// ```
///
/// The geometric sum is written out instead of `(1−(1−l)^n)/l` so the
/// lossless case `l = 0` needs no special-casing.
///
/// # Errors
///
/// Same conditions as [`mean_cost`].
pub fn asymptote(scenario: &Scenario, n: u32, r: f64) -> Result<f64, CostError> {
    check_n(n)?;
    check_r(r)?;
    let q = scenario.occupancy();
    let c = scenario.probe_cost();
    let defect = scenario.reply_time().defect();
    let geometric_sum: f64 = (0..n).map(|i| defect.powi(i as i32)).sum();
    Ok((r + c) * (n as f64 * (1.0 - q) + q * geometric_sum) / (1.0 - q))
}

/// `C_n(0)`: with no listening at all, every occupied address is accepted
/// (`π_i(0) = 1`), so the cost collapses to `c·n + q·E` — the sanity anchor
/// the paper states as `C_n(0) = qE` for dominant `E`.
///
/// # Errors
///
/// Returns [`CostError::InvalidProbeCount`] when `n == 0`.
pub fn cost_at_zero_listening(scenario: &Scenario, n: u32) -> Result<f64, CostError> {
    check_n(n)?;
    Ok(scenario.probe_cost() * n as f64 + scenario.occupancy() * scenario.error_cost())
}

/// The minimal useful probe count (Section 4.4):
///
/// ```text
/// ν = ⌈ −log E / log(1 − l) ⌉
/// ```
///
/// For `n < ν` the residual collision term `q·E·π_n(r)` can never get
/// close to zero, whatever `r`. Returns `None` when the link never loses
/// replies (`l = 1`, the bound degenerates to zero) and saturates at
/// `u32::MAX` for extraordinarily lossy links.
pub fn nu_lower_bound(scenario: &Scenario) -> Option<u32> {
    let defect = scenario.reply_time().defect();
    let e = scenario.error_cost();
    if defect <= 0.0 {
        return None;
    }
    if e <= 1.0 {
        return Some(0);
    }
    if defect >= 1.0 {
        // Replies never arrive: no probe count helps.
        return Some(u32::MAX);
    }
    let nu = -(e.ln()) / defect.ln();
    if nu >= u32::MAX as f64 {
        Some(u32::MAX)
    } else {
        Some(nu.ceil() as u32)
    }
}

pub(crate) fn check_n(n: u32) -> Result<(), CostError> {
    if n == 0 {
        Err(CostError::InvalidProbeCount { n })
    } else {
        Ok(())
    }
}

pub(crate) fn check_r(r: f64) -> Result<(), CostError> {
    if !r.is_finite() || r < 0.0 {
        Err(CostError::InvalidListeningPeriod { value: r })
    } else {
        Ok(())
    }
}

fn check_table(n: u32, pis: &[f64]) -> Result<(), CostError> {
    let needed = n as usize + 1;
    if pis.len() < needed {
        Err(CostError::PiTableTooShort {
            needed,
            len: pis.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::Scenario;

    use super::*;

    /// The exact Figure 2 scenario.
    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn cost_at_zero_matches_collapse_formula() {
        let s = figure2();
        for n in [1, 2, 4, 8] {
            let direct = mean_cost(&s, n, 0.0).unwrap();
            let formula = cost_at_zero_listening(&s, n).unwrap();
            assert!(
                ((direct - formula) / formula).abs() < 1e-12,
                "n = {n}: {direct} vs {formula}"
            );
        }
        // And qE dominates: the paper states C_n(0) = qE.
        let qe = s.occupancy() * s.error_cost();
        assert!((mean_cost(&s, 4, 0.0).unwrap() / qe - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cost_has_interior_minimum_for_n_at_least_nu() {
        // Figure 2: each C_n first falls polynomially, then rises linearly.
        let s = figure2();
        let at = |r: f64| mean_cost(&s, 4, r).unwrap();
        let c_small = at(0.5);
        let c_mid = at(3.0);
        let c_large = at(60.0);
        assert!(c_mid < c_small, "{c_mid} < {c_small}");
        assert!(c_mid < c_large, "{c_mid} < {c_large}");
    }

    #[test]
    fn cost_approaches_asymptote_for_large_r() {
        let s = figure2();
        for n in [3, 5, 8] {
            let r = 500.0;
            let cost = mean_cost(&s, n, r).unwrap();
            let asym = asymptote(&s, n, r).unwrap();
            assert!(
                ((cost - asym) / asym).abs() < 1e-6,
                "n = {n}: cost {cost} vs asymptote {asym}"
            );
        }
    }

    #[test]
    fn asymptote_is_linear_in_r() {
        let s = figure2();
        let a1 = asymptote(&s, 4, 10.0).unwrap();
        let a2 = asymptote(&s, 4, 20.0).unwrap();
        let a3 = asymptote(&s, 4, 30.0).unwrap();
        assert!(((a3 - a2) - (a2 - a1)).abs() < 1e-9 * a2);
    }

    #[test]
    fn components_sum_to_total() {
        let s = figure2();
        let comp = cost_components(&s, 4, 2.0).unwrap();
        let reassembled =
            (comp.free_address_probing + comp.occupied_address_probing + comp.collision_penalty)
                / comp.denominator;
        assert!((reassembled - comp.total).abs() < 1e-12 * comp.total.abs());
        assert!(comp.denominator > 0.0 && comp.denominator <= 1.0);
    }

    #[test]
    fn error_probability_is_a_probability_and_decreases_with_n() {
        let s = figure2();
        let mut prev = 1.0;
        for n in 1..=8 {
            let p = error_probability(&s, n, 2.0).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn error_probability_decreases_with_r() {
        let s = figure2();
        let p1 = error_probability(&s, 4, 1.5).unwrap();
        let p2 = error_probability(&s, 4, 3.0).unwrap();
        assert!(p2 < p1);
    }

    #[test]
    fn error_probability_at_zero_listening_is_conditional_occupancy() {
        // With π_n = 1, Eq. (4) gives q / (1 − q(1−1)) = q.
        let s = figure2();
        let p = error_probability(&s, 4, 0.0).unwrap();
        assert!((p - s.occupancy()).abs() < 1e-15);
    }

    #[test]
    fn figure5_magnitude_band() {
        // Figure 5/6: for the Figure 2 scenario the error probability at
        // moderate r and n in 3..8 lives around 1e−35 .. 1e−54.
        let s = figure2();
        let p = error_probability(&s, 4, 3.0).unwrap();
        assert!(p > 1e-60 && p < 1e-30, "p = {p:e}");
    }

    #[test]
    fn nu_matches_paper_value() {
        // Section 4.4: E = 1e35, 1 − l = 1e−15 gives ν = ⌈35/15⌉ = 3,
        // "therefore it is impossible to achieve a reasonable cost if
        // n = 1, 2".
        assert_eq!(nu_lower_bound(&figure2()), Some(3));
    }

    #[test]
    fn nu_edge_cases() {
        let s = figure2();
        // Lossless link: bound undefined.
        let lossless = Scenario::builder()
            .occupancy(s.occupancy())
            .probe_cost(s.probe_cost())
            .error_cost(s.error_cost())
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.0, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap();
        assert_eq!(nu_lower_bound(&lossless), None);
        // Cheap errors: any n works.
        let cheap = s.with_error_cost(0.5).unwrap();
        assert_eq!(nu_lower_bound(&cheap), Some(0));
    }

    #[test]
    fn from_pis_with_oversized_table_is_bit_identical() {
        // An engine caches one π-table per r, long enough for every n in
        // the sweep; slicing it must reproduce the direct floats exactly.
        let s = figure2();
        let n_max = 10;
        for r in [0.0, 0.3, 2.0, 17.5] {
            let table = pi_table(&s, n_max, r).unwrap();
            for n in 1..=n_max {
                let direct = mean_cost(&s, n, r).unwrap();
                let via_table = mean_cost_from_pis(&s, n, r, &table).unwrap();
                assert_eq!(direct.to_bits(), via_table.to_bits(), "n = {n}, r = {r}");
                let direct_e = error_probability(&s, n, r).unwrap();
                let via_table_e = error_probability_from_pis(&s, n, &table).unwrap();
                assert_eq!(
                    direct_e.to_bits(),
                    via_table_e.to_bits(),
                    "n = {n}, r = {r}"
                );
            }
        }
    }

    #[test]
    fn from_pis_rejects_short_tables() {
        let s = figure2();
        let table = pi_table(&s, 2, 1.0).unwrap();
        assert!(matches!(
            mean_cost_from_pis(&s, 5, 1.0, &table),
            Err(CostError::PiTableTooShort { needed: 6, len: 3 })
        ));
        assert!(matches!(
            error_probability_from_pis(&s, 3, &table),
            Err(CostError::PiTableTooShort { .. })
        ));
        // Exactly n + 1 entries is enough.
        assert!(mean_cost_from_pis(&s, 2, 1.0, &table).is_ok());
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = figure2();
        assert!(matches!(
            mean_cost(&s, 0, 1.0),
            Err(CostError::InvalidProbeCount { n: 0 })
        ));
        assert!(matches!(
            mean_cost(&s, 4, -1.0),
            Err(CostError::InvalidListeningPeriod { .. })
        ));
        assert!(error_probability(&s, 0, 1.0).is_err());
        assert!(error_probability(&s, 4, f64::NAN).is_err());
        assert!(asymptote(&s, 0, 1.0).is_err());
        assert!(cost_at_zero_listening(&s, 0).is_err());
    }

    #[test]
    fn n_one_and_two_are_off_scale_in_figure2() {
        // "the functions for n = 1, 2 are not visible, since their smallest
        // values are much too large": their minima over r remain astronomical
        // compared to C_4's.
        let s = figure2();
        let min_c4: f64 = (1..200)
            .map(|k| mean_cost(&s, 4, k as f64 * 0.1).unwrap())
            .fold(f64::INFINITY, f64::min);
        for n in [1, 2] {
            let min_cn: f64 = (1..400)
                .map(|k| mean_cost(&s, n, k as f64 * 0.25).unwrap())
                .fold(f64::INFINITY, f64::min);
            // n = 1 is astronomically off (qEπ_1 -> 1.5e18); n = 2 still
            // two orders of magnitude above the visible curves.
            assert!(
                min_cn > 50.0 * min_c4,
                "n = {n}: min {min_cn:e} vs C4 min {min_c4:e}"
            );
        }
    }
}
