//! The single-pass column kernel behind landscape sweeps.
//!
//! Every consumer of the closed forms evaluates them over *columns*: all
//! probe counts `n = 1..=n_max` at one listening period `r`. Evaluated
//! per cell through [`cost::mean_cost_from_pis`], each `n` re-sums the π
//! prefix `Σ_{i<n} π_i(r)` from scratch — `O(n_max²)` floating-point
//! additions per column. [`ColumnKernel`] walks the column once instead:
//! it threads a *running* prefix sum down the column and hoists every
//! scenario-constant factor (`q`, `1 − q`, `q·E`, and the per-column
//! `r + c`, `(r + c)·q`) out of the loop, emitting `C(n, r)` and
//! `E(n, r)` for the whole column in `O(n_max)` — a ~`n_max/2`-fold
//! arithmetic reduction (100× at the paper's `n_max = 200` grids).
//!
//! # Bit-identity
//!
//! The kernel is **bit-identical** to the per-`n` evaluators, not merely
//! close, because it performs the *same float operations in the same
//! order*:
//!
//! - `pis[..n].iter().sum::<f64>()` folds left-to-right from `0.0`:
//!   `((0.0 + π_0) + π_1) + … + π_{n−1}`. The kernel's running sum starts
//!   at `0.0` and adds `π_{n−1}` on the step that evaluates `n`, so after
//!   that step it holds exactly the same chain of additions — IEEE-754
//!   operations are deterministic, so the bits agree for every `n`.
//! - Each hoisted product mirrors the left-associated grouping of the
//!   per-`n` arithmetic: `(r+c)·q·Σ` is `((r+c)·q)·Σ` in both paths, and
//!   `q·E·π_n` is `(q·E)·π_n`, so factoring `(r+c)·q` and `q·E` out of
//!   the loop changes no intermediate value.
//!
//! The golden tests (and the `zeroconf_proptest`-gated property suite)
//! assert this with [`f64::to_bits`] comparisons across scenarios, grids
//! including `r = 0` and subnormal-adjacent `r`, and `n_max` up to 256.

use std::sync::atomic::{AtomicU8, Ordering};

use zeroconf_dist::noanswer;
pub use zeroconf_simd::{Backend, Mode};
use zeroconf_simd::{BlockTerms, ColumnTerms};

use crate::cost::{self, check_n, check_r};
use crate::{CostError, Scenario};

/// The scenario-constant factors of Eq. (3)/(4), hoisted once.
///
/// Every evaluator of the closed forms needs the same four products of
/// scenario parameters; this is the *single* place they are computed, so
/// the column kernel, the legacy per-`n` `*_from_pis` evaluators and the
/// reporting code share one hoist instead of three copies. Each field is
/// exactly the expression the per-`n` arithmetic evaluates inline
/// (`1 − q`, `q·E`), so routing through the struct changes no bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioFactors {
    /// Occupancy `q`.
    pub q: f64,
    /// `1 − q`, the free-address weight of Eq. (3)'s numerator.
    pub one_minus_q: f64,
    /// `q·E`, the collision-penalty factor (left-associated `q·E·π_n`).
    pub q_error_cost: f64,
    /// Probe postage `c` (joins `r` per column as `r + c`).
    pub probe_cost: f64,
    /// Collision penalty `E` alone (reporting, asymptotes).
    pub error_cost: f64,
}

impl ScenarioFactors {
    /// Hoists `q`, `1 − q`, `q·E`, `c` and `E` from the scenario.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ScenarioFactors {
        let q = scenario.occupancy();
        ScenarioFactors {
            q,
            one_minus_q: 1.0 - q,
            q_error_cost: q * scenario.error_cost(),
            probe_cost: scenario.probe_cost(),
            error_cost: scenario.error_cost(),
        }
    }
}

/// A reusable evaluator for one scenario's Eq. (3)/(4) columns.
///
/// Construction hoists the scenario-constant factors; [`ColumnKernel::evaluate`]
/// then walks one `r` column in a single pass, writing results straight
/// into caller-provided slices (no per-cell allocation).
///
/// ```
/// use zeroconf_cost::{cost, kernel::ColumnKernel, paper};
///
/// # fn main() -> Result<(), zeroconf_cost::CostError> {
/// let scenario = paper::figure2_scenario()?;
/// let kernel = ColumnKernel::new(&scenario);
/// let (n_max, r) = (8, 2.0);
/// let pis = cost::pi_table(&scenario, n_max, r)?;
/// let mut costs = vec![0.0; n_max as usize];
/// let mut errors = vec![0.0; n_max as usize];
/// kernel.evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
/// // Bit-identical to the per-n closed forms:
/// assert_eq!(
///     costs[3].to_bits(),
///     cost::mean_cost(&scenario, 4, r)?.to_bits()
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnKernel {
    /// The shared scenario-constant hoist.
    factors: ScenarioFactors,
    /// SIMD tier for the cost/error pass (requests are clamped to the CPU's
    /// actual capabilities at dispatch).
    backend: Backend,
    /// Rounding discipline for the cost/error pass.
    mode: Mode,
}

impl ColumnKernel {
    /// Hoists the scenario constants `q`, `1 − q`, `q·E` and `c` (via
    /// the shared [`ScenarioFactors`]). Uses the scalar reference kernel;
    /// see [`ColumnKernel::with_backend`] for the vectorized tiers.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ColumnKernel {
        Self::with_backend(scenario, Backend::Scalar, Mode::Exact)
    }

    /// [`ColumnKernel::new`] with an explicit SIMD backend and rounding
    /// mode for the cost/error pass. [`Mode::Exact`] keeps every output
    /// `to_bits`-identical to the scalar kernel on all backends;
    /// [`Mode::Fast`] trades that for fused/reassociated arithmetic.
    #[must_use]
    pub fn with_backend(scenario: &Scenario, backend: Backend, mode: Mode) -> ColumnKernel {
        ColumnKernel {
            factors: ScenarioFactors::new(scenario),
            backend,
            mode,
        }
    }

    /// The SIMD tier this kernel dispatches its cost/error pass to.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The rounding discipline of the cost/error pass.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Evaluates one `r` column in a single pass, writing `C(n, r)` into
    /// `costs[n − 1]` and `E(n, r)` into `errors[n − 1]` for
    /// `n = 1..=n_max`. Either output may be `None` when the metric is
    /// not wanted; provided slices must have exactly `n_max` entries.
    ///
    /// `pis` is the π-table `[π_0(r), …]` from [`cost::pi_table`] (it may
    /// be longer than `n_max + 1`, e.g. a cached table for a larger grid).
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n_max == 0`.
    /// - [`CostError::InvalidListeningPeriod`] for negative/non-finite `r`.
    /// - [`CostError::PiTableTooShort`] when `pis` has fewer than
    ///   `n_max + 1` entries.
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `n_max` long —
    /// a caller-side sizing bug, not a data-dependent condition.
    pub fn evaluate(
        &self,
        n_max: u32,
        r: f64,
        pis: &[f64],
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        self.evaluate_with_statistic(n_max, r, pis, costs, errors, None, None)
    }

    /// [`ColumnKernel::evaluate`], additionally emitting the per-cell
    /// sufficient statistic `(Σ_{i<n} π_i(r), π_n(r))` into `pi_prefix`
    /// and `pi_n` — the inputs of the parametric reconstruction layer
    /// ([`crate::param::ParamLandscape`]). The statistic is the kernel's
    /// *own* running state, captured mid-loop, so reconstructing `C` and
    /// `Err` from it replays bit-identical floats.
    ///
    /// All four outputs are optional; provided slices must have exactly
    /// `n_max` entries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `n_max` long —
    /// a caller-side sizing bug, not a data-dependent condition.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with_statistic(
        &self,
        n_max: u32,
        r: f64,
        pis: &[f64],
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
        mut pi_prefix: Option<&mut [f64]>,
        mut pi_n_out: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        check_n(n_max)?;
        check_r(r)?;
        let n_max = n_max as usize;
        if pis.len() < n_max + 1 {
            return Err(CostError::PiTableTooShort {
                needed: n_max + 1,
                len: pis.len(),
            });
        }
        for (slice, what) in [
            (costs.as_deref(), "cost"),
            (errors.as_deref(), "error"),
            (pi_prefix.as_deref(), "π-prefix"),
            (pi_n_out.as_deref(), "π_n"),
        ] {
            if let Some(slice) = slice {
                assert_eq!(slice.len(), n_max, "{what} slice must hold one f64 per n");
            }
        }

        // Per-column constants of Eq. (3): `r + c` and `(r + c)·q`,
        // grouped exactly as the per-n path groups them.
        let f = &self.factors;
        let r_plus_c = r + f.probe_cost;
        let r_plus_c_q = r_plus_c * f.q;
        if self.backend != Backend::Scalar {
            return self.evaluate_vectorized(
                n_max, pis, r_plus_c, r_plus_c_q, costs, errors, pi_prefix, pi_n_out,
            );
        }
        // Running Σ_{i<n} π_i(r); starts at 0.0 like `iter().sum()`.
        let mut pi_prefix_sum = 0.0f64;
        for n in 1..=n_max {
            pi_prefix_sum += pis[n - 1];
            let pi_n = pis[n];
            let denominator = 1.0 - f.q * (1.0 - pi_n);
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c * n as f64 * f.one_minus_q;
                let occupied_address_probing = r_plus_c_q * pi_prefix_sum;
                let collision_penalty = f.q_error_cost * pi_n;
                costs[n - 1] =
                    (free_address_probing + occupied_address_probing + collision_penalty)
                        / denominator;
            }
            if let Some(errors) = errors.as_deref_mut() {
                errors[n - 1] = f.q * pi_n / denominator;
            }
            if let Some(prefix) = pi_prefix.as_deref_mut() {
                prefix[n - 1] = pi_prefix_sum;
            }
            if let Some(tail) = pi_n_out.as_deref_mut() {
                tail[n - 1] = pi_n;
            }
        }
        Ok(())
    }

    /// The SIMD split of the column pass: a scalar prefix scan (serial by
    /// nature, and the *same* left fold as the reference loop, so the
    /// statistic keeps its bits) feeding the lane-dispatched cost/error
    /// pass of `zeroconf_simd::cost_pass`. In [`Mode::Exact`] the lane
    /// kernel keeps the scalar association, so this whole path stays
    /// `to_bits`-identical to the reference loop.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_vectorized(
        &self,
        n_max: usize,
        pis: &[f64],
        r_plus_c: f64,
        r_plus_c_q: f64,
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
        pi_prefix: Option<&mut [f64]>,
        pi_n_out: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        thread_local! {
            // Prefix scratch for calls that don't request the statistic
            // slab; reused across columns so the hot path never allocates.
            static PREFIX_SCRATCH: std::cell::RefCell<Vec<f64>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        let f = &self.factors;
        // π_n for n = 1..=n_max is a contiguous view of the table.
        let tail = &pis[1..=n_max];
        if let Some(out) = pi_n_out {
            out.copy_from_slice(tail);
        }
        let terms = ColumnTerms {
            q: f.q,
            one_minus_q: f.one_minus_q,
            q_error_cost: f.q_error_cost,
            r_plus_c,
            r_plus_c_q,
        };
        let scan_and_pass = |prefix: &mut [f64]| {
            // The same left fold as the reference loop: starts at 0.0 and
            // adds π_{n−1} on the step that evaluates n.
            let mut pi_prefix_sum = 0.0f64;
            for (n, slot) in prefix.iter_mut().enumerate() {
                pi_prefix_sum += pis[n];
                *slot = pi_prefix_sum;
            }
            zeroconf_simd::cost_pass(self.backend, self.mode, terms, prefix, tail, costs, errors);
        };
        match pi_prefix {
            Some(prefix) => scan_and_pass(prefix),
            None => PREFIX_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                scratch.resize(n_max, 0.0);
                scan_and_pass(&mut scratch[..n_max]);
            }),
        }
        Ok(())
    }
}

/// Convenience wrapper: computes the π-table for `(scenario, r)` and runs
/// the kernel over it, allocating fresh output buffers. The engine's hot
/// path uses [`ColumnKernel::evaluate`] against cached tables and
/// preallocated buffers instead; this entry serves tests, benches and
/// one-off column evaluations.
///
/// # Errors
///
/// Same conditions as [`ColumnKernel::evaluate`].
pub fn evaluate_column(
    scenario: &Scenario,
    n_max: u32,
    r: f64,
) -> Result<(Vec<f64>, Vec<f64>), CostError> {
    let pis = cost::pi_table(scenario, n_max, r)?;
    let mut costs = vec![0.0; n_max as usize];
    let mut errors = vec![0.0; n_max as usize];
    ColumnKernel::new(scenario).evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
    Ok((costs, errors))
}

/// A blocked evaluator: B `r`-columns per pass.
///
/// [`ColumnKernel`] removed the per-cell arithmetic; what remains of the
/// cold path is building π-tables column by column — one virtual
/// `survival` call per (round, column) cell plus the telescoped division
/// and clamp. `ColumnBlockKernel` turns that inside out: it walks probe
/// rounds `i = 1..=n_max` *across a whole block of columns*, calling
/// [`noanswer::p_i_batch`] once per round so the reply-time distribution
/// evaluates its closed form over the block with hoisted constants and a
/// single virtual dispatch.
///
/// # The zero-tail cutoff
///
/// The running product `π_i(r) = π_{i−1}(r)·p_i(r)` underflows to exactly
/// `+0.0` within a few dozen rounds on realistic grids (the paper's
/// figure-2 scenario reaches `π ≈ 1e−309` by round ~25 at `r = 1`). Once
/// it does, every later entry of that column is exactly `+0.0` too —
/// `p_i ∈ [0, 1]` is clamped and never NaN, and IEEE `+0.0 · p` is
/// `+0.0` — so the scalar recurrence can be *replayed without evaluating
/// it*: the block builder drops the column from the active set and leaves
/// the pre-zeroed tail in place. This skips the dominant `exp` work for
/// most of each column while remaining bit-identical to
/// [`cost::pi_table`], which the golden and property suites assert with
/// [`f64::to_bits`].
#[derive(Debug)]
pub struct ColumnBlockKernel {
    scenario: Scenario,
    kernel: ColumnKernel,
    /// Weakest SIMD tier any distribution batch actually ran with
    /// (`Backend` discriminant, folded with `fetch_min`). Starts at the
    /// requested backend; a distribution without a vector override drags
    /// it down to `Scalar`, which the engine surfaces in its stats.
    dist_used: AtomicU8,
}

impl Clone for ColumnBlockKernel {
    fn clone(&self) -> ColumnBlockKernel {
        ColumnBlockKernel {
            scenario: self.scenario.clone(),
            kernel: self.kernel,
            // ORDERING: a diagnostic low-water mark; cloning observes
            // whatever tier happens to be recorded, no data hangs off it.
            dist_used: AtomicU8::new(self.dist_used.load(Ordering::Relaxed)),
        }
    }
}

/// Probe rounds consumed per [`noanswer::p_rounds_batch_with`] call when
/// building π-tables. Large enough to amortize per-call dispatch and
/// pass setup across the shrinking zero-tail active set, small enough
/// that a column underflowing mid-chunk discards only a few survival
/// evaluations (live columns on realistic grids survive ~20+ rounds).
const PI_ROUND_CHUNK: usize = 8;

/// A block of π-tables in one flat slab: column `j` occupies
/// `data[j·stride .. (j+1)·stride]` where `stride = n_max + 1`. Built by
/// [`ColumnBlockKernel::pi_table_block`]; bit-identical per column to
/// [`ColumnBlockKernel::pi_tables`] but with a single allocation, which
/// matters on hot paths that rebuild every table per sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PiTableBlock {
    data: Vec<f64>,
    stride: usize,
}

impl PiTableBlock {
    /// Number of columns in the block.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.data.len() / self.stride
    }

    /// `true` when the block holds no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Column `j`'s π-table: `n_max + 1` entries, `π_0 = 1.0` first.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    #[must_use]
    pub fn column(&self, j: usize) -> &[f64] {
        &self.data[j * self.stride..(j + 1) * self.stride]
    }

    /// Per-column views over the slab, in the same shape the blocked
    /// evaluators accept (`&[T]` with `T: AsRef<[f64]>`).
    #[must_use]
    pub fn views(&self) -> Vec<&[f64]> {
        self.data.chunks_exact(self.stride).collect()
    }
}

impl ColumnBlockKernel {
    /// Hoists the scenario constants and keeps the scenario for π-table
    /// construction. Uses the scalar reference kernel; see
    /// [`ColumnBlockKernel::with_backend`] for the vectorized tiers.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ColumnBlockKernel {
        Self::with_backend(scenario, Backend::Scalar, Mode::Exact)
    }

    /// [`ColumnBlockKernel::new`] with an explicit SIMD backend and
    /// cost-pass rounding mode. π-table construction is always
    /// bit-exact regardless of `mode` (tables are cached and shared, so
    /// they must be backend-invariant); `mode` only affects the
    /// cost/error pass.
    #[must_use]
    pub fn with_backend(scenario: &Scenario, backend: Backend, mode: Mode) -> ColumnBlockKernel {
        ColumnBlockKernel {
            scenario: scenario.clone(),
            kernel: ColumnKernel::with_backend(scenario, backend, mode),
            dist_used: AtomicU8::new(backend as u8),
        }
    }

    /// The per-column kernel this block kernel evaluates with.
    #[must_use]
    pub fn kernel(&self) -> &ColumnKernel {
        &self.kernel
    }

    /// The weakest SIMD tier any distribution batch observed so far —
    /// [`ColumnKernel::backend`] if every batch vectorized as requested,
    /// [`Backend::Scalar`] if any distribution fell back to the default
    /// scalar loop.
    #[must_use]
    pub fn dist_backend_used(&self) -> Backend {
        // ORDERING: diagnostic read of the SIMD-tier low-water mark; a
        // momentarily stale tier only affects reporting, not results.
        Backend::from_u8(self.dist_used.load(Ordering::Relaxed))
    }

    /// Builds the π-tables for a whole block of listening periods,
    /// i-major with the zero-tail cutoff. Each returned table is
    /// bit-identical to `cost::pi_table(scenario, n_max, rs[j])`.
    ///
    /// # Errors
    ///
    /// [`CostError::InvalidListeningPeriod`] for any negative or
    /// non-finite `r` in the block.
    pub fn pi_tables(&self, n_max: u32, rs: &[f64]) -> Result<Vec<Vec<f64>>, CostError> {
        for &r in rs {
            check_r(r)?;
        }
        let n = n_max as usize;
        let mut tables: Vec<Vec<f64>> = rs.iter().map(|_| vec![0.0f64; n + 1]).collect();
        let mut columns: Vec<&mut [f64]> = tables.iter_mut().map(Vec::as_mut_slice).collect();
        self.build_pi_columns(n, rs, &mut columns)?;
        Ok(tables)
    }

    /// [`ColumnBlockKernel::pi_tables`] into a single flat slab instead of
    /// one heap table per column. Column `j`'s table is bit-identical to
    /// `pi_tables(n_max, rs)[j]` — both run the same construction loop —
    /// but the slab costs one allocation and one zero-fill where the
    /// per-column layout pays `rs.len()` small allocator round-trips (on
    /// the figure-2 bench grid that churn outweighs the `exp` work
    /// itself). This is the layout the throughput-critical blocked paths
    /// use; [`ColumnBlockKernel::pi_tables`] remains for callers that
    /// need individually owned tables, like the engine's per-column cache.
    ///
    /// # Errors
    ///
    /// [`CostError::InvalidListeningPeriod`] for any negative or
    /// non-finite `r` in the block.
    pub fn pi_table_block(&self, n_max: u32, rs: &[f64]) -> Result<PiTableBlock, CostError> {
        for &r in rs {
            check_r(r)?;
        }
        let n = n_max as usize;
        let stride = n + 1;
        let mut data = vec![0.0f64; rs.len() * stride];
        let mut columns: Vec<&mut [f64]> = data.chunks_exact_mut(stride).collect();
        self.build_pi_columns(n, rs, &mut columns)?;
        Ok(PiTableBlock { data, stride })
    }

    /// The i-major π construction loop shared by both table layouts: each
    /// `columns[j]` is a pre-zeroed slice of `n + 1` entries that receives
    /// column `j`'s table in place. Keeping one loop for both storage
    /// shapes is what makes the slab bit-exactness a structural fact
    /// rather than a parallel-implementation promise.
    ///
    /// Probe rounds are consumed [`PI_ROUND_CHUNK`] at a time through
    /// [`noanswer::p_rounds_batch_with`]: one scaling fill, one batch
    /// survival, and one clamp per *chunk* of rounds instead of per round.
    /// The zero-tail active set still compacts, just at chunk granularity
    /// — a column that underflows mid-chunk wastes at most
    /// `PI_ROUND_CHUNK − 1` discarded survival evaluations, a small price
    /// against the per-call overhead this amortizes (the cutoff shrinks
    /// batches until dispatch cost rivals the survival work itself).
    /// Replay stays exact: each written entry is the same
    /// `running *= p_i` fold over the same batch-computed factors.
    fn build_pi_columns(
        &self,
        n: usize,
        rs: &[f64],
        columns: &mut [&mut [f64]],
    ) -> Result<(), CostError> {
        let dist = self.scenario.reply_time();
        for column in columns.iter_mut() {
            column[0] = 1.0;
        }
        // Columns whose running product is still nonzero, compacted in
        // place so the round batches always see a dense block.
        let mut active: Vec<usize> = (0..rs.len()).collect();
        let mut rs_active: Vec<f64> = rs.to_vec();
        let mut p_rows: Vec<f64> = vec![0.0f64; rs.len() * PI_ROUND_CHUNK];
        let mut i = 1;
        while i <= n {
            if active.is_empty() {
                break;
            }
            let rounds = PI_ROUND_CHUNK.min(n - i + 1);
            let width = active.len();
            let used = noanswer::p_rounds_batch_with(
                dist,
                self.kernel.backend(),
                &rs_active[..width],
                i,
                rounds,
                &mut p_rows[..rounds * width],
            )?;
            // ORDERING: monotonic min of a diagnostic tier marker; the
            // fetch_min's atomicity alone keeps it a true low-water mark.
            self.dist_used.fetch_min(used as u8, Ordering::Relaxed);
            for (k, p_row) in p_rows[..rounds * width].chunks_exact(width).enumerate() {
                for (slot, &p) in p_row.iter().enumerate() {
                    let column = &mut *columns[active[slot]];
                    let previous = column[i + k - 1];
                    if previous != 0.0 {
                        // Replays `running *= p_i` for this column exactly.
                        column[i + k] = previous * p;
                    }
                    // A column that reached +0.0 keeps its pre-zeroed
                    // tail: the scalar recurrence would only ever produce
                    // +0.0·p = +0.0 from here on (p is clamped to [0, 1],
                    // never NaN); its later factors this chunk computed
                    // are simply discarded.
                }
            }
            let last = i + rounds - 1;
            let mut kept = 0;
            for slot in 0..width {
                let column = active[slot];
                if columns[column][last] != 0.0 {
                    active[kept] = column;
                    rs_active[kept] = rs_active[slot];
                    kept += 1;
                }
            }
            active.truncate(kept);
            rs_active.truncate(kept);
            i += rounds;
        }
        Ok(())
    }

    /// Evaluates a block of columns against their π-tables, writing
    /// r-major results: column `j` lands in `out[j·n_max .. (j+1)·n_max]`.
    /// Each column is evaluated by [`ColumnKernel::evaluate`], so results
    /// are bit-identical per column by construction. Either output may be
    /// `None`; provided slices must hold exactly `rs.len()·n_max` values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`], per column.
    ///
    /// # Panics
    ///
    /// Panics when `tables` does not hold one π-table per column or a
    /// provided output slice is not exactly `rs.len()·n_max` long.
    pub fn evaluate<T: AsRef<[f64]>>(
        &self,
        n_max: u32,
        rs: &[f64],
        tables: &[T],
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        self.evaluate_with_statistic(n_max, rs, tables, costs, errors, None, None)
    }

    /// [`ColumnBlockKernel::evaluate`], additionally emitting the r-major
    /// sufficient-statistic slabs `(Σ_{i<n} π_i, π_n)` — the storage the
    /// parametric layer ([`crate::param::ParamLandscape`]) wraps. All
    /// four outputs are optional; provided slices must hold exactly
    /// `rs.len()·n_max` values, and column `j` lands in
    /// `out[j·n_max .. (j+1)·n_max]` in every slab.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`], per column.
    ///
    /// # Panics
    ///
    /// Panics when `tables` does not hold one π-table per column or a
    /// provided output slice is not exactly `rs.len()·n_max` long.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with_statistic<T: AsRef<[f64]>>(
        &self,
        n_max: u32,
        rs: &[f64],
        tables: &[T],
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
        mut pi_prefix: Option<&mut [f64]>,
        mut pi_n: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        assert_eq!(
            rs.len(),
            tables.len(),
            "block evaluation needs one π-table per column"
        );
        let cells = rs.len() * n_max as usize;
        for (slice, what) in [
            (costs.as_deref(), "cost"),
            (errors.as_deref(), "error"),
            (pi_prefix.as_deref(), "π-prefix"),
            (pi_n.as_deref(), "π_n"),
        ] {
            if let Some(slice) = slice {
                assert_eq!(slice.len(), cells, "{what} block must hold rs.len()*n_max");
            }
        }
        let column = n_max as usize;
        if self.kernel.backend() != Backend::Scalar {
            return self
                .evaluate_block_vectorized(n_max, rs, tables, costs, errors, pi_prefix, pi_n);
        }
        for (j, (&r, table)) in rs.iter().zip(tables).enumerate() {
            let span = j * column..(j + 1) * column;
            self.kernel.evaluate_with_statistic(
                n_max,
                r,
                table.as_ref(),
                costs.as_deref_mut().map(|c| &mut c[span.clone()]),
                errors.as_deref_mut().map(|e| &mut e[span.clone()]),
                pi_prefix.as_deref_mut().map(|p| &mut p[span.clone()]),
                pi_n.as_deref_mut().map(|p| &mut p[span.clone()]),
            )?;
        }
        Ok(())
    }

    /// The column-parallel SIMD path of the block pass: one
    /// [`zeroconf_simd::cost_block_pass`] call over the whole block, with
    /// `LANES` columns advancing in lockstep so their serially-dependent π
    /// prefix folds retire concurrently. Each lane replays the scalar
    /// per-column program exactly (same left fold, same association), so
    /// exact mode stays `to_bits`-identical to the per-column loop above —
    /// asserted by the cross-backend parity suite. Argument validation
    /// mirrors [`ColumnKernel::evaluate_with_statistic`] per column.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_block_vectorized<T: AsRef<[f64]>>(
        &self,
        n_max: u32,
        rs: &[f64],
        tables: &[T],
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
        pi_prefix: Option<&mut [f64]>,
        pi_n: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        check_n(n_max)?;
        let column = n_max as usize;
        let mut views: Vec<&[f64]> = Vec::with_capacity(rs.len());
        for (&r, table) in rs.iter().zip(tables) {
            check_r(r)?;
            let table = table.as_ref();
            if table.len() < column + 1 {
                return Err(CostError::PiTableTooShort {
                    needed: column + 1,
                    len: table.len(),
                });
            }
            views.push(table);
        }
        let f = &self.kernel.factors;
        // The same per-column hoists as the scalar path, column-major:
        // `r + c` and `(r + c)·q`, grouped exactly as the per-n arithmetic.
        let r_plus_c: Vec<f64> = rs.iter().map(|&r| r + f.probe_cost).collect();
        let r_plus_c_q: Vec<f64> = r_plus_c.iter().map(|&rc| rc * f.q).collect();
        zeroconf_simd::cost_block_pass(
            self.kernel.backend(),
            self.kernel.mode(),
            BlockTerms {
                q: f.q,
                one_minus_q: f.one_minus_q,
                q_error_cost: f.q_error_cost,
            },
            &r_plus_c,
            &r_plus_c_q,
            column,
            &views,
            costs,
            errors,
            pi_prefix,
            pi_n,
        );
        Ok(())
    }

    /// Builds the full sufficient-statistic landscape for an `(n, r)`
    /// grid: π-tables via [`ColumnBlockKernel::pi_tables`] (blocked,
    /// zero-tail cutoff), then one statistic pass — after which every
    /// re-evaluation under changed `(q, E, c)` is pure arithmetic.
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n_max == 0`.
    /// - Same conditions as [`ColumnBlockKernel::pi_tables`].
    pub fn param_landscape(
        &self,
        n_max: u32,
        rs: &[f64],
    ) -> Result<crate::param::ParamLandscape, CostError> {
        check_n(n_max)?;
        let tables = self.pi_tables(n_max, rs)?;
        let cells = rs.len() * n_max as usize;
        let mut pi_prefix = vec![0.0f64; cells];
        let mut pi_n = vec![0.0f64; cells];
        self.evaluate_with_statistic(
            n_max,
            rs,
            &tables,
            None,
            None,
            Some(&mut pi_prefix),
            Some(&mut pi_n),
        )?;
        Ok(crate::param::ParamLandscape::from_parts(
            n_max,
            rs.to_vec(),
            pi_prefix,
            pi_n,
        ))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use super::*;

    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn kernel_is_bit_identical_to_per_n_closed_forms() {
        let s = figure2();
        let n_max = 40;
        for r in [0.0, 1e-12, 0.1, 2.0, 17.5, 500.0] {
            let (costs, errors) = evaluate_column(&s, n_max, r).unwrap();
            for n in 1..=n_max {
                let direct_cost = cost::mean_cost(&s, n, r).unwrap();
                let direct_error = cost::error_probability(&s, n, r).unwrap();
                assert_eq!(
                    costs[n as usize - 1].to_bits(),
                    direct_cost.to_bits(),
                    "C(n = {n}, r = {r})"
                );
                assert_eq!(
                    errors[n as usize - 1].to_bits(),
                    direct_error.to_bits(),
                    "E(n = {n}, r = {r})"
                );
            }
        }
    }

    #[test]
    fn kernel_matches_from_pis_against_an_oversized_cached_table() {
        // The engine hands the kernel tables cached for larger grids;
        // evaluating a shorter column against them must not change bits.
        let s = figure2();
        let table = cost::pi_table(&s, 64, 3.0).unwrap();
        let n_max = 10;
        let mut costs = vec![0.0; n_max as usize];
        let mut errors = vec![0.0; n_max as usize];
        ColumnKernel::new(&s)
            .evaluate(n_max, 3.0, &table, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for n in 1..=n_max {
            let via_table = cost::mean_cost_from_pis(&s, n, 3.0, &table).unwrap();
            assert_eq!(costs[n as usize - 1].to_bits(), via_table.to_bits());
            let via_table_e = cost::error_probability_from_pis(&s, n, &table).unwrap();
            assert_eq!(errors[n as usize - 1].to_bits(), via_table_e.to_bits());
        }
    }

    #[test]
    fn single_metric_evaluation_leaves_the_other_buffer_untouched() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 2.0).unwrap();
        let kernel = ColumnKernel::new(&s);
        let mut costs = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, Some(&mut costs), None)
            .unwrap();
        assert_eq!(
            costs[3].to_bits(),
            cost::mean_cost(&s, 4, 2.0).unwrap().to_bits()
        );
        let mut errors = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, None, Some(&mut errors))
            .unwrap();
        assert_eq!(
            errors[3].to_bits(),
            cost::error_probability(&s, 4, 2.0).unwrap().to_bits()
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = figure2();
        let kernel = ColumnKernel::new(&s);
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        assert!(matches!(
            kernel.evaluate(0, 1.0, &pis, None, None),
            Err(CostError::InvalidProbeCount { n: 0 })
        ));
        assert!(matches!(
            kernel.evaluate(4, -1.0, &pis, None, None),
            Err(CostError::InvalidListeningPeriod { .. })
        ));
        assert!(matches!(
            kernel.evaluate(8, 1.0, &pis, None, None),
            Err(CostError::PiTableTooShort { needed: 9, len: 5 })
        ));
        assert!(evaluate_column(&s, 3, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "cost slice must hold one f64 per n")]
    fn wrongly_sized_output_slice_panics() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        let mut costs = vec![0.0; 3];
        let _ = ColumnKernel::new(&s).evaluate(4, 1.0, &pis, Some(&mut costs), None);
    }

    /// The blocked π builder must replay `cost::pi_table` bit for bit on
    /// a grid whose columns underflow to +0.0 at different rounds — the
    /// zero-tail cutoff has to hand back exactly the scalar tails.
    #[test]
    fn block_pi_tables_are_bit_identical_to_per_column_tables() {
        let s = figure2();
        let n_max = 200;
        let rs: Vec<f64> = (0..40).map(|k| 0.1 + k as f64 * 0.75).collect();
        let block = ColumnBlockKernel::new(&s);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let scalar = cost::pi_table(&s, n_max, r).unwrap();
            assert_eq!(tables[j].len(), scalar.len(), "r = {r}");
            for (i, (a, b)) in tables[j].iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "π_{i}({r})");
            }
        }
    }

    /// Step distributions drive π to an exact 0.0 without underflow;
    /// mixtures exercise the default (scalar-loop) batch survival.
    #[test]
    fn block_pi_tables_handle_exact_zeros_and_mixtures() {
        use zeroconf_dist::{DefectiveDeterministic, Mixture, ReplyTimeDistribution};
        let step = Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e6)
            .reply_time(Arc::new(DefectiveDeterministic::new(1.0, 1.0).unwrap()))
            .build()
            .unwrap();
        let a: Arc<dyn ReplyTimeDistribution> =
            Arc::new(DefectiveExponential::new(0.9, 10.0, 1.0).unwrap());
        let b: Arc<dyn ReplyTimeDistribution> =
            Arc::new(DefectiveDeterministic::new(0.5, 2.0).unwrap());
        let mixed = Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e6)
            .reply_time(Arc::new(Mixture::new(vec![(0.5, a), (0.5, b)]).unwrap()))
            .build()
            .unwrap();
        let rs = [0.0, 0.25, 0.5, 1.0, 2.0];
        for scenario in [&step, &mixed] {
            let tables = ColumnBlockKernel::new(scenario).pi_tables(16, &rs).unwrap();
            for (j, &r) in rs.iter().enumerate() {
                let scalar = cost::pi_table(scenario, 16, r).unwrap();
                for (i, (x, y)) in tables[j].iter().zip(&scalar).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "π_{i}({r})");
                }
            }
        }
    }

    #[test]
    fn block_evaluate_matches_the_column_kernel_r_major() {
        let s = figure2();
        let n_max = 32u32;
        let rs = [0.0, 0.4, 2.0, 9.5];
        let block = ColumnBlockKernel::new(&s);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        let cells = rs.len() * n_max as usize;
        let mut costs = vec![0.0; cells];
        let mut errors = vec![0.0; cells];
        block
            .evaluate(n_max, &rs, &tables, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let (column_costs, column_errors) = evaluate_column(&s, n_max, r).unwrap();
            let span = j * n_max as usize..(j + 1) * n_max as usize;
            for (a, b) in costs[span.clone()].iter().zip(&column_costs) {
                assert_eq!(a.to_bits(), b.to_bits(), "C column at r = {r}");
            }
            for (a, b) in errors[span].iter().zip(&column_errors) {
                assert_eq!(a.to_bits(), b.to_bits(), "E column at r = {r}");
            }
        }
    }

    #[test]
    fn block_rejects_invalid_listening_periods() {
        let s = figure2();
        let block = ColumnBlockKernel::new(&s);
        assert!(block.pi_tables(8, &[1.0, -2.0]).is_err());
        assert!(block.pi_tables(8, &[f64::INFINITY]).is_err());
        assert!(block.pi_tables(8, &[]).unwrap().is_empty());
        assert!(block.pi_table_block(8, &[1.0, -2.0]).is_err());
        assert!(block.pi_table_block(8, &[f64::NAN]).is_err());
        assert!(block.pi_table_block(8, &[]).unwrap().is_empty());
    }

    /// The flat-slab layout carries exactly the per-column tables: same
    /// bits, same column extents, and views that feed straight into the
    /// blocked evaluator.
    #[test]
    fn pi_table_block_matches_per_column_tables_bit_for_bit() {
        let s = figure2();
        let n_max = 200;
        let rs: Vec<f64> = (0..40).map(|k| 0.1 + k as f64 * 0.75).collect();
        let block = ColumnBlockKernel::new(&s);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        let slab = block.pi_table_block(n_max, &rs).unwrap();
        assert_eq!(slab.columns(), rs.len());
        for (j, table) in tables.iter().enumerate() {
            let column = slab.column(j);
            assert_eq!(column.len(), table.len(), "column {j}");
            for (i, (a, b)) in column.iter().zip(table).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "π_{i} of column {j}");
            }
        }
        let cells = rs.len() * n_max as usize;
        let (mut from_vecs, mut from_slab) = (vec![0.0; cells], vec![0.0; cells]);
        block
            .evaluate(n_max, &rs, &tables, Some(&mut from_vecs), None)
            .unwrap();
        block
            .evaluate(n_max, &rs, &slab.views(), Some(&mut from_slab), None)
            .unwrap();
        for (k, (a, b)) in from_vecs.iter().zip(&from_slab).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cost cell {k}");
        }
    }
}
