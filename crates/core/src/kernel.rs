//! The single-pass column kernel behind landscape sweeps.
//!
//! Every consumer of the closed forms evaluates them over *columns*: all
//! probe counts `n = 1..=n_max` at one listening period `r`. Evaluated
//! per cell through [`cost::mean_cost_from_pis`], each `n` re-sums the π
//! prefix `Σ_{i<n} π_i(r)` from scratch — `O(n_max²)` floating-point
//! additions per column. [`ColumnKernel`] walks the column once instead:
//! it threads a *running* prefix sum down the column and hoists every
//! scenario-constant factor (`q`, `1 − q`, `q·E`, and the per-column
//! `r + c`, `(r + c)·q`) out of the loop, emitting `C(n, r)` and
//! `E(n, r)` for the whole column in `O(n_max)` — a ~`n_max/2`-fold
//! arithmetic reduction (100× at the paper's `n_max = 200` grids).
//!
//! # Bit-identity
//!
//! The kernel is **bit-identical** to the per-`n` evaluators, not merely
//! close, because it performs the *same float operations in the same
//! order*:
//!
//! - `pis[..n].iter().sum::<f64>()` folds left-to-right from `0.0`:
//!   `((0.0 + π_0) + π_1) + … + π_{n−1}`. The kernel's running sum starts
//!   at `0.0` and adds `π_{n−1}` on the step that evaluates `n`, so after
//!   that step it holds exactly the same chain of additions — IEEE-754
//!   operations are deterministic, so the bits agree for every `n`.
//! - Each hoisted product mirrors the left-associated grouping of the
//!   per-`n` arithmetic: `(r+c)·q·Σ` is `((r+c)·q)·Σ` in both paths, and
//!   `q·E·π_n` is `(q·E)·π_n`, so factoring `(r+c)·q` and `q·E` out of
//!   the loop changes no intermediate value.
//!
//! The golden tests (and the `zeroconf_proptest`-gated property suite)
//! assert this with [`f64::to_bits`] comparisons across scenarios, grids
//! including `r = 0` and subnormal-adjacent `r`, and `n_max` up to 256.

use zeroconf_dist::noanswer;

use crate::cost::{self, check_n, check_r};
use crate::{CostError, Scenario};

/// The scenario-constant factors of Eq. (3)/(4), hoisted once.
///
/// Every evaluator of the closed forms needs the same four products of
/// scenario parameters; this is the *single* place they are computed, so
/// the column kernel, the legacy per-`n` `*_from_pis` evaluators and the
/// reporting code share one hoist instead of three copies. Each field is
/// exactly the expression the per-`n` arithmetic evaluates inline
/// (`1 − q`, `q·E`), so routing through the struct changes no bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioFactors {
    /// Occupancy `q`.
    pub q: f64,
    /// `1 − q`, the free-address weight of Eq. (3)'s numerator.
    pub one_minus_q: f64,
    /// `q·E`, the collision-penalty factor (left-associated `q·E·π_n`).
    pub q_error_cost: f64,
    /// Probe postage `c` (joins `r` per column as `r + c`).
    pub probe_cost: f64,
    /// Collision penalty `E` alone (reporting, asymptotes).
    pub error_cost: f64,
}

impl ScenarioFactors {
    /// Hoists `q`, `1 − q`, `q·E`, `c` and `E` from the scenario.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ScenarioFactors {
        let q = scenario.occupancy();
        ScenarioFactors {
            q,
            one_minus_q: 1.0 - q,
            q_error_cost: q * scenario.error_cost(),
            probe_cost: scenario.probe_cost(),
            error_cost: scenario.error_cost(),
        }
    }
}

/// A reusable evaluator for one scenario's Eq. (3)/(4) columns.
///
/// Construction hoists the scenario-constant factors; [`ColumnKernel::evaluate`]
/// then walks one `r` column in a single pass, writing results straight
/// into caller-provided slices (no per-cell allocation).
///
/// ```
/// use zeroconf_cost::{cost, kernel::ColumnKernel, paper};
///
/// # fn main() -> Result<(), zeroconf_cost::CostError> {
/// let scenario = paper::figure2_scenario()?;
/// let kernel = ColumnKernel::new(&scenario);
/// let (n_max, r) = (8, 2.0);
/// let pis = cost::pi_table(&scenario, n_max, r)?;
/// let mut costs = vec![0.0; n_max as usize];
/// let mut errors = vec![0.0; n_max as usize];
/// kernel.evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
/// // Bit-identical to the per-n closed forms:
/// assert_eq!(
///     costs[3].to_bits(),
///     cost::mean_cost(&scenario, 4, r)?.to_bits()
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnKernel {
    /// The shared scenario-constant hoist.
    factors: ScenarioFactors,
}

impl ColumnKernel {
    /// Hoists the scenario constants `q`, `1 − q`, `q·E` and `c` (via
    /// the shared [`ScenarioFactors`]).
    #[must_use]
    pub fn new(scenario: &Scenario) -> ColumnKernel {
        ColumnKernel {
            factors: ScenarioFactors::new(scenario),
        }
    }

    /// Evaluates one `r` column in a single pass, writing `C(n, r)` into
    /// `costs[n − 1]` and `E(n, r)` into `errors[n − 1]` for
    /// `n = 1..=n_max`. Either output may be `None` when the metric is
    /// not wanted; provided slices must have exactly `n_max` entries.
    ///
    /// `pis` is the π-table `[π_0(r), …]` from [`cost::pi_table`] (it may
    /// be longer than `n_max + 1`, e.g. a cached table for a larger grid).
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n_max == 0`.
    /// - [`CostError::InvalidListeningPeriod`] for negative/non-finite `r`.
    /// - [`CostError::PiTableTooShort`] when `pis` has fewer than
    ///   `n_max + 1` entries.
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `n_max` long —
    /// a caller-side sizing bug, not a data-dependent condition.
    pub fn evaluate(
        &self,
        n_max: u32,
        r: f64,
        pis: &[f64],
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        self.evaluate_with_statistic(n_max, r, pis, costs, errors, None, None)
    }

    /// [`ColumnKernel::evaluate`], additionally emitting the per-cell
    /// sufficient statistic `(Σ_{i<n} π_i(r), π_n(r))` into `pi_prefix`
    /// and `pi_n` — the inputs of the parametric reconstruction layer
    /// ([`crate::param::ParamLandscape`]). The statistic is the kernel's
    /// *own* running state, captured mid-loop, so reconstructing `C` and
    /// `Err` from it replays bit-identical floats.
    ///
    /// All four outputs are optional; provided slices must have exactly
    /// `n_max` entries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`].
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `n_max` long —
    /// a caller-side sizing bug, not a data-dependent condition.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with_statistic(
        &self,
        n_max: u32,
        r: f64,
        pis: &[f64],
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
        mut pi_prefix: Option<&mut [f64]>,
        mut pi_n_out: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        check_n(n_max)?;
        check_r(r)?;
        let n_max = n_max as usize;
        if pis.len() < n_max + 1 {
            return Err(CostError::PiTableTooShort {
                needed: n_max + 1,
                len: pis.len(),
            });
        }
        for (slice, what) in [
            (costs.as_deref(), "cost"),
            (errors.as_deref(), "error"),
            (pi_prefix.as_deref(), "π-prefix"),
            (pi_n_out.as_deref(), "π_n"),
        ] {
            if let Some(slice) = slice {
                assert_eq!(slice.len(), n_max, "{what} slice must hold one f64 per n");
            }
        }

        // Per-column constants of Eq. (3): `r + c` and `(r + c)·q`,
        // grouped exactly as the per-n path groups them.
        let f = &self.factors;
        let r_plus_c = r + f.probe_cost;
        let r_plus_c_q = r_plus_c * f.q;
        // Running Σ_{i<n} π_i(r); starts at 0.0 like `iter().sum()`.
        let mut pi_prefix_sum = 0.0f64;
        for n in 1..=n_max {
            pi_prefix_sum += pis[n - 1];
            let pi_n = pis[n];
            let denominator = 1.0 - f.q * (1.0 - pi_n);
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c * n as f64 * f.one_minus_q;
                let occupied_address_probing = r_plus_c_q * pi_prefix_sum;
                let collision_penalty = f.q_error_cost * pi_n;
                costs[n - 1] =
                    (free_address_probing + occupied_address_probing + collision_penalty)
                        / denominator;
            }
            if let Some(errors) = errors.as_deref_mut() {
                errors[n - 1] = f.q * pi_n / denominator;
            }
            if let Some(prefix) = pi_prefix.as_deref_mut() {
                prefix[n - 1] = pi_prefix_sum;
            }
            if let Some(tail) = pi_n_out.as_deref_mut() {
                tail[n - 1] = pi_n;
            }
        }
        Ok(())
    }
}

/// Convenience wrapper: computes the π-table for `(scenario, r)` and runs
/// the kernel over it, allocating fresh output buffers. The engine's hot
/// path uses [`ColumnKernel::evaluate`] against cached tables and
/// preallocated buffers instead; this entry serves tests, benches and
/// one-off column evaluations.
///
/// # Errors
///
/// Same conditions as [`ColumnKernel::evaluate`].
pub fn evaluate_column(
    scenario: &Scenario,
    n_max: u32,
    r: f64,
) -> Result<(Vec<f64>, Vec<f64>), CostError> {
    let pis = cost::pi_table(scenario, n_max, r)?;
    let mut costs = vec![0.0; n_max as usize];
    let mut errors = vec![0.0; n_max as usize];
    ColumnKernel::new(scenario).evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
    Ok((costs, errors))
}

/// A blocked evaluator: B `r`-columns per pass.
///
/// [`ColumnKernel`] removed the per-cell arithmetic; what remains of the
/// cold path is building π-tables column by column — one virtual
/// `survival` call per (round, column) cell plus the telescoped division
/// and clamp. `ColumnBlockKernel` turns that inside out: it walks probe
/// rounds `i = 1..=n_max` *across a whole block of columns*, calling
/// [`noanswer::p_i_batch`] once per round so the reply-time distribution
/// evaluates its closed form over the block with hoisted constants and a
/// single virtual dispatch.
///
/// # The zero-tail cutoff
///
/// The running product `π_i(r) = π_{i−1}(r)·p_i(r)` underflows to exactly
/// `+0.0` within a few dozen rounds on realistic grids (the paper's
/// figure-2 scenario reaches `π ≈ 1e−309` by round ~25 at `r = 1`). Once
/// it does, every later entry of that column is exactly `+0.0` too —
/// `p_i ∈ [0, 1]` is clamped and never NaN, and IEEE `+0.0 · p` is
/// `+0.0` — so the scalar recurrence can be *replayed without evaluating
/// it*: the block builder drops the column from the active set and leaves
/// the pre-zeroed tail in place. This skips the dominant `exp` work for
/// most of each column while remaining bit-identical to
/// [`cost::pi_table`], which the golden and property suites assert with
/// [`f64::to_bits`].
#[derive(Debug, Clone)]
pub struct ColumnBlockKernel {
    scenario: Scenario,
    kernel: ColumnKernel,
}

impl ColumnBlockKernel {
    /// Hoists the scenario constants and keeps the scenario for π-table
    /// construction.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ColumnBlockKernel {
        ColumnBlockKernel {
            scenario: scenario.clone(),
            kernel: ColumnKernel::new(scenario),
        }
    }

    /// The per-column kernel this block kernel evaluates with.
    #[must_use]
    pub fn kernel(&self) -> &ColumnKernel {
        &self.kernel
    }

    /// Builds the π-tables for a whole block of listening periods,
    /// i-major with the zero-tail cutoff. Each returned table is
    /// bit-identical to `cost::pi_table(scenario, n_max, rs[j])`.
    ///
    /// # Errors
    ///
    /// [`CostError::InvalidListeningPeriod`] for any negative or
    /// non-finite `r` in the block.
    pub fn pi_tables(&self, n_max: u32, rs: &[f64]) -> Result<Vec<Vec<f64>>, CostError> {
        for &r in rs {
            check_r(r)?;
        }
        let n = n_max as usize;
        let dist = self.scenario.reply_time();
        let mut tables: Vec<Vec<f64>> = rs
            .iter()
            .map(|_| {
                let mut table = vec![0.0f64; n + 1];
                table[0] = 1.0;
                table
            })
            .collect();
        // Columns whose running product is still nonzero, compacted in
        // place so `p_i_batch` always sees a dense block.
        let mut active: Vec<usize> = (0..rs.len()).collect();
        let mut rs_active: Vec<f64> = rs.to_vec();
        let mut p_row: Vec<f64> = vec![0.0f64; rs.len()];
        for i in 1..=n {
            if active.is_empty() {
                break;
            }
            let width = active.len();
            noanswer::p_i_batch(dist, &rs_active[..width], i, &mut p_row[..width])?;
            let mut kept = 0;
            for slot in 0..width {
                let column = active[slot];
                // Replays `running *= p_i` for this column exactly.
                let next = tables[column][i - 1] * p_row[slot];
                tables[column][i] = next;
                if next != 0.0 {
                    active[kept] = column;
                    rs_active[kept] = rs_active[slot];
                    kept += 1;
                }
                // A column that reached +0.0 keeps its pre-zeroed tail:
                // the scalar recurrence would only ever produce +0.0·p =
                // +0.0 from here on (p is clamped to [0, 1], never NaN).
            }
            active.truncate(kept);
            rs_active.truncate(kept);
        }
        Ok(tables)
    }

    /// Evaluates a block of columns against their π-tables, writing
    /// r-major results: column `j` lands in `out[j·n_max .. (j+1)·n_max]`.
    /// Each column is evaluated by [`ColumnKernel::evaluate`], so results
    /// are bit-identical per column by construction. Either output may be
    /// `None`; provided slices must hold exactly `rs.len()·n_max` values.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`], per column.
    ///
    /// # Panics
    ///
    /// Panics when `tables` does not hold one π-table per column or a
    /// provided output slice is not exactly `rs.len()·n_max` long.
    pub fn evaluate<T: AsRef<[f64]>>(
        &self,
        n_max: u32,
        rs: &[f64],
        tables: &[T],
        costs: Option<&mut [f64]>,
        errors: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        self.evaluate_with_statistic(n_max, rs, tables, costs, errors, None, None)
    }

    /// [`ColumnBlockKernel::evaluate`], additionally emitting the r-major
    /// sufficient-statistic slabs `(Σ_{i<n} π_i, π_n)` — the storage the
    /// parametric layer ([`crate::param::ParamLandscape`]) wraps. All
    /// four outputs are optional; provided slices must hold exactly
    /// `rs.len()·n_max` values, and column `j` lands in
    /// `out[j·n_max .. (j+1)·n_max]` in every slab.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ColumnKernel::evaluate`], per column.
    ///
    /// # Panics
    ///
    /// Panics when `tables` does not hold one π-table per column or a
    /// provided output slice is not exactly `rs.len()·n_max` long.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_with_statistic<T: AsRef<[f64]>>(
        &self,
        n_max: u32,
        rs: &[f64],
        tables: &[T],
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
        mut pi_prefix: Option<&mut [f64]>,
        mut pi_n: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        assert_eq!(
            rs.len(),
            tables.len(),
            "block evaluation needs one π-table per column"
        );
        let cells = rs.len() * n_max as usize;
        for (slice, what) in [
            (costs.as_deref(), "cost"),
            (errors.as_deref(), "error"),
            (pi_prefix.as_deref(), "π-prefix"),
            (pi_n.as_deref(), "π_n"),
        ] {
            if let Some(slice) = slice {
                assert_eq!(slice.len(), cells, "{what} block must hold rs.len()*n_max");
            }
        }
        let column = n_max as usize;
        for (j, (&r, table)) in rs.iter().zip(tables).enumerate() {
            let span = j * column..(j + 1) * column;
            self.kernel.evaluate_with_statistic(
                n_max,
                r,
                table.as_ref(),
                costs.as_deref_mut().map(|c| &mut c[span.clone()]),
                errors.as_deref_mut().map(|e| &mut e[span.clone()]),
                pi_prefix.as_deref_mut().map(|p| &mut p[span.clone()]),
                pi_n.as_deref_mut().map(|p| &mut p[span.clone()]),
            )?;
        }
        Ok(())
    }

    /// Builds the full sufficient-statistic landscape for an `(n, r)`
    /// grid: π-tables via [`ColumnBlockKernel::pi_tables`] (blocked,
    /// zero-tail cutoff), then one statistic pass — after which every
    /// re-evaluation under changed `(q, E, c)` is pure arithmetic.
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n_max == 0`.
    /// - Same conditions as [`ColumnBlockKernel::pi_tables`].
    pub fn param_landscape(
        &self,
        n_max: u32,
        rs: &[f64],
    ) -> Result<crate::param::ParamLandscape, CostError> {
        check_n(n_max)?;
        let tables = self.pi_tables(n_max, rs)?;
        let cells = rs.len() * n_max as usize;
        let mut pi_prefix = vec![0.0f64; cells];
        let mut pi_n = vec![0.0f64; cells];
        self.evaluate_with_statistic(
            n_max,
            rs,
            &tables,
            None,
            None,
            Some(&mut pi_prefix),
            Some(&mut pi_n),
        )?;
        Ok(crate::param::ParamLandscape::from_parts(
            n_max,
            rs.to_vec(),
            pi_prefix,
            pi_n,
        ))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use super::*;

    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn kernel_is_bit_identical_to_per_n_closed_forms() {
        let s = figure2();
        let n_max = 40;
        for r in [0.0, 1e-12, 0.1, 2.0, 17.5, 500.0] {
            let (costs, errors) = evaluate_column(&s, n_max, r).unwrap();
            for n in 1..=n_max {
                let direct_cost = cost::mean_cost(&s, n, r).unwrap();
                let direct_error = cost::error_probability(&s, n, r).unwrap();
                assert_eq!(
                    costs[n as usize - 1].to_bits(),
                    direct_cost.to_bits(),
                    "C(n = {n}, r = {r})"
                );
                assert_eq!(
                    errors[n as usize - 1].to_bits(),
                    direct_error.to_bits(),
                    "E(n = {n}, r = {r})"
                );
            }
        }
    }

    #[test]
    fn kernel_matches_from_pis_against_an_oversized_cached_table() {
        // The engine hands the kernel tables cached for larger grids;
        // evaluating a shorter column against them must not change bits.
        let s = figure2();
        let table = cost::pi_table(&s, 64, 3.0).unwrap();
        let n_max = 10;
        let mut costs = vec![0.0; n_max as usize];
        let mut errors = vec![0.0; n_max as usize];
        ColumnKernel::new(&s)
            .evaluate(n_max, 3.0, &table, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for n in 1..=n_max {
            let via_table = cost::mean_cost_from_pis(&s, n, 3.0, &table).unwrap();
            assert_eq!(costs[n as usize - 1].to_bits(), via_table.to_bits());
            let via_table_e = cost::error_probability_from_pis(&s, n, &table).unwrap();
            assert_eq!(errors[n as usize - 1].to_bits(), via_table_e.to_bits());
        }
    }

    #[test]
    fn single_metric_evaluation_leaves_the_other_buffer_untouched() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 2.0).unwrap();
        let kernel = ColumnKernel::new(&s);
        let mut costs = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, Some(&mut costs), None)
            .unwrap();
        assert_eq!(
            costs[3].to_bits(),
            cost::mean_cost(&s, 4, 2.0).unwrap().to_bits()
        );
        let mut errors = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, None, Some(&mut errors))
            .unwrap();
        assert_eq!(
            errors[3].to_bits(),
            cost::error_probability(&s, 4, 2.0).unwrap().to_bits()
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = figure2();
        let kernel = ColumnKernel::new(&s);
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        assert!(matches!(
            kernel.evaluate(0, 1.0, &pis, None, None),
            Err(CostError::InvalidProbeCount { n: 0 })
        ));
        assert!(matches!(
            kernel.evaluate(4, -1.0, &pis, None, None),
            Err(CostError::InvalidListeningPeriod { .. })
        ));
        assert!(matches!(
            kernel.evaluate(8, 1.0, &pis, None, None),
            Err(CostError::PiTableTooShort { needed: 9, len: 5 })
        ));
        assert!(evaluate_column(&s, 3, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "cost slice must hold one f64 per n")]
    fn wrongly_sized_output_slice_panics() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        let mut costs = vec![0.0; 3];
        let _ = ColumnKernel::new(&s).evaluate(4, 1.0, &pis, Some(&mut costs), None);
    }

    /// The blocked π builder must replay `cost::pi_table` bit for bit on
    /// a grid whose columns underflow to +0.0 at different rounds — the
    /// zero-tail cutoff has to hand back exactly the scalar tails.
    #[test]
    fn block_pi_tables_are_bit_identical_to_per_column_tables() {
        let s = figure2();
        let n_max = 200;
        let rs: Vec<f64> = (0..40).map(|k| 0.1 + k as f64 * 0.75).collect();
        let block = ColumnBlockKernel::new(&s);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let scalar = cost::pi_table(&s, n_max, r).unwrap();
            assert_eq!(tables[j].len(), scalar.len(), "r = {r}");
            for (i, (a, b)) in tables[j].iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "π_{i}({r})");
            }
        }
    }

    /// Step distributions drive π to an exact 0.0 without underflow;
    /// mixtures exercise the default (scalar-loop) batch survival.
    #[test]
    fn block_pi_tables_handle_exact_zeros_and_mixtures() {
        use zeroconf_dist::{DefectiveDeterministic, Mixture, ReplyTimeDistribution};
        let step = Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e6)
            .reply_time(Arc::new(DefectiveDeterministic::new(1.0, 1.0).unwrap()))
            .build()
            .unwrap();
        let a: Arc<dyn ReplyTimeDistribution> =
            Arc::new(DefectiveExponential::new(0.9, 10.0, 1.0).unwrap());
        let b: Arc<dyn ReplyTimeDistribution> =
            Arc::new(DefectiveDeterministic::new(0.5, 2.0).unwrap());
        let mixed = Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e6)
            .reply_time(Arc::new(Mixture::new(vec![(0.5, a), (0.5, b)]).unwrap()))
            .build()
            .unwrap();
        let rs = [0.0, 0.25, 0.5, 1.0, 2.0];
        for scenario in [&step, &mixed] {
            let tables = ColumnBlockKernel::new(scenario).pi_tables(16, &rs).unwrap();
            for (j, &r) in rs.iter().enumerate() {
                let scalar = cost::pi_table(scenario, 16, r).unwrap();
                for (i, (x, y)) in tables[j].iter().zip(&scalar).enumerate() {
                    assert_eq!(x.to_bits(), y.to_bits(), "π_{i}({r})");
                }
            }
        }
    }

    #[test]
    fn block_evaluate_matches_the_column_kernel_r_major() {
        let s = figure2();
        let n_max = 32u32;
        let rs = [0.0, 0.4, 2.0, 9.5];
        let block = ColumnBlockKernel::new(&s);
        let tables = block.pi_tables(n_max, &rs).unwrap();
        let cells = rs.len() * n_max as usize;
        let mut costs = vec![0.0; cells];
        let mut errors = vec![0.0; cells];
        block
            .evaluate(n_max, &rs, &tables, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let (column_costs, column_errors) = evaluate_column(&s, n_max, r).unwrap();
            let span = j * n_max as usize..(j + 1) * n_max as usize;
            for (a, b) in costs[span.clone()].iter().zip(&column_costs) {
                assert_eq!(a.to_bits(), b.to_bits(), "C column at r = {r}");
            }
            for (a, b) in errors[span].iter().zip(&column_errors) {
                assert_eq!(a.to_bits(), b.to_bits(), "E column at r = {r}");
            }
        }
    }

    #[test]
    fn block_rejects_invalid_listening_periods() {
        let s = figure2();
        let block = ColumnBlockKernel::new(&s);
        assert!(block.pi_tables(8, &[1.0, -2.0]).is_err());
        assert!(block.pi_tables(8, &[f64::INFINITY]).is_err());
        assert!(block.pi_tables(8, &[]).unwrap().is_empty());
    }
}
