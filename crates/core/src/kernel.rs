//! The single-pass column kernel behind landscape sweeps.
//!
//! Every consumer of the closed forms evaluates them over *columns*: all
//! probe counts `n = 1..=n_max` at one listening period `r`. Evaluated
//! per cell through [`cost::mean_cost_from_pis`], each `n` re-sums the π
//! prefix `Σ_{i<n} π_i(r)` from scratch — `O(n_max²)` floating-point
//! additions per column. [`ColumnKernel`] walks the column once instead:
//! it threads a *running* prefix sum down the column and hoists every
//! scenario-constant factor (`q`, `1 − q`, `q·E`, and the per-column
//! `r + c`, `(r + c)·q`) out of the loop, emitting `C(n, r)` and
//! `E(n, r)` for the whole column in `O(n_max)` — a ~`n_max/2`-fold
//! arithmetic reduction (100× at the paper's `n_max = 200` grids).
//!
//! # Bit-identity
//!
//! The kernel is **bit-identical** to the per-`n` evaluators, not merely
//! close, because it performs the *same float operations in the same
//! order*:
//!
//! - `pis[..n].iter().sum::<f64>()` folds left-to-right from `0.0`:
//!   `((0.0 + π_0) + π_1) + … + π_{n−1}`. The kernel's running sum starts
//!   at `0.0` and adds `π_{n−1}` on the step that evaluates `n`, so after
//!   that step it holds exactly the same chain of additions — IEEE-754
//!   operations are deterministic, so the bits agree for every `n`.
//! - Each hoisted product mirrors the left-associated grouping of the
//!   per-`n` arithmetic: `(r+c)·q·Σ` is `((r+c)·q)·Σ` in both paths, and
//!   `q·E·π_n` is `(q·E)·π_n`, so factoring `(r+c)·q` and `q·E` out of
//!   the loop changes no intermediate value.
//!
//! The golden tests (and the `zeroconf_proptest`-gated property suite)
//! assert this with [`f64::to_bits`] comparisons across scenarios, grids
//! including `r = 0` and subnormal-adjacent `r`, and `n_max` up to 256.

use crate::cost::{self, check_n, check_r};
use crate::{CostError, Scenario};

/// A reusable evaluator for one scenario's Eq. (3)/(4) columns.
///
/// Construction hoists the scenario-constant factors; [`ColumnKernel::evaluate`]
/// then walks one `r` column in a single pass, writing results straight
/// into caller-provided slices (no per-cell allocation).
///
/// ```
/// use zeroconf_cost::{cost, kernel::ColumnKernel, paper};
///
/// # fn main() -> Result<(), zeroconf_cost::CostError> {
/// let scenario = paper::figure2_scenario()?;
/// let kernel = ColumnKernel::new(&scenario);
/// let (n_max, r) = (8, 2.0);
/// let pis = cost::pi_table(&scenario, n_max, r)?;
/// let mut costs = vec![0.0; n_max as usize];
/// let mut errors = vec![0.0; n_max as usize];
/// kernel.evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
/// // Bit-identical to the per-n closed forms:
/// assert_eq!(
///     costs[3].to_bits(),
///     cost::mean_cost(&scenario, 4, r)?.to_bits()
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnKernel {
    /// Occupancy `q`.
    q: f64,
    /// `1 − q`, the free-address weight of Eq. (3)'s numerator.
    one_minus_q: f64,
    /// `q·E`, the collision-penalty factor.
    q_error_cost: f64,
    /// Probe postage `c` (joins `r` per column as `r + c`).
    probe_cost: f64,
}

impl ColumnKernel {
    /// Hoists the scenario constants `q`, `1 − q`, `q·E` and `c`.
    #[must_use]
    pub fn new(scenario: &Scenario) -> ColumnKernel {
        let q = scenario.occupancy();
        ColumnKernel {
            q,
            one_minus_q: 1.0 - q,
            q_error_cost: q * scenario.error_cost(),
            probe_cost: scenario.probe_cost(),
        }
    }

    /// Evaluates one `r` column in a single pass, writing `C(n, r)` into
    /// `costs[n − 1]` and `E(n, r)` into `errors[n − 1]` for
    /// `n = 1..=n_max`. Either output may be `None` when the metric is
    /// not wanted; provided slices must have exactly `n_max` entries.
    ///
    /// `pis` is the π-table `[π_0(r), …]` from [`cost::pi_table`] (it may
    /// be longer than `n_max + 1`, e.g. a cached table for a larger grid).
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n_max == 0`.
    /// - [`CostError::InvalidListeningPeriod`] for negative/non-finite `r`.
    /// - [`CostError::PiTableTooShort`] when `pis` has fewer than
    ///   `n_max + 1` entries.
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `n_max` long —
    /// a caller-side sizing bug, not a data-dependent condition.
    pub fn evaluate(
        &self,
        n_max: u32,
        r: f64,
        pis: &[f64],
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
    ) -> Result<(), CostError> {
        check_n(n_max)?;
        check_r(r)?;
        let n_max = n_max as usize;
        if pis.len() < n_max + 1 {
            return Err(CostError::PiTableTooShort {
                needed: n_max + 1,
                len: pis.len(),
            });
        }
        if let Some(costs) = costs.as_deref() {
            assert_eq!(costs.len(), n_max, "cost slice must hold one f64 per n");
        }
        if let Some(errors) = errors.as_deref() {
            assert_eq!(errors.len(), n_max, "error slice must hold one f64 per n");
        }

        // Per-column constants of Eq. (3): `r + c` and `(r + c)·q`,
        // grouped exactly as the per-n path groups them.
        let r_plus_c = r + self.probe_cost;
        let r_plus_c_q = r_plus_c * self.q;
        // Running Σ_{i<n} π_i(r); starts at 0.0 like `iter().sum()`.
        let mut pi_prefix_sum = 0.0f64;
        for n in 1..=n_max {
            pi_prefix_sum += pis[n - 1];
            let pi_n = pis[n];
            let denominator = 1.0 - self.q * (1.0 - pi_n);
            if let Some(costs) = costs.as_deref_mut() {
                let free_address_probing = r_plus_c * n as f64 * self.one_minus_q;
                let occupied_address_probing = r_plus_c_q * pi_prefix_sum;
                let collision_penalty = self.q_error_cost * pi_n;
                costs[n - 1] =
                    (free_address_probing + occupied_address_probing + collision_penalty)
                        / denominator;
            }
            if let Some(errors) = errors.as_deref_mut() {
                errors[n - 1] = self.q * pi_n / denominator;
            }
        }
        Ok(())
    }
}

/// Convenience wrapper: computes the π-table for `(scenario, r)` and runs
/// the kernel over it, allocating fresh output buffers. The engine's hot
/// path uses [`ColumnKernel::evaluate`] against cached tables and
/// preallocated buffers instead; this entry serves tests, benches and
/// one-off column evaluations.
///
/// # Errors
///
/// Same conditions as [`ColumnKernel::evaluate`].
pub fn evaluate_column(
    scenario: &Scenario,
    n_max: u32,
    r: f64,
) -> Result<(Vec<f64>, Vec<f64>), CostError> {
    let pis = cost::pi_table(scenario, n_max, r)?;
    let mut costs = vec![0.0; n_max as usize];
    let mut errors = vec![0.0; n_max as usize];
    ColumnKernel::new(scenario).evaluate(n_max, r, &pis, Some(&mut costs), Some(&mut errors))?;
    Ok((costs, errors))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use super::*;

    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn kernel_is_bit_identical_to_per_n_closed_forms() {
        let s = figure2();
        let n_max = 40;
        for r in [0.0, 1e-12, 0.1, 2.0, 17.5, 500.0] {
            let (costs, errors) = evaluate_column(&s, n_max, r).unwrap();
            for n in 1..=n_max {
                let direct_cost = cost::mean_cost(&s, n, r).unwrap();
                let direct_error = cost::error_probability(&s, n, r).unwrap();
                assert_eq!(
                    costs[n as usize - 1].to_bits(),
                    direct_cost.to_bits(),
                    "C(n = {n}, r = {r})"
                );
                assert_eq!(
                    errors[n as usize - 1].to_bits(),
                    direct_error.to_bits(),
                    "E(n = {n}, r = {r})"
                );
            }
        }
    }

    #[test]
    fn kernel_matches_from_pis_against_an_oversized_cached_table() {
        // The engine hands the kernel tables cached for larger grids;
        // evaluating a shorter column against them must not change bits.
        let s = figure2();
        let table = cost::pi_table(&s, 64, 3.0).unwrap();
        let n_max = 10;
        let mut costs = vec![0.0; n_max as usize];
        let mut errors = vec![0.0; n_max as usize];
        ColumnKernel::new(&s)
            .evaluate(n_max, 3.0, &table, Some(&mut costs), Some(&mut errors))
            .unwrap();
        for n in 1..=n_max {
            let via_table = cost::mean_cost_from_pis(&s, n, 3.0, &table).unwrap();
            assert_eq!(costs[n as usize - 1].to_bits(), via_table.to_bits());
            let via_table_e = cost::error_probability_from_pis(&s, n, &table).unwrap();
            assert_eq!(errors[n as usize - 1].to_bits(), via_table_e.to_bits());
        }
    }

    #[test]
    fn single_metric_evaluation_leaves_the_other_buffer_untouched() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 2.0).unwrap();
        let kernel = ColumnKernel::new(&s);
        let mut costs = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, Some(&mut costs), None)
            .unwrap();
        assert_eq!(
            costs[3].to_bits(),
            cost::mean_cost(&s, 4, 2.0).unwrap().to_bits()
        );
        let mut errors = vec![-1.0; 4];
        kernel
            .evaluate(4, 2.0, &pis, None, Some(&mut errors))
            .unwrap();
        assert_eq!(
            errors[3].to_bits(),
            cost::error_probability(&s, 4, 2.0).unwrap().to_bits()
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = figure2();
        let kernel = ColumnKernel::new(&s);
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        assert!(matches!(
            kernel.evaluate(0, 1.0, &pis, None, None),
            Err(CostError::InvalidProbeCount { n: 0 })
        ));
        assert!(matches!(
            kernel.evaluate(4, -1.0, &pis, None, None),
            Err(CostError::InvalidListeningPeriod { .. })
        ));
        assert!(matches!(
            kernel.evaluate(8, 1.0, &pis, None, None),
            Err(CostError::PiTableTooShort { needed: 9, len: 5 })
        ));
        assert!(evaluate_column(&s, 3, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "cost slice must hold one f64 per n")]
    fn wrongly_sized_output_slice_panics() {
        let s = figure2();
        let pis = cost::pi_table(&s, 4, 1.0).unwrap();
        let mut costs = vec![0.0; 3];
        let _ = ColumnKernel::new(&s).evaluate(4, 1.0, &pis, Some(&mut costs), None);
    }
}
