//! The exact parameter sets behind every figure and number in the paper's
//! evaluation, as ready-made [`Scenario`] constructors.

use std::sync::Arc;

use zeroconf_dist::DefectiveExponential;

use crate::{CostError, Scenario};

/// Number of already-configured hosts assumed throughout the evaluation.
pub const HOSTS: u32 = 1000;

/// Figures 2 – 6 (Section 4.3): `q = 1000/65024`, `c = 2`, `E = 1e35`,
/// `F_X` a shifted defective exponential with `d = 1`, `λ = 10` and loss
/// probability `1 − l = 1e−15`.
///
/// # Errors
///
/// Never fails in practice; the signature is fallible because it composes
/// validated constructors.
pub fn figure2_scenario() -> Result<Scenario, CostError> {
    Scenario::builder()
        .hosts(HOSTS)?
        .probe_cost(2.0)
        .error_cost(1e35)
        .reply_time(Arc::new(DefectiveExponential::from_loss(1e-15, 10.0, 1.0)?))
        .build()
}

/// The Section 4.5 *unreliable-link* calibration setting (used to derive
/// `E_{r=2}` and `c_{r=2}`): loss probability `1e−5`, round-trip delay
/// `d = 1`, `λ = 10`, `q = 1000/65024`. The costs `E` and `c` are the
/// *unknowns* of that exercise; this constructor plugs in placeholders of
/// `E = 1`, `c = 1` for the calibration to overwrite.
///
/// # Errors
///
/// Never fails in practice (validated constructors).
pub fn calibration_unreliable_scenario() -> Result<Scenario, CostError> {
    Scenario::builder()
        .hosts(HOSTS)?
        .probe_cost(1.0)
        .error_cost(1.0)
        .reply_time(Arc::new(DefectiveExponential::from_loss(1e-5, 10.0, 1.0)?))
        .build()
}

/// The Section 4.5 *reliable-link* calibration setting (for `E_{r=0.2}`
/// and `c_{r=0.2}`): loss probability `1e−10`, `d = 0.1`, `λ = 100`.
///
/// # Errors
///
/// Never fails in practice (validated constructors).
pub fn calibration_reliable_scenario() -> Result<Scenario, CostError> {
    Scenario::builder()
        .hosts(HOSTS)?
        .probe_cost(1.0)
        .error_cost(1.0)
        .reply_time(Arc::new(DefectiveExponential::from_loss(
            1e-10, 100.0, 0.1,
        )?))
        .build()
}

/// The Section 6 assessment scenario: the calibrated worst-case costs
/// `E = 5e20` and `c = 3.5` kept fixed, but a realistic modern network —
/// loss probability `1e−12` and round-trip delay `d = 1 ms` (the paper
/// keeps the reply-rate parameter at `λ = 10`; with it the reported
/// optimum `n = 2, r ≈ 1.75`, `E(2, 1.75) ≈ 4e−22` is reproduced).
///
/// # Errors
///
/// Never fails in practice (validated constructors).
pub fn section6_scenario() -> Result<Scenario, CostError> {
    Scenario::builder()
        .hosts(HOSTS)?
        .probe_cost(3.5)
        .error_cost(5e20)
        .reply_time(Arc::new(DefectiveExponential::from_loss(
            1e-12, 10.0, 0.001,
        )?))
        .build()
}

/// The paper's calibrated costs for the unreliable-link setting
/// (Section 4.5): `E_{r=2} = 5·10^20`, `c_{r=2} = 3.5`.
pub const CALIBRATED_UNRELIABLE: (f64, f64) = (5e20, 3.5);

/// The paper's calibrated costs for the reliable-link setting
/// (Section 4.5): `E_{r=0.2} = 10^35`, `c_{r=0.2} = 0.5`.
pub const CALIBRATED_RELIABLE: (f64, f64) = (1e35, 0.5);

#[cfg(test)]
mod tests {
    use zeroconf_dist::ReplyTimeDistribution;

    use super::*;

    #[test]
    fn figure2_parameters_match_section_4_3() {
        let s = figure2_scenario().unwrap();
        assert!((s.occupancy() - 1000.0 / 65024.0).abs() < 1e-15);
        assert_eq!(s.probe_cost(), 2.0);
        assert_eq!(s.error_cost(), 1e35);
        let d = s.reply_time();
        assert!((d.defect() - 1e-15).abs() < 1e-24);
        assert_eq!(d.mean_given_reply(), Some(1.1));
    }

    #[test]
    fn calibration_scenarios_use_paper_network_parameters() {
        let unreliable = calibration_unreliable_scenario().unwrap();
        assert!((unreliable.reply_time().defect() - 1e-5).abs() < 1e-18);
        assert_eq!(unreliable.reply_time().mean_given_reply(), Some(1.1));

        let reliable = calibration_reliable_scenario().unwrap();
        assert!((reliable.reply_time().defect() - 1e-10).abs() < 1e-20);
        // d + 1/λ = 0.1 + 0.01 = 0.11.
        assert!((reliable.reply_time().mean_given_reply().unwrap() - 0.11).abs() < 1e-12);
    }

    #[test]
    fn section6_keeps_calibrated_costs() {
        let s = section6_scenario().unwrap();
        assert_eq!(s.error_cost(), CALIBRATED_UNRELIABLE.0);
        assert_eq!(s.probe_cost(), CALIBRATED_UNRELIABLE.1);
        assert!((s.reply_time().defect() - 1e-12).abs() < 1e-22);
    }

    #[test]
    fn section6_reports_paper_error_probability() {
        // "the probability that an address has been erroneously accepted is
        // E(2, 1.75) ≈ 4·10^−22".
        let s = section6_scenario().unwrap();
        let p = s.error_probability(2, 1.75).unwrap();
        assert!(
            p > 1e-22 && p < 1e-21,
            "E(2, 1.75) = {p:e}, paper reports ≈ 4e−22"
        );
    }
}
