//! The parametric sufficient-statistic layer.
//!
//! Eq. (3) and Eq. (4) are *rational functions of the economic
//! parameters* `(q, E, c)` once the distribution-side quantities are
//! known: for a cell `(n, r)` the only inputs that touch the reply-time
//! distribution are the prefix sum `Σ_{i<n} π_i(r)` and the tail product
//! `π_n(r)`. That pair is a **sufficient statistic** — with it in hand,
//!
//! ```text
//!            (r+c)·( n(1−q) + q·Σ_{i<n} π_i ) + q·E·π_n
//! C(n, r) = ────────────────────────────────────────────
//!                      1 − q·(1 − π_n)
//!
//! Err(n, r) = q·π_n / (1 − q·(1 − π_n))
//! ```
//!
//! are pure arithmetic in `(q, E, c)`. A whole calibration loop, Pareto
//! frontier, or optimal-`(n, r)` map over a 2-D parameter grid therefore
//! touches **no distribution math at all** after the statistic is built
//! once (the incremental-verification idea of Gainer et al. applied to
//! this model).
//!
//! [`ParamLandscape`] stores the statistic for a full `(n, r)` grid as
//! flat r-major SoA slabs, mirroring the engine's `Landscape` layout:
//! cell `(n, r_values[j])` lives at `j·n_max + (n−1)`.
//!
//! # Bit-identity
//!
//! [`ParamLandscape::cost_at`] / [`ParamLandscape::error_at`] replay the
//! *exact* float operations of [`ColumnKernel::evaluate`] in the exact
//! order — same hoisted [`ScenarioFactors`], same left-associated
//! groupings, same division — so reconstruction from the statistic is
//! bit-identical to a direct kernel sweep, not merely close. The golden
//! and `zeroconf_proptest`-gated suites assert this with
//! [`f64::to_bits`] across all six reply-time distributions.
//!
//! [`ColumnKernel::evaluate`]: crate::kernel::ColumnKernel::evaluate

use zeroconf_simd::{Backend, ColumnTerms, Mode};

use crate::kernel::ScenarioFactors;
use crate::{CostError, Scenario};

/// The per-cell sufficient statistic `(Σ_{i<n} π_i(r), π_n(r))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStatistic {
    /// `Σ_{i<n} π_i(r)`, accumulated left-to-right from `0.0` exactly as
    /// the kernel's running prefix sum.
    pub pi_prefix: f64,
    /// `π_n(r)`, the probability that all `n` probes went unanswered.
    pub pi_n: f64,
}

/// Sufficient statistics for a whole `(n, r)` grid, in flat r-major SoA
/// slabs: cell `(n, r_values[j])` is at index `j·n_max + (n−1)`.
///
/// Built by
/// [`ColumnBlockKernel::param_landscape`](crate::kernel::ColumnBlockKernel::param_landscape)
/// (or from engine-owned slabs via [`ParamLandscape::from_parts`]); once
/// built, every re-evaluation under changed `(q, E, c)` is pure
/// arithmetic via [`ParamLandscape::cost_at`] /
/// [`ParamLandscape::error_at`] / [`ParamLandscape::reconstruct`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamLandscape {
    n_max: u32,
    r_values: Vec<f64>,
    pi_prefix: Vec<f64>,
    pi_n: Vec<f64>,
}

impl ParamLandscape {
    /// Assembles a landscape from its raw slabs (the engine pool writes
    /// the slabs in disjoint column slices and hands them over whole).
    ///
    /// # Panics
    ///
    /// Panics when a slab is not exactly `r_values.len()·n_max` long or
    /// `n_max == 0` — caller-side sizing bugs, not data-dependent
    /// conditions.
    #[must_use]
    pub fn from_parts(
        n_max: u32,
        r_values: Vec<f64>,
        pi_prefix: Vec<f64>,
        pi_n: Vec<f64>,
    ) -> ParamLandscape {
        assert!(n_max > 0, "a landscape needs at least one probe count");
        let cells = r_values.len() * n_max as usize;
        assert_eq!(pi_prefix.len(), cells, "π-prefix slab must hold every cell");
        assert_eq!(pi_n.len(), cells, "π_n slab must hold every cell");
        ParamLandscape {
            n_max,
            r_values,
            pi_prefix,
            pi_n,
        }
    }

    /// Largest probe count of the grid.
    #[must_use]
    pub fn n_max(&self) -> u32 {
        self.n_max
    }

    /// The listening periods of the grid, in storage order.
    #[must_use]
    pub fn r_values(&self) -> &[f64] {
        &self.r_values
    }

    /// Number of cells (`r_values.len() · n_max`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pi_n.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pi_n.is_empty()
    }

    /// The raw r-major `Σ_{i<n} π_i` slab.
    #[must_use]
    pub fn pi_prefix(&self) -> &[f64] {
        &self.pi_prefix
    }

    /// The raw r-major `π_n` slab.
    #[must_use]
    pub fn pi_n(&self) -> &[f64] {
        &self.pi_n
    }

    /// Flat index of cell `(n, r_values[r_index])`.
    #[must_use]
    pub fn flat_index(&self, r_index: usize, n: u32) -> usize {
        r_index * self.n_max as usize + (n as usize - 1)
    }

    /// The sufficient statistic of one cell.
    ///
    /// # Panics
    ///
    /// Panics when `r_index` or `n` is outside the grid.
    #[must_use]
    pub fn statistic(&self, r_index: usize, n: u32) -> CellStatistic {
        let at = self.flat_index(r_index, n);
        CellStatistic {
            pi_prefix: self.pi_prefix[at],
            pi_n: self.pi_n[at],
        }
    }

    /// `C(n, r)` under the given economics, reconstructed from the
    /// statistic — bit-identical to the kernel's output for the same
    /// cell.
    #[must_use]
    pub fn cost_at(&self, factors: &ScenarioFactors, r_index: usize, n: u32) -> f64 {
        let at = self.flat_index(r_index, n);
        reconstruct_cost(
            factors,
            self.r_values[r_index],
            n,
            self.pi_prefix[at],
            self.pi_n[at],
        )
    }

    /// `Err(n, r)` under the given economics, reconstructed from the
    /// statistic — bit-identical to the kernel's output.
    #[must_use]
    pub fn error_at(&self, factors: &ScenarioFactors, r_index: usize, n: u32) -> f64 {
        let at = self.flat_index(r_index, n);
        reconstruct_error(factors, self.pi_n[at])
    }

    /// Reconstructs whole metric slabs under the given economics, writing
    /// r-major exactly like the kernel's block evaluation. Either output
    /// may be `None`; provided slices must hold exactly [`len`](Self::len)
    /// values.
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `len()` long.
    pub fn reconstruct(
        &self,
        factors: &ScenarioFactors,
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
    ) {
        if let Some(costs) = costs.as_deref() {
            assert_eq!(costs.len(), self.len(), "cost slab must hold every cell");
        }
        if let Some(errors) = errors.as_deref() {
            assert_eq!(errors.len(), self.len(), "error slab must hold every cell");
        }
        let n_max = self.n_max as usize;
        for (j, &r) in self.r_values.iter().enumerate() {
            // Per-column constants hoisted exactly as the kernel hoists
            // them, so the replay keeps the kernel's bits.
            let r_plus_c = r + factors.probe_cost;
            let r_plus_c_q = r_plus_c * factors.q;
            for n in 1..=n_max {
                let at = j * n_max + (n - 1);
                let pi_n = self.pi_n[at];
                let denominator = 1.0 - factors.q * (1.0 - pi_n);
                if let Some(costs) = costs.as_deref_mut() {
                    let free_address_probing = r_plus_c * n as f64 * factors.one_minus_q;
                    let occupied_address_probing = r_plus_c_q * self.pi_prefix[at];
                    let collision_penalty = factors.q_error_cost * pi_n;
                    costs[at] =
                        (free_address_probing + occupied_address_probing + collision_penalty)
                            / denominator;
                }
                if let Some(errors) = errors.as_deref_mut() {
                    errors[at] = factors.q * pi_n / denominator;
                }
            }
        }
    }

    /// [`ParamLandscape::reconstruct`] with an explicit SIMD backend and
    /// rounding mode: each column's cost/error pass dispatches through
    /// `zeroconf_simd::cost_pass`. With [`Mode::Exact`] the output is
    /// `to_bits`-identical to [`ParamLandscape::reconstruct`] on every
    /// backend; [`Mode::Fast`] fuses and reassociates (ULP-bounded, see
    /// the golden tests).
    ///
    /// # Panics
    ///
    /// Panics when a provided output slice is not exactly `len()` long.
    pub fn reconstruct_with(
        &self,
        factors: &ScenarioFactors,
        backend: Backend,
        mode: Mode,
        mut costs: Option<&mut [f64]>,
        mut errors: Option<&mut [f64]>,
    ) {
        if let Some(costs) = costs.as_deref() {
            assert_eq!(costs.len(), self.len(), "cost slab must hold every cell");
        }
        if let Some(errors) = errors.as_deref() {
            assert_eq!(errors.len(), self.len(), "error slab must hold every cell");
        }
        let n_max = self.n_max as usize;
        for (j, &r) in self.r_values.iter().enumerate() {
            let r_plus_c = r + factors.probe_cost;
            let r_plus_c_q = r_plus_c * factors.q;
            let terms = ColumnTerms {
                q: factors.q,
                one_minus_q: factors.one_minus_q,
                q_error_cost: factors.q_error_cost,
                r_plus_c,
                r_plus_c_q,
            };
            let span = j * n_max..(j + 1) * n_max;
            zeroconf_simd::cost_pass(
                backend,
                mode,
                terms,
                &self.pi_prefix[span.clone()],
                &self.pi_n[span.clone()],
                costs.as_deref_mut().map(|c| &mut c[span.clone()]),
                errors.as_deref_mut().map(|e| &mut e[span.clone()]),
            );
        }
    }

    /// The cheapest finite-cost cell under the given economics:
    /// `(r_index, n, cost, error_probability)`. `None` when no cell has a
    /// finite cost (empty grid or overflowed economics).
    #[must_use]
    pub fn min_cost_cell(&self, factors: &ScenarioFactors) -> Option<(usize, u32, f64, f64)> {
        let mut best: Option<(usize, u32)> = None;
        let mut incumbent = f64::INFINITY;
        let n_max = self.n_max as usize;
        for (j, &r) in self.r_values.iter().enumerate() {
            let r_plus_c = r + factors.probe_cost;
            let r_plus_c_q = r_plus_c * factors.q;
            for n in 1..=n_max {
                // The free-probing term is a float lower bound on the
                // numerator (the other addends are non-negative) and is
                // weakly increasing in `n`, so once it reaches the
                // incumbent no later `n` in this column can win either.
                let free_probing = r_plus_c * n as f64 * factors.one_minus_q;
                if free_probing >= incumbent {
                    break;
                }
                let at = j * n_max + (n - 1);
                let pi_n = self.pi_n[at];
                let numerator =
                    free_probing + r_plus_c_q * self.pi_prefix[at] + factors.q_error_cost * pi_n;
                // `q·(1 − π_n)` is a product of non-negatives, so the
                // denominator is at most 1 and `cost ≥ numerator` holds in
                // floats (round-to-nearest of a real ≥ the representable
                // numerator). A numerator at or above the incumbent can
                // therefore never win strictly, and the division — the
                // dominant cost of this scan — is skipped for most cells
                // without changing a single selection. NaN and +∞
                // numerators fail the `<` too, matching the finite-cost
                // filter of a plain scan.
                if numerator < incumbent {
                    let denominator = 1.0 - factors.q * (1.0 - pi_n);
                    let cost = numerator / denominator;
                    if cost.is_finite() && cost < incumbent {
                        incumbent = cost;
                        best = Some((j, n as u32));
                    }
                }
            }
        }
        best.map(|(j, n)| {
            let at = j * n_max + (n as usize - 1);
            let pi_n = self.pi_n[at];
            let denominator = 1.0 - factors.q * (1.0 - pi_n);
            let error = factors.q * pi_n / denominator;
            (j, n, incumbent, error)
        })
    }

    /// [`ParamLandscape::min_cost_cell`] with an explicit SIMD backend:
    /// each column scan dispatches through `zeroconf_simd::min_cost_scan`,
    /// whose vector pass only *filters* chunks against the incumbent and
    /// replays candidates with the scalar program — so the selected cell,
    /// cost, and error are identical to [`ParamLandscape::min_cost_cell`]
    /// on every backend (there is no `fast` variant of selection).
    #[must_use]
    pub fn min_cost_cell_with(
        &self,
        factors: &ScenarioFactors,
        backend: Backend,
    ) -> Option<(usize, u32, f64, f64)> {
        let mut best: Option<(usize, u32)> = None;
        let mut incumbent = f64::INFINITY;
        let n_max = self.n_max as usize;
        for (j, &r) in self.r_values.iter().enumerate() {
            let r_plus_c = r + factors.probe_cost;
            let r_plus_c_q = r_plus_c * factors.q;
            let terms = ColumnTerms {
                q: factors.q,
                one_minus_q: factors.one_minus_q,
                q_error_cost: factors.q_error_cost,
                r_plus_c,
                r_plus_c_q,
            };
            let span = j * n_max..(j + 1) * n_max;
            let (won, next_incumbent) = zeroconf_simd::min_cost_scan(
                backend,
                terms,
                &self.pi_prefix[span.clone()],
                &self.pi_n[span],
                incumbent,
            );
            incumbent = next_incumbent;
            if let Some(k) = won {
                best = Some((j, (k + 1) as u32));
            }
        }
        best.map(|(j, n)| {
            let at = j * n_max + (n as usize - 1);
            let pi_n = self.pi_n[at];
            let denominator = 1.0 - factors.q * (1.0 - pi_n);
            let error = factors.q * pi_n / denominator;
            (j, n, incumbent, error)
        })
    }

    /// Convenience: builds the statistic landscape for `scenario`'s
    /// reply-time distribution over an `(n, r)` grid by delegating to the
    /// blocked kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`ColumnBlockKernel::pi_tables`](crate::kernel::ColumnBlockKernel::pi_tables).
    pub fn build(scenario: &Scenario, n_max: u32, rs: &[f64]) -> Result<ParamLandscape, CostError> {
        crate::kernel::ColumnBlockKernel::new(scenario).param_landscape(n_max, rs)
    }
}

/// One-cell cost reconstruction: the exact Eq. (3) float sequence of
/// [`ColumnKernel::evaluate`](crate::kernel::ColumnKernel::evaluate),
/// replayed from the sufficient statistic.
#[must_use]
pub fn reconstruct_cost(
    factors: &ScenarioFactors,
    r: f64,
    n: u32,
    pi_prefix: f64,
    pi_n: f64,
) -> f64 {
    let r_plus_c = r + factors.probe_cost;
    let r_plus_c_q = r_plus_c * factors.q;
    let denominator = 1.0 - factors.q * (1.0 - pi_n);
    let free_address_probing = r_plus_c * n as f64 * factors.one_minus_q;
    let occupied_address_probing = r_plus_c_q * pi_prefix;
    let collision_penalty = factors.q_error_cost * pi_n;
    (free_address_probing + occupied_address_probing + collision_penalty) / denominator
}

/// One-cell error reconstruction: the exact Eq. (4) float sequence.
#[must_use]
pub fn reconstruct_error(factors: &ScenarioFactors, pi_n: f64) -> f64 {
    factors.q * pi_n / (1.0 - factors.q * (1.0 - pi_n))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::kernel::evaluate_column;
    use crate::{cost, Scenario};

    use super::*;

    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn reconstruction_is_bit_identical_to_the_kernel() {
        let s = figure2();
        let n_max = 24u32;
        let rs: Vec<f64> = (0..12).map(|k| 0.1 + k as f64 * 1.7).collect();
        let landscape = ParamLandscape::build(&s, n_max, &rs).unwrap();
        let factors = ScenarioFactors::new(&s);
        for (j, &r) in rs.iter().enumerate() {
            let (costs, errors) = evaluate_column(&s, n_max, r).unwrap();
            for n in 1..=n_max {
                assert_eq!(
                    landscape.cost_at(&factors, j, n).to_bits(),
                    costs[n as usize - 1].to_bits(),
                    "C(n = {n}, r = {r})"
                );
                assert_eq!(
                    landscape.error_at(&factors, j, n).to_bits(),
                    errors[n as usize - 1].to_bits(),
                    "Err(n = {n}, r = {r})"
                );
            }
        }
    }

    #[test]
    fn reconstruction_under_changed_economics_matches_direct_evaluation() {
        // The whole point: one landscape serves every (q, E, c) without
        // touching the distribution again.
        let s = figure2();
        let n_max = 16u32;
        let rs = [0.0, 0.5, 2.0, 9.0];
        let landscape = ParamLandscape::build(&s, n_max, &rs).unwrap();
        let varied = s
            .with_occupancy(0.25)
            .unwrap()
            .with_probe_cost(0.7)
            .unwrap()
            .with_error_cost(1e9)
            .unwrap();
        let factors = ScenarioFactors::new(&varied);
        for (j, &r) in rs.iter().enumerate() {
            for n in 1..=n_max {
                let direct = cost::mean_cost(&varied, n, r).unwrap();
                assert_eq!(
                    landscape.cost_at(&factors, j, n).to_bits(),
                    direct.to_bits(),
                    "C(n = {n}, r = {r})"
                );
                let direct_e = cost::error_probability(&varied, n, r).unwrap();
                assert_eq!(
                    landscape.error_at(&factors, j, n).to_bits(),
                    direct_e.to_bits(),
                    "Err(n = {n}, r = {r})"
                );
            }
        }
    }

    #[test]
    fn slab_reconstruction_matches_per_cell_reconstruction() {
        let s = figure2();
        let n_max = 12u32;
        let rs = [0.2, 1.0, 4.0];
        let landscape = ParamLandscape::build(&s, n_max, &rs).unwrap();
        let factors = ScenarioFactors::new(&s);
        let mut costs = vec![0.0; landscape.len()];
        let mut errors = vec![0.0; landscape.len()];
        landscape.reconstruct(&factors, Some(&mut costs), Some(&mut errors));
        for (j, _) in rs.iter().enumerate() {
            for n in 1..=n_max {
                let at = landscape.flat_index(j, n);
                assert_eq!(
                    costs[at].to_bits(),
                    landscape.cost_at(&factors, j, n).to_bits()
                );
                assert_eq!(
                    errors[at].to_bits(),
                    landscape.error_at(&factors, j, n).to_bits()
                );
            }
        }
    }

    #[test]
    fn min_cost_cell_agrees_with_a_full_scan() {
        let s = figure2();
        let rs: Vec<f64> = (1..40).map(|k| k as f64 * 0.5).collect();
        let landscape = ParamLandscape::build(&s, 8, &rs).unwrap();
        let factors = ScenarioFactors::new(&s);
        let (j, n, cost, error) = landscape.min_cost_cell(&factors).unwrap();
        let mut best = f64::INFINITY;
        for jj in 0..rs.len() {
            for nn in 1..=8 {
                best = best.min(landscape.cost_at(&factors, jj, nn));
            }
        }
        assert_eq!(cost.to_bits(), best.to_bits());
        assert_eq!(cost.to_bits(), landscape.cost_at(&factors, j, n).to_bits());
        assert_eq!(
            error.to_bits(),
            landscape.error_at(&factors, j, n).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "π-prefix slab must hold every cell")]
    fn mismatched_slabs_panic() {
        let _ = ParamLandscape::from_parts(4, vec![1.0], vec![0.0; 3], vec![0.0; 4]);
    }
}
