//! Optimization of the designer-controlled parameters `n` and `r`
//! (Sections 4.2 – 4.4 of the paper).

use zeroconf_numopt::{grid_refine_min, Tolerance};

use crate::cost::{check_n, check_r};
use crate::{cost, CostError, Scenario};

/// Search configuration for the optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeConfig {
    /// Upper end of the listening-period search interval (seconds). The
    /// optimum is interior for sensible scenarios; the default of 120 s
    /// comfortably covers every parameter set in the paper.
    pub r_max: f64,
    /// Grid density of the initial coarse scan.
    pub grid_points: usize,
    /// Largest probe count considered by the `n`-searches.
    pub n_max: u32,
    /// Refinement tolerance.
    pub tolerance: Tolerance,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            r_max: 120.0,
            grid_points: 600,
            n_max: 64,
            tolerance: Tolerance::default(),
        }
    }
}

/// The cost-optimal listening period for a fixed probe count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalListening {
    /// The probe count the optimization was run for.
    pub n: u32,
    /// `r_opt^{(n)}`.
    pub r: f64,
    /// `C_n(r_opt)`.
    pub cost: f64,
}

/// The joint optimum over `(n, r)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JointOptimum {
    /// Optimal probe count `n*`.
    pub n: u32,
    /// Optimal listening period `r*`.
    pub r: f64,
    /// The minimal mean cost `C(n*, r*)`.
    pub cost: f64,
    /// Collision probability at the optimum.
    pub error_probability: f64,
    /// Per-`n` minima explored on the way (the minima of the Figure 2
    /// curves), in increasing `n`.
    pub per_probe_count: Vec<OptimalListening>,
}

/// `r_opt^{(n)}`: the listening period minimizing `C_n(r)` (Section 4.2).
///
/// Uses a coarse grid scan plus golden-section refinement —
/// `C_n` is a descending polynomial tail glued to a rising line, so a
/// bracketing scan is cheap insurance against the flat regions at tiny
/// `r`.
///
/// # Errors
///
/// - [`CostError::InvalidProbeCount`] when `n == 0`.
/// - [`CostError::InvalidSearchRange`] when the configuration is unusable.
/// - Any evaluation failure of the cost function.
pub fn optimal_listening(
    scenario: &Scenario,
    n: u32,
    config: &OptimizeConfig,
) -> Result<OptimalListening, CostError> {
    check_n(n)?;
    check_config(config)?;
    // The closure must be infallible for the solver; validated arguments
    // make cost evaluation total, so any residual failure becomes NaN and
    // is caught by the solver's NaN check.
    let objective = |r: f64| cost::mean_cost(scenario, n, r).unwrap_or(f64::NAN);
    let min = grid_refine_min(
        objective,
        0.0,
        config.r_max,
        config.grid_points,
        config.tolerance,
    )?;
    Ok(OptimalListening {
        n,
        r: min.argument,
        cost: min.value,
    })
}

/// `N(r)`: the probe count minimizing `C(n, r)` for a fixed listening
/// period (Section 4.4). Ties resolve to the smallest `n`, matching the
/// paper's `min{n | C_n(r) = inf_k C_k(r)}`.
///
/// # Errors
///
/// - [`CostError::InvalidListeningPeriod`] for bad `r`.
/// - [`CostError::InvalidSearchRange`] when `config.n_max == 0`.
pub fn optimal_probe_count(
    scenario: &Scenario,
    r: f64,
    config: &OptimizeConfig,
) -> Result<OptimalListening, CostError> {
    check_r(r)?;
    if config.n_max == 0 {
        return Err(CostError::InvalidSearchRange {
            what: "n_max must be at least 1",
        });
    }
    let mut best = OptimalListening {
        n: 1,
        r,
        cost: cost::mean_cost(scenario, 1, r)?,
    };
    for n in 2..=config.n_max {
        let c = cost::mean_cost(scenario, n, r)?;
        if c < best.cost {
            best = OptimalListening { n, r, cost: c };
        }
    }
    Ok(best)
}

/// `C_min(r) = C(N(r), r)`: the lower envelope of all cost curves
/// (Figure 4).
///
/// # Errors
///
/// Same conditions as [`optimal_probe_count`].
pub fn minimal_cost_envelope(
    scenario: &Scenario,
    r: f64,
    config: &OptimizeConfig,
) -> Result<f64, CostError> {
    Ok(optimal_probe_count(scenario, r, config)?.cost)
}

/// The joint optimum `(n*, r*) = argmin C(n, r)` (the question Section 6
/// answers for the realistic scenario).
///
/// Scans `n` upward, optimizing `r` for each; stops once the per-`n`
/// minimum has worsened for several consecutive probe counts beyond the
/// incumbent (the postage `c` makes large `n` strictly worse, Section 4.3),
/// or at `config.n_max`.
///
/// # Errors
///
/// Same conditions as [`optimal_listening`].
pub fn joint_optimum(
    scenario: &Scenario,
    config: &OptimizeConfig,
) -> Result<JointOptimum, CostError> {
    check_config(config)?;
    let mut best = optimal_listening(scenario, 1, config)?;
    let mut per_probe_count = vec![best];
    let mut worsening_streak = 0;
    for n in 2..=config.n_max {
        let candidate = optimal_listening(scenario, n, config)?;
        per_probe_count.push(candidate);
        if candidate.cost >= best.cost {
            worsening_streak += 1;
            if worsening_streak >= 4 {
                break;
            }
        } else {
            worsening_streak = 0;
            best = candidate;
        }
    }
    Ok(JointOptimum {
        n: best.n,
        r: best.r,
        cost: best.cost,
        error_probability: cost::error_probability(scenario, best.n, best.r)?,
        per_probe_count,
    })
}

fn check_config(config: &OptimizeConfig) -> Result<(), CostError> {
    if !config.r_max.is_finite() || config.r_max <= 0.0 {
        return Err(CostError::InvalidSearchRange {
            what: "r_max must be positive and finite",
        });
    }
    if config.grid_points < 3 {
        return Err(CostError::InvalidSearchRange {
            what: "grid_points must be at least 3",
        });
    }
    if config.n_max == 0 {
        return Err(CostError::InvalidSearchRange {
            what: "n_max must be at least 1",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::Scenario;

    use super::*;

    fn figure2() -> Scenario {
        Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    fn config() -> OptimizeConfig {
        OptimizeConfig {
            r_max: 60.0,
            grid_points: 400,
            n_max: 16,
            ..OptimizeConfig::default()
        }
    }

    #[test]
    fn optimal_r_is_interior_and_stationary() {
        let s = figure2();
        let opt = optimal_listening(&s, 4, &config()).unwrap();
        assert!(opt.r > 0.0 && opt.r < 60.0);
        // Perturbations in either direction must not improve.
        let eps = 1e-3;
        assert!(s.mean_cost(4, opt.r - eps).unwrap() >= opt.cost - 1e-9);
        assert!(s.mean_cost(4, opt.r + eps).unwrap() >= opt.cost - 1e-9);
    }

    #[test]
    fn higher_n_means_smaller_optimal_r() {
        // Figure 2: "The higher n is chosen, the smaller r_opt".
        let s = figure2();
        let mut prev_r = f64::INFINITY;
        for n in 3..=8 {
            let opt = optimal_listening(&s, n, &config()).unwrap();
            assert!(
                opt.r < prev_r,
                "n = {n}: r_opt {} should shrink (prev {prev_r})",
                opt.r
            );
            prev_r = opt.r;
        }
    }

    #[test]
    fn minimal_costs_increase_beyond_n_three() {
        // Figure 2: C_3(r_opt) < C_4(r_opt) < ... — postage makes extra
        // probes a net loss once reliability is saturated.
        let s = figure2();
        let costs: Vec<f64> = (3..=8)
            .map(|n| optimal_listening(&s, n, &config()).unwrap().cost)
            .collect();
        for w in costs.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }

    #[test]
    fn joint_optimum_for_figure2_is_n_three() {
        // ν = 3 and the minima increase beyond 3, so the joint optimum has
        // n* = 3.
        let s = figure2();
        let opt = joint_optimum(&s, &config()).unwrap();
        assert_eq!(opt.n, 3);
        assert!(opt.cost > 0.0);
        assert!(opt.error_probability < 1e-30);
        assert!(opt.per_probe_count.len() >= 4);
    }

    #[test]
    fn optimal_probe_count_steps_down_in_r() {
        // Figure 3: N(r) is a decreasing step function.
        let s = figure2();
        let cfg = config();
        let mut prev_n = u32::MAX;
        for r in [1.5, 2.0, 3.0, 5.0, 8.0, 15.0, 30.0] {
            let n = optimal_probe_count(&s, r, &cfg).unwrap().n;
            assert!(n <= prev_n, "N({r}) = {n} should not exceed {prev_n}");
            prev_n = n;
        }
        // And it is never below ν = 3 while the collision term matters.
        assert!(prev_n >= 3);
    }

    #[test]
    fn envelope_is_pointwise_minimum() {
        let s = figure2();
        let cfg = config();
        for r in [2.0, 4.0, 10.0] {
            let envelope = minimal_cost_envelope(&s, r, &cfg).unwrap();
            for n in 1..=10 {
                assert!(envelope <= s.mean_cost(n, r).unwrap() + 1e-9);
            }
        }
    }

    #[test]
    fn ties_resolve_to_smallest_n() {
        // With a free postage and no losses, more probes only waste time;
        // several n may tie at r = 0 — N must pick the smallest.
        let s = Scenario::builder()
            .occupancy(0.1)
            .probe_cost(0.0)
            .error_cost(0.0)
            .reply_time(Arc::new(DefectiveExponential::new(1.0, 5.0, 0.1).unwrap()))
            .build()
            .unwrap();
        let pick = optimal_probe_count(&s, 0.0, &config()).unwrap();
        assert_eq!(pick.n, 1);
    }

    #[test]
    fn config_validation() {
        let s = figure2();
        let bad_r = OptimizeConfig {
            r_max: 0.0,
            ..OptimizeConfig::default()
        };
        assert!(optimal_listening(&s, 4, &bad_r).is_err());
        let bad_grid = OptimizeConfig {
            grid_points: 2,
            ..OptimizeConfig::default()
        };
        assert!(joint_optimum(&s, &bad_grid).is_err());
        let bad_n = OptimizeConfig {
            n_max: 0,
            ..OptimizeConfig::default()
        };
        assert!(optimal_probe_count(&s, 1.0, &bad_n).is_err());
        assert!(optimal_listening(&s, 0, &config()).is_err());
        assert!(optimal_probe_count(&s, -1.0, &config()).is_err());
    }

    #[test]
    fn default_config_is_usable() {
        let cfg = OptimizeConfig::default();
        assert!(cfg.r_max > 0.0);
        assert!(cfg.grid_points >= 3);
        assert!(cfg.n_max >= 1);
    }
}
