//! Protocol-level metrics derived from the fundamental matrix.
//!
//! The paper reports only cost and reliability; a protocol engineer also
//! wants to know *how the run feels*: how many candidate addresses a host
//! burns through, how many probes hit the wire, how long the radio stays
//! in its listen state. All of these are expected visit counts in the DRM
//! (fundamental-matrix entries), so they come out of one transposed linear
//! solve — and the discrete-event simulator verifies them empirically.

use zeroconf_dtmc::AbsorbingAnalysis;

use crate::{drm, CostError, Scenario};

/// Expected per-run protocol quantities at a configuration `(n, r)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolMetrics {
    /// Expected number of candidate addresses drawn (visits to `start`).
    pub expected_attempts: f64,
    /// Expected number of ARP probes transmitted.
    pub expected_probes: f64,
    /// Expected total listening time in seconds, in the model's
    /// cost-accounting convention (a full `r` is charged for every round
    /// entered, as in the DRM rewards).
    pub expected_listening_seconds: f64,
    /// Probability that the run ends in an address collision (Eq. 4).
    pub collision_probability: f64,
}

/// Computes the expected attempts/probes/listening time for `(n, r)`.
///
/// Derivation: let `N` be the fundamental matrix of the DRM. Visits to
/// `start` count address draws. Each visit to probe state `i` transmits
/// one probe; additionally the final `start → ok` transition (taken with
/// the absorption probability into `ok`) transmits `n` probes at once.
///
/// # Errors
///
/// Same conditions as [`Scenario::mean_cost`], plus chain-analysis
/// failures.
pub fn protocol_metrics(scenario: &Scenario, n: u32, r: f64) -> Result<ProtocolMetrics, CostError> {
    let model = drm::build(scenario, n, r)?;
    let analysis = AbsorbingAnalysis::new(&model.chain)?;
    let visits = analysis.expected_visits(model.start)?;
    let transient = analysis.transient_states();
    let visit_of = |state: zeroconf_dtmc::StateId| -> f64 {
        transient
            .iter()
            .position(|&s| s == state)
            .map_or(0.0, |pos| visits[pos])
    };
    let attempts = visit_of(model.start);
    let probe_visits: f64 = model.probes.iter().map(|&p| visit_of(p)).sum();
    let ok_probability = analysis.absorption_probability(model.start, model.ok)?;
    let probes = probe_visits + n as f64 * ok_probability;
    Ok(ProtocolMetrics {
        expected_attempts: attempts,
        expected_probes: probes,
        expected_listening_seconds: probes * r,
        collision_probability: analysis.absorption_probability(model.start, model.error)?,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::{cost, paper};

    use super::*;

    fn moderate() -> Scenario {
        Scenario::builder()
            .occupancy(0.4)
            .probe_cost(1.0)
            .error_cost(0.0)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.3, 4.0, 0.05).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn probes_match_the_cost_trick() {
        // With E = 0, mean cost / (r + c) is exactly the expected probe
        // count (every unit of cost is one probe round).
        let scenario = moderate();
        for (n, r) in [(1u32, 0.5), (3, 0.4), (5, 1.0)] {
            let metrics = protocol_metrics(&scenario, n, r).unwrap();
            let via_cost = cost::mean_cost(&scenario, n, r).unwrap() / (r + 1.0);
            assert!(
                (metrics.expected_probes - via_cost).abs() < 1e-10,
                "n = {n}, r = {r}: {} vs {via_cost}",
                metrics.expected_probes
            );
            assert!(
                (metrics.expected_listening_seconds - metrics.expected_probes * r).abs() < 1e-12
            );
        }
    }

    #[test]
    fn attempts_follow_the_restart_probability() {
        // Expected attempts satisfy a = 1 + q(1 − π_n)·a: each attempt
        // restarts iff the address was occupied and some reply arrived.
        let scenario = moderate();
        let (n, r) = (3u32, 0.6);
        let metrics = protocol_metrics(&scenario, n, r).unwrap();
        let pis =
            zeroconf_dist::noanswer::pi_sequence(scenario.reply_time(), n as usize, r).unwrap();
        let restart = scenario.occupancy() * (1.0 - pis[n as usize]);
        let expected = 1.0 / (1.0 - restart);
        assert!(
            (metrics.expected_attempts - expected).abs() < 1e-10,
            "{} vs {expected}",
            metrics.expected_attempts
        );
    }

    #[test]
    fn near_empty_network_needs_one_attempt_and_n_probes() {
        let scenario = moderate().with_occupancy(1e-9).unwrap();
        let metrics = protocol_metrics(&scenario, 4, 1.0).unwrap();
        assert!((metrics.expected_attempts - 1.0).abs() < 1e-6);
        assert!((metrics.expected_probes - 4.0).abs() < 1e-6);
        assert!(metrics.collision_probability < 1e-6);
    }

    #[test]
    fn figure2_draft_configuration_metrics() {
        // At (n = 4, r = 2) on the Figure-2 scenario nearly every reply
        // arrives in round one, so a run costs about one extra attempt per
        // occupied draw and roughly n + q probes.
        let scenario = paper::figure2_scenario().unwrap();
        let metrics = protocol_metrics(&scenario, 4, 2.0).unwrap();
        let q = scenario.occupancy();
        assert!((metrics.expected_attempts - 1.0 / (1.0 - q)).abs() < 1e-6);
        assert!(metrics.expected_probes > 4.0);
        assert!(metrics.expected_probes < 4.0 + 2.0 * q / (1.0 - q) + 1e-6);
        assert!(
            (metrics.collision_probability - cost::error_probability(&scenario, 4, 2.0).unwrap())
                .abs()
                < 1e-15
        );
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let scenario = moderate();
        assert!(protocol_metrics(&scenario, 0, 1.0).is_err());
        assert!(protocol_metrics(&scenario, 4, -1.0).is_err());
    }
}
