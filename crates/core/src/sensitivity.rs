//! Sensitivity analysis: how strongly the model's outputs react to the
//! application-specific parameters (the "standard exercise" of
//! Section 4.2, which the paper defers and this reproduction carries out).

use crate::kernel::ScenarioFactors;
use crate::param::ParamLandscape;
use crate::{CostError, Scenario};

/// One sweep sample: a parameter value with the model outputs at that
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// Mean total cost `C(n, r)` at this value.
    pub cost: f64,
    /// Collision probability `E(n, r)` at this value.
    pub error_probability: f64,
}

/// Which scenario parameter a sweep or elasticity varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parameter {
    /// The occupancy probability `q`.
    Occupancy,
    /// The per-probe postage `c`.
    ProbeCost,
    /// The collision cost `E`.
    ErrorCost,
}

/// Sweeps one parameter over the given values at fixed `(n, r)`.
///
/// # Errors
///
/// Propagates validation failures for any individual value (e.g. `q ≥ 1`).
pub fn sweep(
    scenario: &Scenario,
    parameter: Parameter,
    values: &[f64],
    n: u32,
    r: f64,
) -> Result<Vec<SweepPoint>, CostError> {
    // The swept parameters (q, c, E) never touch the reply-time
    // distribution, so the sufficient statistic is computed once and
    // every sample is a pure-arithmetic reconstruction — bit-identical
    // to evaluating `cost::mean_cost` per varied scenario.
    let landscape = ParamLandscape::build(scenario, n, &[r])?;
    values
        .iter()
        .map(|&v| {
            let varied = apply(scenario, parameter, v)?;
            let factors = ScenarioFactors::new(&varied);
            Ok(SweepPoint {
                parameter: v,
                cost: landscape.cost_at(&factors, 0, n),
                error_probability: landscape.error_at(&factors, 0, n),
            })
        })
        .collect()
}

/// Elasticity `(∂C/∂p) · (p/C)` of the mean cost with respect to a
/// parameter, estimated by a central finite difference with relative step
/// `h` (e.g. `1e-4`). An elasticity of 1 means "1 % more parameter, 1 %
/// more cost".
///
/// # Errors
///
/// - [`CostError::InvalidParameter`] when the perturbed parameter leaves
///   its domain or `h` is not in `(0, 0.5)`.
/// - Propagated evaluation failures.
pub fn cost_elasticity(
    scenario: &Scenario,
    parameter: Parameter,
    n: u32,
    r: f64,
    h: f64,
) -> Result<f64, CostError> {
    if !h.is_finite() || h <= 0.0 || h >= 0.5 {
        return Err(CostError::InvalidParameter {
            parameter: "relative step h",
            value: h,
        });
    }
    let p0 = current(scenario, parameter);
    let up = apply(scenario, parameter, p0 * (1.0 + h))?;
    let down = apply(scenario, parameter, p0 * (1.0 - h))?;
    // One statistic serves the center and both perturbed economies.
    let landscape = ParamLandscape::build(scenario, n, &[r])?;
    let c0 = landscape.cost_at(&ScenarioFactors::new(scenario), 0, n);
    let c_up = landscape.cost_at(&ScenarioFactors::new(&up), 0, n);
    let c_down = landscape.cost_at(&ScenarioFactors::new(&down), 0, n);
    Ok((c_up - c_down) / (2.0 * h * p0) * (p0 / c0))
}

fn current(scenario: &Scenario, parameter: Parameter) -> f64 {
    match parameter {
        Parameter::Occupancy => scenario.occupancy(),
        Parameter::ProbeCost => scenario.probe_cost(),
        Parameter::ErrorCost => scenario.error_cost(),
    }
}

fn apply(scenario: &Scenario, parameter: Parameter, value: f64) -> Result<Scenario, CostError> {
    match parameter {
        Parameter::Occupancy => scenario.with_occupancy(value),
        Parameter::ProbeCost => scenario.with_probe_cost(value),
        Parameter::ErrorCost => scenario.with_error_cost(value),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::Scenario;

    use super::*;

    fn base() -> Scenario {
        Scenario::builder()
            .occupancy(0.05)
            .probe_cost(2.0)
            .error_cost(1e10)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(1e-4, 10.0, 1.0).unwrap(),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_returns_one_point_per_value() {
        let points = sweep(&base(), Parameter::Occupancy, &[0.01, 0.1, 0.3], 4, 2.0).unwrap();
        assert_eq!(points.len(), 3);
        // Cost and risk both grow with occupancy.
        assert!(points[0].cost < points[2].cost);
        assert!(points[0].error_probability < points[2].error_probability);
    }

    #[test]
    fn sweep_propagates_domain_errors() {
        assert!(sweep(&base(), Parameter::Occupancy, &[1.5], 4, 2.0).is_err());
    }

    #[test]
    fn probe_cost_elasticity_is_positive_and_below_one() {
        // c enters (r + c) additively, so doubling c less than doubles the
        // cost at r = 2.
        let e = cost_elasticity(&base(), Parameter::ProbeCost, 4, 2.0, 1e-4).unwrap();
        assert!(e > 0.0 && e < 1.0, "elasticity {e}");
    }

    #[test]
    fn error_cost_elasticity_vanishes_when_collisions_are_impossible() {
        // At generous r with a nearly lossless link the collision term is
        // astronomically small: E has no influence.
        let e = cost_elasticity(&base(), Parameter::ErrorCost, 4, 4.0, 1e-4).unwrap();
        assert!(e.abs() < 1e-6, "elasticity {e}");
    }

    #[test]
    fn error_cost_elasticity_saturates_at_one_when_collisions_dominate() {
        // At r = 0 the cost is c·n + qE ≈ qE: elasticity ≈ 1.
        let e = cost_elasticity(&base(), Parameter::ErrorCost, 4, 0.0, 1e-4).unwrap();
        assert!((e - 1.0).abs() < 1e-3, "elasticity {e}");
    }

    #[test]
    fn step_size_is_validated() {
        assert!(cost_elasticity(&base(), Parameter::Occupancy, 4, 2.0, 0.0).is_err());
        assert!(cost_elasticity(&base(), Parameter::Occupancy, 4, 2.0, 0.9).is_err());
        assert!(cost_elasticity(&base(), Parameter::Occupancy, 4, 2.0, f64::NAN).is_err());
    }

    #[test]
    fn occupancy_elasticity_is_positive() {
        let e = cost_elasticity(&base(), Parameter::Occupancy, 4, 2.0, 1e-4).unwrap();
        assert!(e > 0.0);
    }
}
