//! The cost/reliability trade-off, made explicit.
//!
//! The paper's headline conclusion is that "minimal cost and maximal
//! reliability are qualities that cannot be achieved at the same time"
//! (compare its Figures 4 and 6). This module turns that observation into
//! an artifact: the *Pareto frontier* of configurations `(n, r)` under the
//! two objectives (mean cost, collision probability). A configuration is
//! Pareto-optimal when no other configuration is at least as good in both
//! objectives and strictly better in one; the frontier is exactly the menu
//! of rational designs a manufacturer can pick from.

use crate::kernel::ScenarioFactors;
use crate::param::ParamLandscape;
use crate::{CostError, Scenario};

/// One Pareto-optimal configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Probe count.
    pub n: u32,
    /// Listening period.
    pub r: f64,
    /// Mean total cost at `(n, r)`.
    pub cost: f64,
    /// Collision probability at `(n, r)`.
    pub error_probability: f64,
}

/// Search grid for the frontier computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffConfig {
    /// Largest probe count considered.
    pub n_max: u32,
    /// Listening-period range `[r_min, r_max]`.
    pub r_range: (f64, f64),
    /// Number of grid points across the range.
    pub r_points: usize,
}

impl Default for TradeoffConfig {
    fn default() -> Self {
        TradeoffConfig {
            n_max: 10,
            r_range: (0.1, 30.0),
            r_points: 300,
        }
    }
}

/// Computes the Pareto frontier of `(cost, collision probability)` over
/// the configuration grid, sorted by increasing cost (and therefore
/// decreasing collision probability).
///
/// # Errors
///
/// - [`CostError::InvalidSearchRange`] for a degenerate grid.
/// - Propagated evaluation failures.
pub fn pareto_frontier(
    scenario: &Scenario,
    config: &TradeoffConfig,
) -> Result<Vec<ParetoPoint>, CostError> {
    let (r_lo, r_hi) = config.r_range;
    if config.n_max == 0
        || config.r_points < 2
        || r_lo.partial_cmp(&r_hi) != Some(std::cmp::Ordering::Less)
        || !r_lo.is_finite()
    {
        return Err(CostError::InvalidSearchRange {
            what: "tradeoff grid needs n_max >= 1, r_points >= 2 and an ordered finite r range",
        });
    }
    // One sufficient-statistic landscape for the whole grid: the
    // reply-time distribution is consulted once per (n, r) column, and
    // every candidate below is reconstructed by pure arithmetic —
    // bit-identical to per-cell `cost::mean_cost`/`error_probability`
    // (the reconstruction replays the exact Eq. (3)/(4) float sequence).
    let rs: Vec<f64> = (0..config.r_points)
        .map(|k| r_lo + (r_hi - r_lo) * k as f64 / (config.r_points - 1) as f64)
        .collect();
    let landscape = ParamLandscape::build(scenario, config.n_max, &rs)?;
    let factors = ScenarioFactors::new(scenario);
    let mut candidates = Vec::with_capacity(config.n_max as usize * config.r_points);
    for n in 1..=config.n_max {
        for (j, &r) in rs.iter().enumerate() {
            candidates.push(ParetoPoint {
                n,
                r,
                cost: landscape.cost_at(&factors, j, n),
                error_probability: landscape.error_at(&factors, j, n),
            });
        }
    }
    Ok(frontier_from_candidates(candidates))
}

/// Reduces an arbitrary set of evaluated configurations to its Pareto
/// frontier, sorted by increasing cost (ties broken by reliability) and
/// swept keeping strictly improving collision probability.
///
/// This is the reduction step behind [`pareto_frontier`], exposed so
/// callers that evaluate the grid elsewhere — the batched evaluation
/// engine in particular — can reuse the exact same dominance logic.
#[must_use]
pub fn frontier_from_candidates(candidates: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    frontier_indices(&candidates, |p| p.cost, |p| p.error_probability)
        .into_iter()
        .map(|i| candidates[i])
        .collect()
}

/// Generic two-objective Pareto reduction: indices of the items on the
/// `(cost, error)` frontier, in increasing-cost order. Items are sorted
/// by cost (`total_cmp`, ties broken by error) and swept keeping strictly
/// improving error — the exact dominance logic of
/// [`frontier_from_candidates`], exposed generically so the engine's
/// parameter-grid frontier verb shares it rather than re-deriving it.
#[must_use]
pub fn frontier_indices<T>(
    items: &[T],
    cost_of: impl Fn(&T) -> f64,
    error_of: impl Fn(&T) -> f64,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        cost_of(&items[a])
            .total_cmp(&cost_of(&items[b]))
            .then(error_of(&items[a]).total_cmp(&error_of(&items[b])))
    });
    let mut frontier = Vec::new();
    let mut best_error = f64::INFINITY;
    for i in order {
        if error_of(&items[i]) < best_error {
            best_error = error_of(&items[i]);
            frontier.push(i);
        }
    }
    frontier
}

/// The cheapest configuration on the frontier whose collision probability
/// is at most `max_error` — the "reliability budget" query a manufacturer
/// actually asks.
///
/// # Errors
///
/// Same conditions as [`pareto_frontier`]; returns
/// [`CostError::InvalidSearchRange`] when no grid point meets the budget.
pub fn cheapest_within_error_budget(
    scenario: &Scenario,
    config: &TradeoffConfig,
    max_error: f64,
) -> Result<ParetoPoint, CostError> {
    let frontier = pareto_frontier(scenario, config)?;
    frontier
        .into_iter()
        .find(|p| p.error_probability <= max_error)
        .ok_or(CostError::InvalidSearchRange {
            what: "no configuration on the grid meets the error budget",
        })
}

#[cfg(test)]
mod tests {
    use crate::paper;

    use super::*;

    fn config() -> TradeoffConfig {
        TradeoffConfig {
            n_max: 8,
            r_range: (0.2, 20.0),
            r_points: 120,
        }
    }

    #[test]
    fn frontier_is_monotone_in_both_objectives() {
        let scenario = paper::figure2_scenario().unwrap();
        let frontier = pareto_frontier(&scenario, &config()).unwrap();
        assert!(frontier.len() > 5, "frontier has {} points", frontier.len());
        for pair in frontier.windows(2) {
            assert!(pair[0].cost <= pair[1].cost);
            assert!(pair[0].error_probability > pair[1].error_probability);
        }
    }

    #[test]
    fn frontier_contains_no_dominated_point() {
        let scenario = paper::figure2_scenario().unwrap();
        let frontier = pareto_frontier(&scenario, &config()).unwrap();
        for (i, a) in frontier.iter().enumerate() {
            for (j, b) in frontier.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominates = b.cost <= a.cost
                    && b.error_probability <= a.error_probability
                    && (b.cost < a.cost || b.error_probability < a.error_probability);
                assert!(!dominates, "{b:?} dominates {a:?}");
            }
        }
    }

    #[test]
    fn cheapest_point_approximates_the_joint_optimum() {
        let scenario = paper::figure2_scenario().unwrap();
        let frontier = pareto_frontier(&scenario, &config()).unwrap();
        let cheapest = frontier.first().unwrap();
        // The grid's cheapest point must be near the refined joint optimum
        // (n = 3, cost ≈ 12.6).
        assert_eq!(cheapest.n, 3);
        assert!((cheapest.cost - 12.6).abs() < 0.5, "{cheapest:?}");
    }

    #[test]
    fn headline_tradeoff_more_reliability_costs_more() {
        // Crossing from 1e−40 to 1e−60 collision probability must cost
        // strictly more.
        let scenario = paper::figure2_scenario().unwrap();
        let cfg = config();
        let loose = cheapest_within_error_budget(&scenario, &cfg, 1e-40).unwrap();
        let tight = cheapest_within_error_budget(&scenario, &cfg, 1e-60).unwrap();
        assert!(tight.cost > loose.cost);
        assert!(tight.error_probability <= 1e-60);
    }

    #[test]
    fn impossible_budget_is_reported() {
        let scenario = paper::figure2_scenario().unwrap();
        let result = cheapest_within_error_budget(&scenario, &config(), 1e-300);
        assert!(matches!(result, Err(CostError::InvalidSearchRange { .. })));
    }

    #[test]
    fn degenerate_grids_are_rejected() {
        let scenario = paper::figure2_scenario().unwrap();
        for bad in [
            TradeoffConfig {
                n_max: 0,
                ..config()
            },
            TradeoffConfig {
                r_points: 1,
                ..config()
            },
            TradeoffConfig {
                r_range: (5.0, 1.0),
                ..config()
            },
        ] {
            assert!(pareto_frontier(&scenario, &bad).is_err());
        }
    }
}
