use std::error::Error;
use std::fmt;

use zeroconf_dist::DistError;
use zeroconf_dtmc::DtmcError;
use zeroconf_numopt::NumOptError;

/// Errors produced by the zeroconf cost model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CostError {
    /// A scenario parameter was outside its domain.
    InvalidParameter {
        /// Name of the parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scenario was built without a reply-time distribution.
    MissingReplyTime,
    /// The probe count `n` must be at least one.
    InvalidProbeCount {
        /// The offending count.
        n: u32,
    },
    /// The listening period `r` was negative or not finite.
    InvalidListeningPeriod {
        /// The offending value.
        value: f64,
    },
    /// A caller-supplied π-table had fewer than `n + 1` entries.
    PiTableTooShort {
        /// Entries needed (`n + 1`).
        needed: usize,
        /// Entries supplied.
        len: usize,
    },
    /// An optimization or calibration query had an empty or unusable search
    /// range.
    InvalidSearchRange {
        /// Description of the problem.
        what: &'static str,
    },
    /// Calibration could not find parameters realizing the requested
    /// optimum.
    CalibrationFailed {
        /// Description of what went wrong.
        what: String,
    },
    /// An underlying distribution computation failed.
    Dist(DistError),
    /// An underlying chain analysis failed.
    Dtmc(DtmcError),
    /// An underlying numerical solve failed.
    NumOpt(NumOptError),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::InvalidParameter { parameter, value } => {
                write!(f, "invalid scenario parameter {parameter} = {value}")
            }
            CostError::MissingReplyTime => {
                write!(f, "scenario has no reply-time distribution")
            }
            CostError::InvalidProbeCount { n } => {
                write!(f, "probe count n = {n} must be at least 1")
            }
            CostError::InvalidListeningPeriod { value } => {
                write!(
                    f,
                    "listening period r = {value} must be nonnegative and finite"
                )
            }
            CostError::PiTableTooShort { needed, len } => {
                write!(f, "pi table has {len} entries but n requires {needed}")
            }
            CostError::InvalidSearchRange { what } => {
                write!(f, "invalid search range: {what}")
            }
            CostError::CalibrationFailed { what } => write!(f, "calibration failed: {what}"),
            CostError::Dist(e) => write!(f, "distribution error: {e}"),
            CostError::Dtmc(e) => write!(f, "chain analysis error: {e}"),
            CostError::NumOpt(e) => write!(f, "numerical solver error: {e}"),
        }
    }
}

impl Error for CostError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CostError::Dist(e) => Some(e),
            CostError::Dtmc(e) => Some(e),
            CostError::NumOpt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for CostError {
    fn from(e: DistError) -> Self {
        CostError::Dist(e)
    }
}

impl From<DtmcError> for CostError {
    fn from(e: DtmcError) -> Self {
        CostError::Dtmc(e)
    }
}

impl From<NumOptError> for CostError {
    fn from(e: NumOptError) -> Self {
        CostError::NumOpt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CostError::InvalidParameter {
            parameter: "q",
            value: 1.5,
        };
        assert!(e.to_string().contains('q'));
        assert!(CostError::InvalidProbeCount { n: 0 }
            .to_string()
            .contains("n = 0"));
    }

    #[test]
    fn conversions_preserve_source() {
        let e: CostError = DistError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
        let e: CostError = DtmcError::EmptyChain.into();
        assert!(Error::source(&e).is_some());
        let e: CostError = NumOptError::InvalidInterval { lo: 1.0, hi: 0.0 }.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&CostError::MissingReplyTime).is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostError>();
    }
}
