//! The Section 4.5 inverse problem: which costs `(E, c)` make a prescribed
//! protocol configuration `(n, r)` cost-optimal?
//!
//! The paper assumes the draft's recommendation `(n = 4, r = 2)` (or
//! `(4, 0.2)` for reliable links) reflects a cost-optimal design under
//! worst-case network assumptions, and asks what `E` and `c` must then be.
//! It reports `E_{r=2} = 5·10^20, c_{r=2} = 3.5` and
//! `E_{r=0.2} = 10^35, c_{r=0.2} = 0.5`, obtained "by simple numerical
//! approximation" — without stating the optimality criterion precisely.
//!
//! We implement the natural reading as two nested inversions:
//!
//! 1. **Stationarity in `r`** — for a candidate postage `c`, find the `E`
//!    for which the listening period `r` is exactly the minimizer of
//!    `C_n(·)`:  `r_opt(n; E, c) = r`. Since a larger collision cost pushes
//!    the optimum to longer listening, `r_opt` is monotone increasing in
//!    `log E` and [`zeroconf_numopt::invert_monotone`] applies.
//! 2. **Indifference in `n`** — adjust `c` until the *next* probe count is
//!    exactly cost-neutral at its own optimal listening period:
//!    `C_{n}(r_opt(n)) = C_{n+1}(r_opt(n+1))`. The postage is what makes
//!    extra probes a net loss (Section 4.3), so this difference is
//!    monotone in `c`.
//!
//! Together the two conditions pin `(E, c)` so that `(n, r)` is a joint
//! cost optimum sitting exactly on the `n → n+1` decision boundary.

use zeroconf_numopt::{invert_monotone, Tolerance};

use crate::cost::{check_n, check_r};
use crate::kernel::ScenarioFactors;
use crate::optimize::{self, OptimizeConfig};
use crate::param::ParamLandscape;
use crate::{CostError, Scenario};

/// Result of a calibration run.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The collision cost `E` realizing the target optimum.
    pub error_cost: f64,
    /// The probe postage `c` realizing the target optimum.
    pub probe_cost: f64,
    /// The calibrated scenario (input scenario with `E` and `c` replaced).
    pub scenario: Scenario,
    /// Joint optimum of the calibrated scenario, for verification. The
    /// calibration puts the target exactly on the `n → n+1` decision
    /// boundary, so the verified probe count may legitimately resolve to
    /// `n` or `n + 1` (their optimal costs agree to solver tolerance);
    /// what must hold is that the target configuration's cost matches
    /// [`JointOptimum::cost`](optimize::JointOptimum::cost) up to that
    /// tolerance.
    pub verified_optimum: optimize::JointOptimum,
}

/// Search space for the calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrateConfig {
    /// Bracket for `log10(E)` used by the inner inversion.
    pub log10_error_cost_range: (f64, f64),
    /// Bracket for the postage `c` used by the outer inversion.
    pub probe_cost_range: (f64, f64),
    /// Optimizer settings used for every inner `r_opt` evaluation.
    pub optimize: OptimizeConfig,
    /// Root-finding tolerance of both inversions.
    pub tolerance: Tolerance,
}

impl Default for CalibrateConfig {
    fn default() -> Self {
        CalibrateConfig {
            log10_error_cost_range: (0.0, 60.0),
            probe_cost_range: (1e-3, 100.0),
            optimize: OptimizeConfig::default(),
            tolerance: Tolerance {
                x_abs: 1e-6,
                x_rel: 1e-9,
                max_iterations: 200,
            },
        }
    }
}

/// Inner inversion only: the collision cost `E` for which `r` is the
/// optimal listening period of `C_n(·)`, keeping the scenario's postage.
///
/// # Errors
///
/// - Argument validation as in [`Scenario::mean_cost`].
/// - [`CostError::CalibrationFailed`] when no `E` in the configured range
///   realizes the target.
pub fn calibrate_error_cost(
    scenario: &Scenario,
    n: u32,
    r: f64,
    config: &CalibrateConfig,
) -> Result<f64, CostError> {
    check_n(n)?;
    check_r(r)?;
    let (lo, hi) = config.log10_error_cost_range;
    // r_opt as a function of log10(E); NaN on evaluation failure is caught
    // by the solver.
    let r_opt = |log_e: f64| -> f64 {
        scenario
            .with_error_cost(10f64.powf(log_e))
            .and_then(|s| optimize::optimal_listening(&s, n, &config.optimize))
            .map(|o| o.r)
            .unwrap_or(f64::NAN)
    };
    let root = invert_monotone(r_opt, r, lo, hi, true, config.tolerance).map_err(|e| {
        CostError::CalibrationFailed {
            what: format!("no error cost E in 1e{lo}..1e{hi} makes r_opt({n}) = {r}: {e}"),
        }
    })?;
    Ok(10f64.powf(root.argument))
}

/// Closed-form variant of [`calibrate_error_cost`], exploiting that
/// Eq. (3) is **linear in `E`**: `C_n(r; E) = α_n(r) + E·Err_n(r)`,
/// where `α_n` is the mean cost at `E = 0` and `Err_n` the Eq. (4)
/// collision probability. At an interior optimum of `C_n(·; E)` the `r`
/// derivative vanishes, so the unique stationarity-realizing collision
/// cost is
///
/// ```text
/// E* = −α_n'(r) / Err_n'(r)
/// ```
///
/// Both derivatives are estimated by a central difference over the
/// sufficient statistic at `r·(1 ± h)` — two π columns, evaluated once;
/// everything else is the rational-function reconstruction of
/// [`ParamLandscape`]. No optimizer runs and no bracket search: this is
/// the closed-form inverse the iterative [`calibrate_error_cost`]
/// cross-checks (and vice versa — the golden suite asserts their
/// agreement on the paper's `(4, 2)` and `(4, 0.2)` cases).
///
/// `relative_step` is the derivative step `h` (e.g. `1e-3`), validated
/// like the sensitivity module's elasticity step.
///
/// # Errors
///
/// - Argument validation as in [`Scenario::mean_cost`]; `r` must be
///   strictly positive (an interior optimum) and `relative_step` in
///   `(0, 0.5)`.
/// - [`CostError::CalibrationFailed`] when the stationarity condition
///   yields no positive finite `E` (e.g. `Err_n` is flat at `r`, so no
///   collision cost makes `r` optimal).
pub fn calibrate_error_cost_closed_form(
    scenario: &Scenario,
    n: u32,
    r: f64,
    relative_step: f64,
) -> Result<f64, CostError> {
    check_n(n)?;
    check_r(r)?;
    if r == 0.0 {
        return Err(CostError::CalibrationFailed {
            what: "the closed-form inverse needs an interior target r > 0".to_owned(),
        });
    }
    if !relative_step.is_finite() || relative_step <= 0.0 || relative_step >= 0.5 {
        return Err(CostError::InvalidParameter {
            parameter: "relative step h",
            value: relative_step,
        });
    }
    let rs = [r * (1.0 - relative_step), r * (1.0 + relative_step)];
    let landscape = ParamLandscape::build(scenario, n, &rs)?;
    // α is the E = 0 slice of the linear-in-E cost; Err never depends on
    // E at all, so the scenario's own placeholder E is irrelevant here.
    let zero_e = ScenarioFactors::new(&scenario.with_error_cost(0.0)?);
    let d_alpha = landscape.cost_at(&zero_e, 1, n) - landscape.cost_at(&zero_e, 0, n);
    let d_err = landscape.error_at(&zero_e, 1, n) - landscape.error_at(&zero_e, 0, n);
    let error_cost = -d_alpha / d_err;
    if !error_cost.is_finite() || error_cost <= 0.0 {
        return Err(CostError::CalibrationFailed {
            what: format!(
                "stationarity at (n = {n}, r = {r}) gives E = {error_cost:e}; \
                 no positive collision cost makes r optimal"
            ),
        });
    }
    Ok(error_cost)
}

/// Full Section 4.5 calibration: find `(E, c)` such that `(n, r)` is the
/// joint cost optimum, with the `n → n+1` boundary exactly binding.
///
/// # Errors
///
/// - Argument validation as in [`Scenario::mean_cost`].
/// - [`CostError::CalibrationFailed`] when the configured brackets contain
///   no solution.
pub fn calibrate(
    scenario: &Scenario,
    n: u32,
    r: f64,
    config: &CalibrateConfig,
) -> Result<Calibration, CostError> {
    check_n(n)?;
    check_r(r)?;
    let (c_lo, c_hi) = config.probe_cost_range;

    // Outer objective: with E re-calibrated for the candidate postage,
    // how much cheaper is the incumbent n than n+1 at their own optima?
    // Positive = n+1 still wins (postage too small). Monotone increasing
    // in c.
    let imbalance = |c: f64| -> f64 {
        let result = (|| -> Result<f64, CostError> {
            let with_c = scenario.with_probe_cost(c)?;
            let e = calibrate_error_cost(&with_c, n, r, config)?;
            let calibrated = with_c.with_error_cost(e)?;
            let this = optimize::optimal_listening(&calibrated, n, &config.optimize)?;
            let next = optimize::optimal_listening(&calibrated, n + 1, &config.optimize)?;
            // Relative cost gap keeps magnitudes solver-friendly across
            // many orders of magnitude of E.
            Ok((next.cost - this.cost) / this.cost)
        })();
        result.unwrap_or(f64::NAN)
    };

    let root =
        invert_monotone(imbalance, 0.0, c_lo, c_hi, true, config.tolerance).map_err(|e| {
            CostError::CalibrationFailed {
                what: format!("no postage c in {c_lo}..{c_hi} balances n = {n} against n + 1: {e}"),
            }
        })?;
    let probe_cost = root.argument;
    let with_c = scenario.with_probe_cost(probe_cost)?;
    let error_cost = calibrate_error_cost(&with_c, n, r, config)?;
    let calibrated = with_c.with_error_cost(error_cost)?;
    let verified_optimum = optimize::joint_optimum(&calibrated, &config.optimize)?;
    Ok(Calibration {
        error_cost,
        probe_cost,
        scenario: calibrated,
        verified_optimum,
    })
}

#[cfg(test)]
mod tests {
    use crate::paper;

    use super::*;

    fn quick_config() -> CalibrateConfig {
        CalibrateConfig {
            optimize: OptimizeConfig {
                r_max: 40.0,
                grid_points: 250,
                n_max: 12,
                ..OptimizeConfig::default()
            },
            tolerance: Tolerance {
                x_abs: 1e-4,
                x_rel: 1e-7,
                max_iterations: 120,
            },
            ..CalibrateConfig::default()
        }
    }

    #[test]
    fn error_cost_inversion_hits_the_target_r() {
        // Unreliable link, paper postage c = 3.5: the calibrated E must
        // make r = 2 optimal for n = 4.
        let s = paper::calibration_unreliable_scenario()
            .unwrap()
            .with_probe_cost(3.5)
            .unwrap();
        let cfg = quick_config();
        let e = calibrate_error_cost(&s, 4, 2.0, &cfg).unwrap();
        let check =
            optimize::optimal_listening(&s.with_error_cost(e).unwrap(), 4, &cfg.optimize).unwrap();
        assert!(
            (check.r - 2.0).abs() < 0.01,
            "calibrated E = {e:e} gives r_opt = {}",
            check.r
        );
    }

    #[test]
    fn closed_form_e_inverse_agrees_with_invert_monotone_on_the_paper_cases() {
        // The paper's two calibration settings: unreliable link with the
        // draft target (n = 4, r = 2) at c = 3.5, and reliable link with
        // (4, 0.2) at c = 0.5. The closed-form stationarity inverse and
        // the iterative r_opt inversion must land on the same E up to the
        // optimizer's grid tolerance (compared in log10 space, where the
        // paper itself quotes the answers).
        let cfg = quick_config();
        let cases = [
            (paper::calibration_unreliable_scenario(), 2.0, 3.5),
            (paper::calibration_reliable_scenario(), 0.2, 0.5),
        ];
        for (scenario, r, c) in cases {
            let s = scenario.unwrap().with_probe_cost(c).unwrap();
            let closed = calibrate_error_cost_closed_form(&s, 4, r, 1e-3).unwrap();
            let iterative = calibrate_error_cost(&s, 4, r, &cfg).unwrap();
            assert!(
                (closed.log10() - iterative.log10()).abs() < 0.1,
                "r = {r}: closed-form E = {closed:e} vs iterative E = {iterative:e}"
            );
        }
    }

    #[test]
    fn closed_form_e_inverse_reproduces_section_4_5_magnitudes() {
        // Section 4.5 reports E_{r=2} = 5e20 and E_{r=0.2} = 1e35.
        let unreliable = paper::calibration_unreliable_scenario()
            .unwrap()
            .with_probe_cost(paper::CALIBRATED_UNRELIABLE.1)
            .unwrap();
        let e = calibrate_error_cost_closed_form(&unreliable, 4, 2.0, 1e-3).unwrap();
        assert!(
            (e.log10() - paper::CALIBRATED_UNRELIABLE.0.log10()).abs() < 1.0,
            "E_r=2 = {e:e}"
        );
        let reliable = paper::calibration_reliable_scenario()
            .unwrap()
            .with_probe_cost(paper::CALIBRATED_RELIABLE.1)
            .unwrap();
        let e = calibrate_error_cost_closed_form(&reliable, 4, 0.2, 1e-3).unwrap();
        assert!(
            (e.log10() - paper::CALIBRATED_RELIABLE.0.log10()).abs() < 1.0,
            "E_r=0.2 = {e:e}"
        );
    }

    #[test]
    fn closed_form_e_inverse_validates_arguments() {
        let s = paper::calibration_unreliable_scenario().unwrap();
        assert!(calibrate_error_cost_closed_form(&s, 0, 2.0, 1e-3).is_err());
        assert!(calibrate_error_cost_closed_form(&s, 4, -1.0, 1e-3).is_err());
        assert!(calibrate_error_cost_closed_form(&s, 4, 0.0, 1e-3).is_err());
        assert!(calibrate_error_cost_closed_form(&s, 4, 2.0, 0.0).is_err());
        assert!(calibrate_error_cost_closed_form(&s, 4, 2.0, 0.9).is_err());
    }

    #[test]
    fn error_cost_grows_with_target_r() {
        let s = paper::calibration_unreliable_scenario()
            .unwrap()
            .with_probe_cost(3.5)
            .unwrap();
        let cfg = quick_config();
        let e_short = calibrate_error_cost(&s, 4, 1.5, &cfg).unwrap();
        let e_long = calibrate_error_cost(&s, 4, 2.5, &cfg).unwrap();
        assert!(e_long > e_short);
    }

    #[test]
    fn unreachable_targets_fail_gracefully() {
        // A target r beyond the optimizer's r_max can never be an interior
        // optimum, so no E realizes it (the bracket expansion gives up).
        let s = paper::calibration_unreliable_scenario().unwrap();
        let cfg = quick_config();
        let result = calibrate_error_cost(&s, 4, cfg.optimize.r_max + 10.0, &cfg);
        assert!(matches!(result, Err(CostError::CalibrationFailed { .. })));
    }

    #[test]
    fn invalid_arguments_are_rejected() {
        let s = paper::calibration_unreliable_scenario().unwrap();
        let cfg = quick_config();
        assert!(calibrate_error_cost(&s, 0, 2.0, &cfg).is_err());
        assert!(calibrate_error_cost(&s, 4, -1.0, &cfg).is_err());
        assert!(calibrate(&s, 0, 2.0, &cfg).is_err());
    }
}
