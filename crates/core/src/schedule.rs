//! Extension: non-uniform listening schedules.
//!
//! The paper's protocol listens for the same `r` seconds after every
//! probe, and its introduction explicitly asks: *"Are there variations of
//! the protocol which behave equivalently except that configuration takes
//! less time?"* This module answers that question within the model: let
//! round `j` listen for its own `r_j`, so probe `j` goes out at
//! `T_{j−1} = r_1 + … + r_{j−1}`.
//!
//! The DRM of Section 3.1 carries over unchanged in structure — only the
//! round costs become `r_j + c` and the no-answer probabilities generalize
//! through the independent-probes reading of Eq. (1):
//!
//! ```text
//! π_i = Π_{j=1..i} survival(T_i − T_{j−1})      (π of the first i rounds)
//! p_i = π_i / π_{i−1}
//! ```
//!
//! and the mean total cost becomes
//!
//! ```text
//!      Σ_{i=1..n} (r_i + c)·((1−q) + q·π_{i−1}) + q·E·π_n
//! C = ─────────────────────────────────────────────────────
//!                    1 − q·(1 − π_n)
//! ```
//!
//! which collapses to Eq. (3) for a uniform schedule (tested). A
//! coordinate-descent optimizer then searches the schedule space; the
//! `schedules` benchmark and the integration tests quantify how much a
//! tuned schedule saves over the best uniform one.

use zeroconf_dist::ReplyTimeDistribution;
use zeroconf_dtmc::{AbsorbingAnalysis, DtmcBuilder, StateId};
use zeroconf_numopt::{golden_section_min, Tolerance};

use crate::cost::check_n;
use crate::drm::Drm;
use crate::optimize::{self, OptimizeConfig};
use crate::{CostError, Scenario};

/// A per-round listening schedule `r_1, …, r_n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    periods: Vec<f64>,
}

impl Schedule {
    /// Creates a schedule from explicit per-round periods.
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] for an empty list.
    /// - [`CostError::InvalidListeningPeriod`] for a negative or
    ///   non-finite period.
    pub fn new(periods: Vec<f64>) -> Result<Self, CostError> {
        if periods.is_empty() {
            return Err(CostError::InvalidProbeCount { n: 0 });
        }
        for &r in &periods {
            if !r.is_finite() || r < 0.0 {
                return Err(CostError::InvalidListeningPeriod { value: r });
            }
        }
        Ok(Schedule { periods })
    }

    /// The paper's protocol: `n` rounds of `r` seconds each.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Schedule::new`].
    pub fn uniform(n: u32, r: f64) -> Result<Self, CostError> {
        check_n(n)?;
        Schedule::new(vec![r; n as usize])
    }

    /// Number of probes `n`.
    pub fn probes(&self) -> u32 {
        self.periods.len() as u32
    }

    /// The per-round periods.
    pub fn periods(&self) -> &[f64] {
        &self.periods
    }

    /// Total listening time `T_n = Σ r_j` — the user-visible wait on a
    /// free address.
    pub fn total_listening(&self) -> f64 {
        self.periods.iter().sum()
    }

    /// Probe transmission times `T_0 = 0, T_1, …, T_{n−1}`.
    pub fn probe_times(&self) -> Vec<f64> {
        let mut times = Vec::with_capacity(self.periods.len());
        let mut t = 0.0;
        for &r in &self.periods {
            times.push(t);
            t += r;
        }
        times
    }

    /// Round-end times `T_1, …, T_n`.
    pub fn round_ends(&self) -> Vec<f64> {
        let mut ends = Vec::with_capacity(self.periods.len());
        let mut t = 0.0;
        for &r in &self.periods {
            t += r;
            ends.push(t);
        }
        ends
    }
}

/// `π_0, …, π_n` for a schedule: `π_i` is the probability that none of the
/// first `i` probes has been answered by the end of round `i`.
pub fn pi_sequence<D: ReplyTimeDistribution + ?Sized>(dist: &D, schedule: &Schedule) -> Vec<f64> {
    let sends = schedule.probe_times();
    let ends = schedule.round_ends();
    let mut out = Vec::with_capacity(sends.len() + 1);
    out.push(1.0);
    for i in 0..sends.len() {
        let t_i = ends[i];
        let pi: f64 = sends[..=i]
            .iter()
            .map(|&send| dist.survival(t_i - send))
            .product();
        out.push(pi.clamp(0.0, 1.0));
    }
    out
}

/// Mean total cost of a protocol run under a schedule (the generalized
/// Eq. 3).
///
/// # Errors
///
/// Infallible for a valid schedule and scenario; the `Result` mirrors the
/// uniform API.
pub fn mean_cost(scenario: &Scenario, schedule: &Schedule) -> Result<f64, CostError> {
    let q = scenario.occupancy();
    let c = scenario.probe_cost();
    let e = scenario.error_cost();
    let pis = pi_sequence(scenario.reply_time(), schedule);
    let n = schedule.periods().len();
    let mut probing = 0.0;
    for (period, pi) in schedule.periods().iter().zip(&pis) {
        probing += (period + c) * ((1.0 - q) + q * pi);
    }
    let pi_n = pis[n];
    Ok((probing + q * e * pi_n) / (1.0 - q * (1.0 - pi_n)))
}

/// Collision probability under a schedule (the generalized Eq. 4).
///
/// # Errors
///
/// Infallible for a valid schedule; mirrors the uniform API.
pub fn error_probability(scenario: &Scenario, schedule: &Schedule) -> Result<f64, CostError> {
    let q = scenario.occupancy();
    let pis = pi_sequence(scenario.reply_time(), schedule);
    let pi_n = *pis.last().expect("pi_sequence is never empty");
    Ok(q * pi_n / (1.0 - q * (1.0 - pi_n)))
}

/// Builds the schedule's DRM explicitly (cross-validation route).
///
/// # Errors
///
/// Propagates chain-construction failures (not expected for valid input).
pub fn build_drm(scenario: &Scenario, schedule: &Schedule) -> Result<Drm, CostError> {
    let q = scenario.occupancy();
    let c = scenario.probe_cost();
    let e = scenario.error_cost();
    let pis = pi_sequence(scenario.reply_time(), schedule);
    let n = schedule.periods().len();
    let p: Vec<f64> = (1..=n)
        .map(|i| {
            if pis[i - 1] <= 0.0 {
                0.0
            } else {
                (pis[i] / pis[i - 1]).clamp(0.0, 1.0)
            }
        })
        .collect();

    let mut b = DtmcBuilder::with_capacity(n + 3);
    let start = b.add_state("start");
    let probes: Vec<StateId> = (1..=n).map(|i| b.add_state(format!("probe{i}"))).collect();
    let error = b.add_state("error");
    let ok = b.add_state("ok");
    let total_ok_cost = schedule.total_listening() + n as f64 * c;
    b.add_transition(start, probes[0], q, schedule.periods()[0] + c)?;
    b.add_transition(start, ok, 1.0 - q, total_ok_cost)?;
    for i in 0..n {
        let (next, cost) = if i + 1 < n {
            (probes[i + 1], schedule.periods()[i + 1] + c)
        } else {
            (error, e)
        };
        b.add_transition(probes[i], next, p[i], cost)?;
        b.add_transition(probes[i], start, 1.0 - p[i], 0.0)?;
    }
    b.make_absorbing(error)?;
    b.make_absorbing(ok)?;
    Ok(Drm {
        chain: b.build()?,
        start,
        probes,
        error,
        ok,
    })
}

/// Mean cost via the schedule DRM's linear solve.
///
/// # Errors
///
/// Propagates chain-analysis failures.
pub fn mean_cost_via_drm(scenario: &Scenario, schedule: &Schedule) -> Result<f64, CostError> {
    let drm = build_drm(scenario, schedule)?;
    let analysis = AbsorbingAnalysis::new(&drm.chain)?;
    Ok(analysis.expected_total_reward(drm.start)?)
}

/// An optimized schedule with its performance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOptimum {
    /// The optimized per-round periods.
    pub schedule: Schedule,
    /// Mean cost under the optimized schedule.
    pub cost: f64,
    /// Collision probability under the optimized schedule.
    pub error_probability: f64,
    /// Cost of the best *uniform* schedule with the same probe count, for
    /// comparison.
    pub uniform_cost: f64,
    /// Coordinate-descent sweeps performed.
    pub sweeps: usize,
}

/// Optimizes the per-round periods for a fixed probe count by cyclic
/// coordinate descent (golden-section line searches), starting from the
/// best uniform schedule.
///
/// The objective is smooth and each coordinate slice is unimodal in
/// practice (a scaled copy of the uniform trade-off), so descent converges
/// quickly; iteration stops when a full sweep improves the cost by less
/// than `1e−10` relative, or after 40 sweeps.
///
/// # Errors
///
/// - Argument validation as in [`Scenario::mean_cost`].
/// - Propagated optimizer failures.
pub fn optimize_schedule(
    scenario: &Scenario,
    n: u32,
    config: &OptimizeConfig,
) -> Result<ScheduleOptimum, CostError> {
    check_n(n)?;
    let uniform = optimize::optimal_listening(scenario, n, config)?;
    let mut periods = vec![uniform.r; n as usize];
    let mut best = mean_cost(scenario, &Schedule::new(periods.clone())?)?;
    let tolerance = Tolerance {
        x_abs: 1e-9,
        x_rel: 1e-11,
        max_iterations: 200,
    };
    let mut sweeps = 0;
    for _ in 0..40 {
        sweeps += 1;
        let before = best;
        for i in 0..periods.len() {
            let objective = |r: f64| {
                let mut candidate = periods.clone();
                candidate[i] = r;
                Schedule::new(candidate)
                    .and_then(|s| mean_cost(scenario, &s))
                    .unwrap_or(f64::NAN)
            };
            let minimum = golden_section_min(objective, 0.0, config.r_max, tolerance)?;
            if minimum.value < best {
                periods[i] = minimum.argument;
                best = minimum.value;
            }
        }
        if (before - best) / before.abs().max(1e-300) < 1e-10 {
            break;
        }
    }
    let schedule = Schedule::new(periods)?;
    let error_probability = error_probability(scenario, &schedule)?;
    Ok(ScheduleOptimum {
        cost: best,
        error_probability,
        uniform_cost: uniform.cost,
        schedule,
        sweeps,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;

    use crate::{cost, paper};

    use super::*;

    fn figure2() -> Scenario {
        paper::figure2_scenario().unwrap()
    }

    fn moderate() -> Scenario {
        Scenario::builder()
            .occupancy(0.3)
            .probe_cost(1.5)
            .error_cost(500.0)
            .reply_time(Arc::new(DefectiveExponential::new(0.8, 2.0, 0.4).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn schedule_construction_validates() {
        assert!(Schedule::new(vec![]).is_err());
        assert!(Schedule::new(vec![1.0, -0.5]).is_err());
        assert!(Schedule::new(vec![1.0, f64::NAN]).is_err());
        assert!(Schedule::uniform(0, 1.0).is_err());
        let s = Schedule::uniform(4, 2.0).unwrap();
        assert_eq!(s.probes(), 4);
        assert_eq!(s.total_listening(), 8.0);
        assert_eq!(s.probe_times(), vec![0.0, 2.0, 4.0, 6.0]);
        assert_eq!(s.round_ends(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn uniform_schedule_reproduces_eq3_exactly() {
        for scenario in [figure2(), moderate()] {
            for n in [1u32, 3, 5, 8] {
                for r in [0.0, 0.5, 2.0, 6.0] {
                    let uniform = Schedule::uniform(n, r).unwrap();
                    let general = mean_cost(&scenario, &uniform).unwrap();
                    let eq3 = cost::mean_cost(&scenario, n, r).unwrap();
                    assert!(
                        ((general - eq3) / eq3.abs().max(1e-300)).abs() < 1e-12,
                        "n = {n}, r = {r}: {general} vs {eq3}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_schedule_reproduces_eq4_exactly() {
        let scenario = moderate();
        for n in [1u32, 4] {
            for r in [0.3, 1.0] {
                let uniform = Schedule::uniform(n, r).unwrap();
                let general = error_probability(&scenario, &uniform).unwrap();
                let eq4 = cost::error_probability(&scenario, n, r).unwrap();
                assert!((general - eq4).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn schedule_pi_differs_from_uniform_pi_when_rounds_differ() {
        // Sanity: the generalization is not just reading r_1.
        let scenario = moderate();
        let skewed = Schedule::new(vec![2.0, 0.1]).unwrap();
        let uniform = Schedule::uniform(2, 1.05).unwrap(); // same total
        let pi_skewed = pi_sequence(scenario.reply_time(), &skewed);
        let pi_uniform = pi_sequence(scenario.reply_time(), &uniform);
        assert!((pi_skewed[2] - pi_uniform[2]).abs() > 1e-6);
    }

    #[test]
    fn closed_form_matches_drm_for_non_uniform_schedules() {
        let scenario = moderate();
        for periods in [
            vec![0.5, 1.0, 2.0],
            vec![2.0, 0.2],
            vec![0.0, 1.0, 0.0, 2.0],
            vec![3.0],
        ] {
            let schedule = Schedule::new(periods.clone()).unwrap();
            let closed = mean_cost(&scenario, &schedule).unwrap();
            let solved = mean_cost_via_drm(&scenario, &schedule).unwrap();
            assert!(
                ((closed - solved) / closed).abs() < 1e-10,
                "{periods:?}: {closed} vs {solved}"
            );
        }
    }

    #[test]
    fn optimized_schedule_beats_or_matches_uniform() {
        let scenario = figure2();
        let config = OptimizeConfig {
            r_max: 30.0,
            grid_points: 300,
            n_max: 12,
            ..OptimizeConfig::default()
        };
        let optimum = optimize_schedule(&scenario, 3, &config).unwrap();
        assert!(
            optimum.cost <= optimum.uniform_cost + 1e-9,
            "optimized {} vs uniform {}",
            optimum.cost,
            optimum.uniform_cost
        );
        assert!(optimum.sweeps >= 1);
        assert_eq!(optimum.schedule.probes(), 3);
    }

    #[test]
    fn optimized_schedule_back_loads_waiting() {
        // The optimum fires probes early and listens late: a reply to ANY
        // earlier probe can still arrive during the long final round, so
        // compressing the early rounds multiplies the chances the last
        // window catches something. This is the schedule-space version of
        // the paper's own Section 4.3 remark that with free postage "the
        // optimal strategy would be to send as many ARP probes as fast as
        // possible".
        let scenario = figure2();
        let config = OptimizeConfig {
            r_max: 30.0,
            grid_points: 300,
            n_max: 12,
            ..OptimizeConfig::default()
        };
        let optimum = optimize_schedule(&scenario, 3, &config).unwrap();
        let p = optimum.schedule.periods();
        assert!(
            p[p.len() - 1] >= p[0] - 1e-6,
            "expected back-loaded schedule, got {p:?}"
        );
        // And the tuned schedule strictly beats the best uniform one.
        assert!(optimum.cost < optimum.uniform_cost * 0.999);
    }

    #[test]
    fn error_probability_of_schedule_is_a_probability() {
        let scenario = moderate();
        let schedule = Schedule::new(vec![0.7, 0.1, 1.3]).unwrap();
        let p = error_probability(&scenario, &schedule).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn zero_length_rounds_degenerate_to_fewer_effective_probes() {
        // An all-zero schedule never hears a delayed reply: every occupied
        // candidate collides (π_n = 1), like r = 0 in the uniform model.
        let scenario = moderate();
        let schedule = Schedule::new(vec![0.0, 0.0, 0.0]).unwrap();
        let p = error_probability(&scenario, &schedule).unwrap();
        assert!((p - scenario.occupancy()).abs() < 1e-12);
    }
}
