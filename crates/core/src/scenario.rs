//! The application-specific parameters of the cost model.

use std::fmt;
use std::sync::Arc;

use zeroconf_dist::ReplyTimeDistribution;

use crate::{cost, drm, CostError, ADDRESS_SPACE_SIZE};

/// The application-specific side of the model: everything the protocol
/// designer can *not* choose (Section 4.2 of the paper).
///
/// A scenario fixes
///
/// - `q` — probability that a randomly selected address is already in use
///   (`q = m / 65024` for `m` configured hosts),
/// - `c` — the network "postage" charged per ARP probe,
/// - `E` — the cost of erroneously accepting an address in use,
/// - `F_X` — the (defective) distribution of probe-reply times.
///
/// The designer-controlled parameters `n` (probe count) and `r` (listening
/// period) are arguments of the queries instead, so one scenario value
/// serves a whole parameter study.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zeroconf_cost::Scenario;
/// use zeroconf_dist::DefectiveExponential;
///
/// # fn main() -> Result<(), zeroconf_cost::CostError> {
/// let scenario = Scenario::builder()
///     .hosts(1000)?
///     .probe_cost(2.0)
///     .error_cost(1e35)
///     .reply_time(Arc::new(DefectiveExponential::from_loss(1e-15, 10.0, 1.0)?))
///     .build()?;
/// assert!(scenario.mean_cost(4, 2.0)? > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Scenario {
    occupancy: f64,
    probe_cost: f64,
    error_cost: f64,
    reply_time: Arc<dyn ReplyTimeDistribution>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("occupancy", &self.occupancy)
            .field("probe_cost", &self.probe_cost)
            .field("error_cost", &self.error_cost)
            .field("reply_time", &self.reply_time)
            .finish()
    }
}

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The address-occupancy probability `q`.
    pub fn occupancy(&self) -> f64 {
        self.occupancy
    }

    /// The per-probe postage `c`.
    pub fn probe_cost(&self) -> f64 {
        self.probe_cost
    }

    /// The collision cost `E`.
    pub fn error_cost(&self) -> f64 {
        self.error_cost
    }

    /// The reply-time distribution `F_X`.
    pub fn reply_time(&self) -> &Arc<dyn ReplyTimeDistribution> {
        &self.reply_time
    }

    /// Returns a copy with a different collision cost `E` (used heavily by
    /// the Section 4.5 calibration).
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for a negative or non-finite
    /// cost.
    pub fn with_error_cost(&self, error_cost: f64) -> Result<Scenario, CostError> {
        check_nonnegative("error_cost", error_cost)?;
        Ok(Scenario {
            error_cost,
            ..self.clone()
        })
    }

    /// Returns a copy with a different probe postage `c`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] for a negative or non-finite
    /// cost.
    pub fn with_probe_cost(&self, probe_cost: f64) -> Result<Scenario, CostError> {
        check_nonnegative("probe_cost", probe_cost)?;
        Ok(Scenario {
            probe_cost,
            ..self.clone()
        })
    }

    /// Returns a copy with a different occupancy probability `q`.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] unless `q ∈ (0, 1)`.
    pub fn with_occupancy(&self, occupancy: f64) -> Result<Scenario, CostError> {
        check_occupancy(occupancy)?;
        Ok(Scenario {
            occupancy,
            ..self.clone()
        })
    }

    /// Mean total cost `C(n, r)` of a protocol run — Eq. (3) of the paper.
    ///
    /// # Errors
    ///
    /// - [`CostError::InvalidProbeCount`] when `n == 0`.
    /// - [`CostError::InvalidListeningPeriod`] for negative/non-finite `r`.
    pub fn mean_cost(&self, n: u32, r: f64) -> Result<f64, CostError> {
        cost::mean_cost(self, n, r)
    }

    /// Collision probability `E(n, r)` — Eq. (4) of the paper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost`].
    pub fn error_probability(&self, n: u32, r: f64) -> Result<f64, CostError> {
        cost::error_probability(self, n, r)
    }

    /// Protocol reliability: `1 − E(n, r)` (Section 5).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost`].
    pub fn reliability(&self, n: u32, r: f64) -> Result<f64, CostError> {
        Ok(1.0 - self.error_probability(n, r)?)
    }

    /// The asymptote `A_n(r)` the cost approaches for large `r`
    /// (Section 4.2).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost`].
    pub fn asymptote(&self, n: u32, r: f64) -> Result<f64, CostError> {
        cost::asymptote(self, n, r)
    }

    /// Lower bound `ν = ⌈−log E / log(1 − l)⌉` on a useful probe count
    /// (Section 4.4); `None` when the link never loses replies (the bound
    /// degenerates).
    pub fn nu_lower_bound(&self) -> Option<u32> {
        cost::nu_lower_bound(self)
    }

    /// Mean total cost computed by building the DRM of Section 4.1 and
    /// solving the linear system of Eq. (2) — the cross-check for Eq. (3).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost`], plus any chain-analysis
    /// failure.
    pub fn mean_cost_via_drm(&self, n: u32, r: f64) -> Result<f64, CostError> {
        drm::mean_cost_via_drm(self, n, r)
    }

    /// Collision probability via the DRM absorption analysis (Section 5) —
    /// the cross-check for Eq. (4).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost_via_drm`].
    pub fn error_probability_via_drm(&self, n: u32, r: f64) -> Result<f64, CostError> {
        drm::error_probability_via_drm(self, n, r)
    }

    /// Standard deviation of the total cost of a run (an extension beyond
    /// the paper, computed on the DRM).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::mean_cost_via_drm`].
    pub fn cost_standard_deviation(&self, n: u32, r: f64) -> Result<f64, CostError> {
        drm::cost_standard_deviation(self, n, r)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Default, Clone)]
pub struct ScenarioBuilder {
    occupancy: Option<f64>,
    probe_cost: Option<f64>,
    error_cost: Option<f64>,
    reply_time: Option<Arc<dyn ReplyTimeDistribution>>,
}

impl ScenarioBuilder {
    /// Creates an empty builder (equivalent to [`Scenario::builder`]).
    pub fn new() -> Self {
        ScenarioBuilder::default()
    }

    /// Sets the occupancy probability `q` directly.
    pub fn occupancy(mut self, q: f64) -> Self {
        self.occupancy = Some(q);
        self
    }

    /// Sets `q = hosts / 65024`, the paper's own parameterization ("we
    /// assume that 1000 hosts are already connected").
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidParameter`] when `hosts` is zero or not
    /// smaller than the address-space size.
    pub fn hosts(mut self, hosts: u32) -> Result<Self, CostError> {
        if hosts == 0 || hosts >= ADDRESS_SPACE_SIZE {
            return Err(CostError::InvalidParameter {
                parameter: "hosts",
                value: hosts as f64,
            });
        }
        self.occupancy = Some(hosts as f64 / ADDRESS_SPACE_SIZE as f64);
        Ok(self)
    }

    /// Sets the per-probe postage `c`.
    pub fn probe_cost(mut self, c: f64) -> Self {
        self.probe_cost = Some(c);
        self
    }

    /// Sets the collision cost `E`.
    pub fn error_cost(mut self, e: f64) -> Self {
        self.error_cost = Some(e);
        self
    }

    /// Sets the reply-time distribution `F_X`.
    pub fn reply_time(mut self, dist: Arc<dyn ReplyTimeDistribution>) -> Self {
        self.reply_time = Some(dist);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// - [`CostError::MissingReplyTime`] when no distribution was set.
    /// - [`CostError::InvalidParameter`] when `q ∉ (0, 1)` or a cost is
    ///   negative/non-finite (all three numeric parameters must be set).
    pub fn build(self) -> Result<Scenario, CostError> {
        let occupancy = self.occupancy.ok_or(CostError::InvalidParameter {
            parameter: "occupancy",
            value: f64::NAN,
        })?;
        check_occupancy(occupancy)?;
        let probe_cost = self.probe_cost.ok_or(CostError::InvalidParameter {
            parameter: "probe_cost",
            value: f64::NAN,
        })?;
        check_nonnegative("probe_cost", probe_cost)?;
        let error_cost = self.error_cost.ok_or(CostError::InvalidParameter {
            parameter: "error_cost",
            value: f64::NAN,
        })?;
        check_nonnegative("error_cost", error_cost)?;
        let reply_time = self.reply_time.ok_or(CostError::MissingReplyTime)?;
        Ok(Scenario {
            occupancy,
            probe_cost,
            error_cost,
            reply_time,
        })
    }
}

fn check_occupancy(q: f64) -> Result<(), CostError> {
    if !q.is_finite() || q <= 0.0 || q >= 1.0 {
        Err(CostError::InvalidParameter {
            parameter: "occupancy",
            value: q,
        })
    } else {
        Ok(())
    }
}

fn check_nonnegative(parameter: &'static str, value: f64) -> Result<(), CostError> {
    if !value.is_finite() || value < 0.0 {
        Err(CostError::InvalidParameter { parameter, value })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_dist::DefectiveExponential;

    use super::*;

    fn dist() -> Arc<dyn ReplyTimeDistribution> {
        Arc::new(DefectiveExponential::from_loss(1e-5, 10.0, 1.0).unwrap())
    }

    #[test]
    fn builder_requires_all_fields() {
        assert!(matches!(
            Scenario::builder().build(),
            Err(CostError::InvalidParameter {
                parameter: "occupancy",
                ..
            })
        ));
        assert!(matches!(
            Scenario::builder().occupancy(0.1).build(),
            Err(CostError::InvalidParameter {
                parameter: "probe_cost",
                ..
            })
        ));
        assert!(matches!(
            Scenario::builder().occupancy(0.1).probe_cost(1.0).build(),
            Err(CostError::InvalidParameter {
                parameter: "error_cost",
                ..
            })
        ));
        assert!(matches!(
            Scenario::builder()
                .occupancy(0.1)
                .probe_cost(1.0)
                .error_cost(1.0)
                .build(),
            Err(CostError::MissingReplyTime)
        ));
    }

    #[test]
    fn builder_validates_domains() {
        let b = || {
            Scenario::builder()
                .probe_cost(1.0)
                .error_cost(1.0)
                .reply_time(dist())
        };
        assert!(b().occupancy(0.0).build().is_err());
        assert!(b().occupancy(1.0).build().is_err());
        assert!(b().occupancy(-0.1).build().is_err());
        assert!(b().occupancy(0.5).probe_cost(-1.0).build().is_err());
        assert!(b().occupancy(0.5).error_cost(f64::NAN).build().is_err());
        assert!(b().occupancy(0.5).build().is_ok());
    }

    #[test]
    fn hosts_sets_paper_occupancy() {
        let s = Scenario::builder()
            .hosts(1000)
            .unwrap()
            .probe_cost(2.0)
            .error_cost(1e35)
            .reply_time(dist())
            .build()
            .unwrap();
        assert!((s.occupancy() - 1000.0 / 65024.0).abs() < 1e-15);
    }

    #[test]
    fn hosts_rejects_degenerate_counts() {
        assert!(Scenario::builder().hosts(0).is_err());
        assert!(Scenario::builder().hosts(ADDRESS_SPACE_SIZE).is_err());
        assert!(Scenario::builder().hosts(ADDRESS_SPACE_SIZE - 1).is_ok());
    }

    #[test]
    fn with_methods_create_modified_copies() {
        let s = Scenario::builder()
            .occupancy(0.1)
            .probe_cost(2.0)
            .error_cost(100.0)
            .reply_time(dist())
            .build()
            .unwrap();
        let s2 = s.with_error_cost(200.0).unwrap();
        assert_eq!(s2.error_cost(), 200.0);
        assert_eq!(s.error_cost(), 100.0);
        let s3 = s.with_probe_cost(3.0).unwrap();
        assert_eq!(s3.probe_cost(), 3.0);
        let s4 = s.with_occupancy(0.2).unwrap();
        assert_eq!(s4.occupancy(), 0.2);
        assert!(s.with_error_cost(-1.0).is_err());
        assert!(s.with_occupancy(2.0).is_err());
    }

    #[test]
    fn debug_shows_parameters() {
        let s = Scenario::builder()
            .occupancy(0.25)
            .probe_cost(2.0)
            .error_cost(5.0)
            .reply_time(dist())
            .build()
            .unwrap();
        let text = format!("{s:?}");
        assert!(text.contains("0.25"));
        assert!(text.contains("probe_cost"));
    }
}
