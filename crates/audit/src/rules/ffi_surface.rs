//! Rule 8 — the vendored FFI surface is manifested, with errno
//! conventions noted.
//!
//! The workspace links libc directly through hand-written `extern "C"`
//! declarations (no `libc` crate), so every foreign signature is a
//! trusted assertion the compiler cannot check — a wrong parameter type
//! or a misread error convention is silent UB or a silently swallowed
//! errno. This rule keeps that surface enumerable: every `extern "C"`
//! function — block declarations (`extern "C" { fn mmap(...); }`) and
//! definitions (`extern "C" fn on_termination(...)`) alike — must appear
//! in [`MANIFEST_PATH`], one per line:
//!
//! ```text
//! <workspace-relative path> | <symbol> | <errno convention> | <note>
//! ```
//!
//! The errno-convention field records how failure is signalled
//! (`neg-ret+errno`, `MAP_FAILED+errno`, `SIG_ERR`, `callback` for
//! exported definitions, …) so each call site's `check`/`last_os_error`
//! handling can be reviewed against it. Symbols missing from the manifest
//! are denials; manifest entries whose symbol is gone are warnings
//! (fatal under `--deny-warnings`).

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// Workspace-relative path of the FFI-surface manifest.
pub const MANIFEST_PATH: &str = "crates/audit/ffi-manifest.txt";

/// One parsed manifest entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FfiEntry {
    pub path: String,
    pub symbol: String,
    pub errno: String,
    pub note: String,
    /// 1-based line in the manifest file.
    pub line: u32,
}

/// Parses the FFI manifest. Malformed lines become findings.
pub fn parse_manifest(text: &str) -> (Vec<FfiEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        match fields.as_slice() {
            [path, symbol, errno, note] if !errno.is_empty() && !symbol.is_empty() => {
                entries.push(FfiEntry {
                    path: (*path).to_owned(),
                    symbol: (*symbol).to_owned(),
                    errno: (*errno).to_owned(),
                    note: (*note).to_owned(),
                    line: line_no,
                });
            }
            _ => findings.push(Finding::deny(
                "ffi-surface",
                MANIFEST_PATH,
                line_no,
                "malformed FFI manifest entry; expected \
                 `path | symbol | errno convention | note`"
                    .to_owned(),
            )),
        }
    }
    (entries, findings)
}

/// An `extern "C"` function found in the sources.
#[derive(Debug)]
struct ExternFn {
    path: String,
    name: String,
    line: u32,
}

/// Collects every `extern "C"` function — block declarations and
/// definitions — from a scanned file's non-test code.
fn extern_fns(file: &ScannedFile) -> Vec<ExternFn> {
    let toks = file.code_tokens();
    let mut found = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        let is_extern_c = toks[i].kind == TokenKind::Ident
            && toks[i].text == "extern"
            && toks[i + 1].kind == TokenKind::Literal
            && toks[i + 1].text == "\"C\"";
        if !is_extern_c || file.in_test_region(toks[i].line) {
            i += 1;
            continue;
        }
        match toks.get(i + 2).map(|t| t.text.as_str()) {
            // Definition: `extern "C" fn name(...) { ... }`.
            Some("fn") => {
                if let Some(name) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                    found.push(ExternFn {
                        path: file.path.clone(),
                        name: name.text.clone(),
                        line: name.line,
                    });
                }
                i += 4;
            }
            // Declaration block: `extern "C" { fn a(...); fn b(...); }`.
            Some("{") => {
                let mut depth = 0i64;
                let mut j = i + 2;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "fn" if toks[j].kind == TokenKind::Ident => {
                            if let Some(name) =
                                toks.get(j + 1).filter(|t| t.kind == TokenKind::Ident)
                            {
                                found.push(ExternFn {
                                    path: file.path.clone(),
                                    name: name.text.clone(),
                                    line: name.line,
                                });
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            }
            _ => i += 2,
        }
    }
    found
}

/// Runs the FFI-surface rule over the scanned sources.
pub fn check(files: &[ScannedFile], manifest: &[FfiEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used = vec![false; manifest.len()];
    for file in files {
        for ext in extern_fns(file) {
            let entry = manifest
                .iter()
                .position(|e| e.path == ext.path && e.symbol == ext.name);
            match entry {
                Some(index) => used[index] = true,
                None => findings.push(Finding::deny(
                    "ffi-surface",
                    &ext.path,
                    ext.line,
                    format!(
                        "`extern \"C\"` fn `{}` is not in the FFI manifest ({}) — add it \
                         with its errno convention so the foreign signature is reviewed",
                        ext.name, MANIFEST_PATH
                    ),
                )),
            }
        }
    }
    for (entry, used) in manifest.iter().zip(used) {
        if !used {
            findings.push(Finding::warn(
                "ffi-surface",
                MANIFEST_PATH,
                entry.line,
                format!(
                    "unused FFI manifest entry for {} `{}` — the declaration is gone; \
                     remove the entry",
                    entry.path, entry.symbol
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reactor(src: &str) -> ScannedFile {
        ScannedFile::new("crates/serve/src/reactor.rs", src)
    }

    #[test]
    fn an_unmanifested_block_declaration_is_denied() {
        let files = vec![reactor(
            "extern \"C\" {\n    fn epoll_wait(epfd: i32) -> i32;\n}\n",
        )];
        let findings = check(&files, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "ffi-surface");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("epoll_wait"));
    }

    #[test]
    fn a_manifested_declaration_passes_and_is_marked_used() {
        let files = vec![reactor(
            "extern \"C\" {\n    fn eventfd(i: u32, f: i32) -> i32;\n}\n",
        )];
        let (manifest, parse_findings) =
            parse_manifest("crates/serve/src/reactor.rs | eventfd | neg-ret+errno | wakeup fd\n");
        assert!(parse_findings.is_empty());
        assert!(check(&files, &manifest).is_empty());
    }

    #[test]
    fn extern_fn_definitions_are_also_gated() {
        let files = vec![ScannedFile::new(
            "crates/engine/src/signal.rs",
            "pub(super) extern \"C\" fn on_termination(signum: i32) {}\n",
        )];
        let findings = check(&files, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("on_termination"));
    }

    #[test]
    fn multiple_fns_in_one_block_are_each_checked() {
        let files = vec![reactor(
            "extern \"C\" {\n    fn read(fd: i32) -> isize;\n    fn write(fd: i32) -> isize;\n}\n",
        )];
        let (manifest, _) =
            parse_manifest("crates/serve/src/reactor.rs | read | neg-ret+errno | drain\n");
        let findings = check(&files, &manifest);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("`write`"));
    }

    #[test]
    fn non_c_abis_and_test_regions_are_ignored() {
        let src = "\
extern \"Rust\" {\n    fn not_ffi();\n}\n\
#[cfg(test)]\n\
mod tests {\n\
    extern \"C\" {\n        fn in_tests_only();\n    }\n\
}\n";
        assert!(check(&[reactor(src)], &[]).is_empty());
    }

    #[test]
    fn unused_manifest_entries_warn() {
        let (manifest, _) =
            parse_manifest("crates/serve/src/reactor.rs | gone | neg-ret+errno | stale\n");
        let findings = check(&[reactor("fn nothing() {}\n")], &manifest);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, crate::report::Severity::Warn);
    }

    #[test]
    fn malformed_manifest_lines_are_denied() {
        let (entries, findings) = parse_manifest("a | b\np | s | | note\n");
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn the_word_extern_in_strings_is_ignored() {
        let files = vec![reactor("fn f() { let s = \"extern \\\"C\\\"\"; }\n")];
        assert!(check(&files, &[]).is_empty());
    }
}
