//! Rule 5 — every atomic memory ordering is justified where it is chosen.
//!
//! The workspace leans on `Ordering::Relaxed` heavily (statistics
//! counters, cancellation flags, EWMA cells) and on stronger orderings in
//! exactly the places where a *publish* happens (the SoA buffer's `taken`
//! latch). Which ordering is correct is a per-site argument that tier-1
//! tests cannot check — a wrong `Relaxed` loses writes silently, and a
//! gratuitous `SeqCst` hides the actual synchronization story. Two
//! checks:
//!
//! 1. **Adjacent justification**: every `Ordering::Relaxed` / `Acquire` /
//!    `Release` / `AcqRel` / `SeqCst` use in non-test library code must
//!    sit within [`ORDERING_WINDOW`] lines of a `// ORDERING:` comment
//!    block (merged-block adjacency, the same contract as `// SAFETY:`),
//!    so the argument lives next to the load/store it covers.
//! 2. **Hand-off manifest**: atomics that *publish data across threads*
//!    (the reader dereferences memory the writer filled) are listed in
//!    [`MANIFEST_PATH`], one per line:
//!
//!    ```text
//!    <workspace-relative path> | <atomic field or static> | <why it is a hand-off site>
//!    ```
//!
//!    `Relaxed` on a manifest-listed atomic (matched by name on the same
//!    source line, in the listed file) is denied outright, justification
//!    comment or not: a hand-off needs acquire/release edges. Unused
//!    entries are warnings (fatal under `--deny-warnings`), so the
//!    manifest cannot accrete stale sites.

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// Workspace-relative path of the synchronization-site manifest.
pub const MANIFEST_PATH: &str = "crates/audit/sync-sites.txt";

/// How many lines above an `Ordering::…` use the justifying comment
/// block may end and still count as adjacent.
pub const ORDERING_WINDOW: u32 = 4;

/// The ordering variant names this rule gates on.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One parsed manifest entry: an atomic that publishes data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffSite {
    pub path: String,
    pub name: String,
    pub justification: String,
    /// 1-based line in the manifest file.
    pub line: u32,
}

/// Parses the synchronization-site manifest. Malformed lines become
/// findings rather than being silently dropped.
pub fn parse_manifest(text: &str) -> (Vec<HandoffSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        match fields.as_slice() {
            [path, name, justification] if !justification.is_empty() && !name.is_empty() => {
                sites.push(HandoffSite {
                    path: (*path).to_owned(),
                    name: (*name).to_owned(),
                    justification: (*justification).to_owned(),
                    line: line_no,
                });
            }
            _ => findings.push(Finding::deny(
                "atomic-ordering",
                MANIFEST_PATH,
                line_no,
                "malformed sync-site entry; expected `path | atomic name | why it hands off`"
                    .to_owned(),
            )),
        }
    }
    (sites, findings)
}

/// Runs the atomic-ordering rule over the scanned sources.
pub fn check(files: &[ScannedFile], manifest: &[HandoffSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used = vec![false; manifest.len()];
    for file in files {
        let toks = file.code_tokens();
        for i in 0..toks.len() {
            // `Ordering :: <variant>` — `::` lexes as two single-char
            // puncts. The qualified `std::sync::atomic::Ordering::…`
            // spelling ends in the same four tokens.
            let variant = match (
                toks.get(i),
                toks.get(i + 1),
                toks.get(i + 2),
                toks.get(i + 3),
            ) {
                (Some(o), Some(c1), Some(c2), Some(v))
                    if o.kind == TokenKind::Ident
                        && o.text == "Ordering"
                        && c1.text == ":"
                        && c2.text == ":"
                        && v.kind == TokenKind::Ident
                        && ORDERINGS.contains(&v.text.as_str()) =>
                {
                    v
                }
                _ => continue,
            };
            if file.in_test_region(variant.line) {
                continue;
            }
            // Hand-off sites: `Relaxed` is wrong no matter the prose.
            if variant.text == "Relaxed" {
                let mut denied = false;
                for (index, site) in manifest.iter().enumerate() {
                    if site.path == file.path && names_on_line(file, variant.line, &site.name) {
                        used[index] = true;
                        findings.push(Finding::deny(
                            "atomic-ordering",
                            &file.path,
                            variant.line,
                            format!(
                                "`Ordering::Relaxed` on `{}`, a cross-thread hand-off site \
                                 ({}) — relaxed operations order nothing; use \
                                 acquire/release (or stronger)",
                                site.name, site.justification
                            ),
                        ));
                        denied = true;
                    }
                }
                if denied {
                    continue;
                }
            } else {
                // A non-relaxed ordering on a manifest site marks the
                // entry live (the site exists and is handled correctly).
                for (index, site) in manifest.iter().enumerate() {
                    if site.path == file.path && names_on_line(file, variant.line, &site.name) {
                        used[index] = true;
                    }
                }
            }
            if !super::has_adjacent_marker(file, variant.line, &["ORDERING"], ORDERING_WINDOW) {
                findings.push(Finding::deny(
                    "atomic-ordering",
                    &file.path,
                    variant.line,
                    format!(
                        "`Ordering::{}` without an adjacent `// ORDERING:` comment stating \
                         why this ordering suffices",
                        variant.text
                    ),
                ));
            }
        }
    }
    for (site, used) in manifest.iter().zip(used) {
        if !used {
            findings.push(Finding::warn(
                "atomic-ordering",
                MANIFEST_PATH,
                site.line,
                format!(
                    "unused sync-site entry for {} (`{}`) — the atomic is gone or renamed; \
                     update the manifest",
                    site.path, site.name
                ),
            ));
        }
    }
    findings
}

/// Whether identifier `name` appears as a code token on `line` of `file`.
fn names_on_line(file: &ScannedFile, line: u32, name: &str) -> bool {
    file.tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.line == line && t.text == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<ScannedFile> {
        vec![ScannedFile::new("crates/engine/src/pool.rs", src)]
    }

    #[test]
    fn an_unjustified_relaxed_is_denied() {
        let findings = check(&lib("fn f(c: &A) { c.load(Ordering::Relaxed); }\n"), &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "atomic-ordering");
        assert!(findings[0].message.contains("ORDERING"));
    }

    #[test]
    fn an_adjacent_justification_satisfies_the_rule() {
        let src = "\
fn f(c: &A) {\n\
    // ORDERING: a monotonic statistics counter; readers tolerate lag.\n\
    c.fetch_add(1, Ordering::Relaxed);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn the_comment_block_end_must_be_within_the_window() {
        let src = "\
// ORDERING: stale, far above.\n\n\n\n\n\n\
fn f(c: &A) { c.load(Ordering::SeqCst); }\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("SeqCst"));
    }

    #[test]
    fn fully_qualified_orderings_are_matched() {
        let src = "fn f(c: &A) { c.load(std::sync::atomic::Ordering::Acquire); }\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("Acquire"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t(c: &A) { c.load(Ordering::Relaxed); }\n}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn relaxed_on_a_manifest_handoff_site_is_denied_even_with_a_comment() {
        let (manifest, parse_findings) = parse_manifest(
            "crates/engine/src/pool.rs | taken | publishes the filled buffer to the taker\n",
        );
        assert!(parse_findings.is_empty());
        let src = "\
fn f(b: &B) {\n\
    // ORDERING: claims to be fine (it is not).\n\
    b.taken.swap(true, Ordering::Relaxed);\n\
}\n";
        let findings = check(&lib(src), &manifest);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("hand-off"));
    }

    #[test]
    fn acqrel_on_a_manifest_site_passes_and_marks_the_entry_used() {
        let (manifest, _) =
            parse_manifest("crates/engine/src/pool.rs | taken | publishes the buffer\n");
        let src = "\
fn f(b: &B) {\n\
    // ORDERING: AcqRel — the swap publishes writes to the taker.\n\
    b.taken.swap(true, Ordering::AcqRel);\n\
}\n";
        assert!(check(&lib(src), &manifest).is_empty());
    }

    #[test]
    fn unused_manifest_entries_warn() {
        let (manifest, _) = parse_manifest("crates/engine/src/pool.rs | gone | was a latch\n");
        let findings = check(&lib("fn f() {}\n"), &manifest);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, crate::report::Severity::Warn);
        assert!(findings[0].message.contains("unused"));
    }

    #[test]
    fn malformed_manifest_lines_are_denied() {
        let (sites, findings) = parse_manifest("# fine\njust-one-field\na | b |\n");
        assert!(sites.is_empty());
        assert_eq!(findings.len(), 2);
    }
}
