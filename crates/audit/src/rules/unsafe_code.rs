//! Rule 1 — the unsafe-code audit.
//!
//! Three checks, mirroring the workspace's unsafe policy:
//!
//! 1. **Allowlist**: the `unsafe` keyword may appear only in the modules
//!    whose invariants are documented in DESIGN.md ("Unsafe inventory &
//!    invariants"): `engine/pool.rs` (disjoint shared-slab column writes
//!    plus the `sched_setaffinity` NUMA-pinning FFI), `engine/cache.rs`
//!    (mmap-served spill tier plus the `madvise` huge-page hints),
//!    `engine/signal.rs` (the `signal(2)` handler the serve daemon's
//!    SIGTERM drain polls), `serve/reactor.rs` (the serve daemon's
//!    vendored `epoll`/`poll` readiness shim and `eventfd`/self-pipe
//!    wakeup), and the `zeroconf-simd` crate's two modules
//!    (`simd/lib.rs` dispatch into `target_feature` wrappers,
//!    `simd/lanes.rs` intrinsic lane kernels). Anywhere else it is a
//!    finding — new unsafe code must either move there or extend this
//!    allowlist *and* the design doc.
//! 2. **Adjacent justification**: every `unsafe` occurrence in the
//!    allowlisted modules must sit within a few lines of a comment
//!    carrying `SAFETY` (block form) or a `# Safety` doc section
//!    (`unsafe fn` contract form), so the invariant is argued where it is
//!    relied upon.
//! 3. **Crate headers**: every crate root except those of the
//!    unsafe-bearing crates must carry `#![forbid(unsafe_code)]`, and
//!    each unsafe-bearing crate's must carry
//!    `#![deny(unsafe_op_in_unsafe_fn)]` so each unsafe operation inside
//!    an `unsafe fn` needs its own block (and hence its own SAFETY
//!    comment).

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// The modules in which `unsafe` is permitted (workspace-relative paths).
pub const UNSAFE_ALLOWED: &[&str] = &[
    "crates/engine/src/pool.rs",
    "crates/engine/src/cache.rs",
    "crates/engine/src/signal.rs",
    "crates/serve/src/reactor.rs",
    "crates/simd/src/lib.rs",
    "crates/simd/src/lanes.rs",
];

/// The crates allowed to contain unsafe code.
pub const UNSAFE_CRATES: &[&str] = &["zeroconf-engine", "zeroconf-serve", "zeroconf-simd"];

/// How many lines above an `unsafe` token a SAFETY comment may end and
/// still count as adjacent (attributes or a signature may intervene).
const SAFETY_WINDOW: u32 = 4;

/// A crate-root file (`src/lib.rs` or `src/main.rs`) and the crate it
/// roots, for the header check.
#[derive(Debug, Clone)]
pub struct CrateRoot {
    pub crate_name: String,
    pub path: String,
}

/// Runs the keyword-level checks (allowlist + SAFETY adjacency) over the
/// scanned sources.
pub fn check_sources(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        let allowlisted = UNSAFE_ALLOWED.contains(&file.path.as_str());
        for token in &file.tokens {
            if token.kind != TokenKind::Ident || token.text != "unsafe" {
                continue;
            }
            if !allowlisted {
                findings.push(Finding::deny(
                    "unsafe-allowlist",
                    &file.path,
                    token.line,
                    format!(
                        "`unsafe` is only permitted in {}; move this code or extend \
                         the audit allowlist and the DESIGN.md unsafe inventory",
                        UNSAFE_ALLOWED.join(", ")
                    ),
                ));
                continue;
            }
            if !super::has_adjacent_marker(file, token.line, &["SAFETY", "# Safety"], SAFETY_WINDOW)
            {
                findings.push(Finding::deny(
                    "safety-comment",
                    &file.path,
                    token.line,
                    "`unsafe` without an adjacent `// SAFETY:` comment (or `# Safety` \
                     doc section) stating the invariant it relies on"
                        .to_owned(),
                ));
            }
        }
    }
    findings
}

/// Runs the crate-header check: `forbid(unsafe_code)` everywhere except
/// the unsafe-bearing crates, which need `deny(unsafe_op_in_unsafe_fn)`
/// instead.
pub fn check_crate_roots(roots: &[CrateRoot], files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for root in roots {
        let Some(file) = files.iter().find(|f| f.path == root.path) else {
            findings.push(Finding::deny(
                "unsafe-header",
                &root.path,
                0,
                format!("crate root of {} was not scanned", root.crate_name),
            ));
            continue;
        };
        let attrs = inner_lint_attributes(file);
        let has = |attr: &str, lint: &str| {
            attrs
                .iter()
                .any(|(a, lints)| a == attr && lints.iter().any(|l| l == lint))
        };
        if UNSAFE_CRATES.contains(&root.crate_name.as_str()) {
            if !has("deny", "unsafe_op_in_unsafe_fn") {
                findings.push(Finding::deny(
                    "unsafe-header",
                    &root.path,
                    1,
                    format!(
                        "{} is an unsafe-bearing crate and must carry \
                         `#![deny(unsafe_op_in_unsafe_fn)]`",
                        root.crate_name
                    ),
                ));
            }
            if has("forbid", "unsafe_code") {
                findings.push(Finding::deny(
                    "unsafe-header",
                    &root.path,
                    1,
                    format!(
                        "{} carries `#![forbid(unsafe_code)]` but is a designated \
                         unsafe-bearing crate — its unsafe modules would not compile",
                        root.crate_name
                    ),
                ));
            }
        } else if !has("forbid", "unsafe_code") {
            findings.push(Finding::deny(
                "unsafe-header",
                &root.path,
                1,
                format!(
                    "{} must carry `#![forbid(unsafe_code)]` (only {} may hold \
                     unsafe code)",
                    root.crate_name,
                    UNSAFE_CRATES.join(" and ")
                ),
            ));
        }
    }
    findings
}

/// The crate-level lint attributes `#![attr(lint, …)]` of a file, as
/// `(attr, lints)` pairs — e.g. `("forbid", ["unsafe_code"])`.
fn inner_lint_attributes(file: &ScannedFile) -> Vec<(String, Vec<String>)> {
    let toks = file.code_tokens();
    let mut attrs = Vec::new();
    let mut i = 0;
    while i + 3 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "!" && toks[i + 2].text == "[" {
            let name = toks[i + 3].text.clone();
            let mut lints = Vec::new();
            let mut depth = 1i64;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if toks[j].kind == TokenKind::Ident && j > i + 3 {
                            lints.push(toks[j].text.clone());
                        }
                    }
                }
                j += 1;
            }
            attrs.push((name, lints));
            i = j;
        } else {
            i += 1;
        }
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(path, src)
    }

    #[test]
    fn unsafe_outside_the_allowlist_is_denied() {
        let files = vec![scanned(
            "crates/sim/src/events.rs",
            "fn f() { unsafe { fast_path() } }\n",
        )];
        let findings = check_sources(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-allowlist");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unsafe_in_an_allowlisted_module_needs_a_safety_comment() {
        let bare = scanned(
            "crates/engine/src/pool.rs",
            "fn f() {\n    unsafe { write() }\n}\n",
        );
        let findings = check_sources(&[bare]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "safety-comment");

        let justified = scanned(
            "crates/engine/src/pool.rs",
            "fn f() {\n    // SAFETY: the cursor hands out disjoint ranges.\n    unsafe { write() }\n}\n",
        );
        assert!(check_sources(&[justified]).is_empty());
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fns() {
        let file = scanned(
            "crates/engine/src/cache.rs",
            "/// Maps the file.\n///\n/// # Safety\n///\n/// Caller must keep `fd` open.\nunsafe fn map_it() {}\n",
        );
        assert!(check_sources(&[file]).is_empty());
    }

    #[test]
    fn a_distant_safety_comment_does_not_count() {
        let file = scanned(
            "crates/engine/src/pool.rs",
            "// SAFETY: stale justification far above.\n\n\n\n\n\n\nfn f() { unsafe { w() } }\n",
        );
        let findings = check_sources(&[file]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "safety-comment");
    }

    #[test]
    fn the_word_unsafe_in_strings_and_comments_is_ignored() {
        let file = scanned(
            "crates/sim/src/events.rs",
            "// this is unsafe to do\nfn f() { let s = \"unsafe\"; }\n",
        );
        assert!(check_sources(&[file]).is_empty());
    }

    #[test]
    fn crate_roots_must_forbid_unsafe_code() {
        let roots = vec![CrateRoot {
            crate_name: "zeroconf-sim".to_owned(),
            path: "crates/sim/src/lib.rs".to_owned(),
        }];
        let missing = vec![scanned("crates/sim/src/lib.rs", "//! Sim crate.\n")];
        let findings = check_crate_roots(&roots, &missing);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unsafe-header");

        let present = vec![scanned(
            "crates/sim/src/lib.rs",
            "//! Sim crate.\n#![forbid(unsafe_code)]\n",
        )];
        assert!(check_crate_roots(&roots, &present).is_empty());
    }

    #[test]
    fn unsafe_crates_must_deny_unsafe_op_in_unsafe_fn_not_forbid_unsafe() {
        for (crate_name, path) in [
            ("zeroconf-engine", "crates/engine/src/lib.rs"),
            ("zeroconf-serve", "crates/serve/src/lib.rs"),
            ("zeroconf-simd", "crates/simd/src/lib.rs"),
        ] {
            assert!(UNSAFE_CRATES.contains(&crate_name));
            let roots = vec![CrateRoot {
                crate_name: crate_name.to_owned(),
                path: path.to_owned(),
            }];
            let wrong = vec![scanned(path, "#![forbid(unsafe_code)]\n")];
            let findings = check_crate_roots(&roots, &wrong);
            assert_eq!(findings.len(), 2, "missing deny + forbidden forbid");

            let right = vec![scanned(path, "#![deny(unsafe_op_in_unsafe_fn)]\n")];
            assert!(check_crate_roots(&roots, &right).is_empty());
        }
    }
}
