//! Rule 4 — offline `Cargo.lock` dependency audit.
//!
//! The workspace builds fully offline against vendored, path-only
//! crates; the lockfile is where a stray external dependency or a
//! version split would first become visible. Parsed entirely offline
//! (the lockfile's `[[package]]` blocks are a flat `key = "value"`
//! format — no TOML library needed), the rule denies:
//!
//! - **duplicate versions**: the same package name locked at more than
//!   one version (a dependency split — two copies compiled in);
//! - **non-vendored sources**: any package carrying a `source` key.
//!   Path dependencies have none; a registry or git source means the
//!   build is no longer hermetic;
//! - **manifest drift** ([`check_manifest`]): the lockfile's package set
//!   must match the reviewed list in `crates/audit/deps-manifest.txt`
//!   (`name version` per line, `#` comments). A package in the lock but
//!   not the manifest is an unreviewed dependency; a manifest entry with
//!   no lock package is stale; a version difference is an unreviewed
//!   bump. Growing the workspace therefore always carries a visible,
//!   reviewable diff to the manifest.

use crate::report::Finding;

/// The lockfile's workspace-relative path (the finding anchor).
pub const LOCKFILE_PATH: &str = "Cargo.lock";

/// The reviewed dependency manifest's workspace-relative path.
pub const MANIFEST_PATH: &str = "crates/audit/deps-manifest.txt";

#[derive(Debug, Default)]
struct Package {
    name: String,
    version: String,
    source: Option<String>,
    line: u32,
}

fn parse_packages(lock_text: &str) -> Vec<Package> {
    let mut packages: Vec<Package> = Vec::new();
    let mut current: Option<Package> = None;
    for (index, raw) in lock_text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let line = raw.trim();
        if line == "[[package]]" {
            if let Some(done) = current.take() {
                packages.push(done);
            }
            current = Some(Package {
                line: line_no,
                ..Package::default()
            });
        } else if line.starts_with('[') {
            // Some other table ([metadata], …) ends the package block.
            if let Some(done) = current.take() {
                packages.push(done);
            }
        } else if let Some(package) = current.as_mut() {
            if let Some((key, value)) = parse_kv(line) {
                match key {
                    "name" => package.name = value.to_owned(),
                    "version" => package.version = value.to_owned(),
                    "source" => package.source = Some(value.to_owned()),
                    _ => {}
                }
            }
        }
    }
    if let Some(done) = current.take() {
        packages.push(done);
    }
    packages
}

pub fn check(lock_text: &str) -> Vec<Finding> {
    let packages = parse_packages(lock_text);
    let mut findings = Vec::new();
    for package in &packages {
        if let Some(source) = &package.source {
            findings.push(Finding::deny(
                "lockfile",
                LOCKFILE_PATH,
                package.line,
                format!(
                    "package `{} {}` resolves to non-vendored source `{source}` — the \
                     workspace builds offline from path dependencies only",
                    package.name, package.version
                ),
            ));
        }
    }
    let mut names: Vec<&str> = packages.iter().map(|p| p.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        let mut versions: Vec<&Package> = packages.iter().filter(|p| p.name == name).collect();
        versions.sort_by(|a, b| a.version.cmp(&b.version));
        if versions.len() > 1 {
            let listed: Vec<&str> = versions.iter().map(|p| p.version.as_str()).collect();
            findings.push(Finding::deny(
                "lockfile",
                LOCKFILE_PATH,
                versions[0].line,
                format!(
                    "package `{name}` is locked at {} versions ({}) — a dependency \
                     split compiles multiple copies",
                    versions.len(),
                    listed.join(", ")
                ),
            ));
        }
    }
    findings
}

/// Diffs the lockfile's package set against the reviewed dependency
/// manifest (`name version` per line, `#`-comments and blanks ignored).
pub fn check_manifest(lock_text: &str, manifest_text: &str) -> Vec<Finding> {
    let packages = parse_packages(lock_text);
    let mut findings = Vec::new();

    // `(name, version, manifest line)` of every reviewed entry.
    let mut reviewed: Vec<(&str, &str, u32)> = Vec::new();
    for (index, raw) in manifest_text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(' ') {
            Some((name, version)) if !version.trim().is_empty() => {
                reviewed.push((name.trim(), version.trim(), line_no));
            }
            _ => findings.push(Finding::deny(
                "lockfile",
                MANIFEST_PATH,
                line_no,
                format!("malformed manifest line {line:?} — expected `name version`"),
            )),
        }
    }

    for package in &packages {
        match reviewed.iter().find(|(name, _, _)| *name == package.name) {
            None => findings.push(Finding::deny(
                "lockfile",
                LOCKFILE_PATH,
                package.line,
                format!(
                    "package `{} {}` is not in the reviewed dependency manifest — \
                     add it to {MANIFEST_PATH} as part of the change that introduces it",
                    package.name, package.version
                ),
            )),
            Some((_, version, _)) if *version != package.version => {
                findings.push(Finding::deny(
                    "lockfile",
                    LOCKFILE_PATH,
                    package.line,
                    format!(
                        "package `{}` is locked at {} but reviewed at {version} — \
                         update {MANIFEST_PATH} alongside the version bump",
                        package.name, package.version
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for &(name, version, line) in &reviewed {
        if !packages.iter().any(|p| p.name == name) {
            findings.push(Finding::deny(
                "lockfile",
                MANIFEST_PATH,
                line,
                format!(
                    "manifest entry `{name} {version}` has no package in Cargo.lock — \
                     remove the stale line"
                ),
            ));
        }
    }
    findings
}

/// Parses one `key = "value"` lockfile line.
fn parse_kv(line: &str) -> Option<(&str, &str)> {
    let (key, value) = line.split_once('=')?;
    let value = value.trim().strip_prefix('"')?.strip_suffix('"')?;
    Some((key.trim(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "\
# This file is automatically @generated by Cargo.\n\
version = 4\n\
\n\
[[package]]\n\
name = \"zeroconf-engine\"\n\
version = \"0.1.0\"\n\
dependencies = [\n\
 \"zeroconf-cost\",\n\
]\n\
\n\
[[package]]\n\
name = \"zeroconf-cost\"\n\
version = \"0.1.0\"\n";

    #[test]
    fn a_vendored_path_only_lockfile_is_clean() {
        assert!(check(CLEAN).is_empty());
    }

    #[test]
    fn duplicate_versions_are_denied() {
        let lock = format!("{CLEAN}\n[[package]]\nname = \"zeroconf-cost\"\nversion = \"0.2.0\"\n");
        let findings = check(&lock);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("zeroconf-cost"));
        assert!(findings[0].message.contains("0.1.0, 0.2.0"));
    }

    #[test]
    fn registry_sources_are_denied() {
        let lock = format!(
            "{CLEAN}\n[[package]]\nname = \"serde\"\nversion = \"1.0.200\"\n\
             source = \"registry+https://github.com/rust-lang/crates.io-index\"\n"
        );
        let findings = check(&lock);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("non-vendored"));
        assert!(findings[0].message.contains("serde"));
    }

    #[test]
    fn git_sources_are_denied_too() {
        let lock = "\
[[package]]\nname = \"dep\"\nversion = \"0.1.0\"\n\
source = \"git+https://example.invalid/dep.git\"\n";
        assert_eq!(check(lock).len(), 1);
    }

    #[test]
    fn trailing_tables_do_not_leak_into_packages() {
        let lock = format!("{CLEAN}\n[metadata]\nsource = \"bogus\"\n");
        assert!(check(&lock).is_empty());
    }

    const MANIFEST: &str = "\
# reviewed dependencies\n\
zeroconf-engine 0.1.0\n\
zeroconf-cost 0.1.0\n";

    #[test]
    fn a_matching_manifest_is_clean() {
        assert!(check_manifest(CLEAN, MANIFEST).is_empty());
    }

    #[test]
    fn an_unreviewed_package_is_denied() {
        let lock = format!("{CLEAN}\n[[package]]\nname = \"serde\"\nversion = \"1.0.200\"\n");
        let findings = check_manifest(&lock, MANIFEST);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, LOCKFILE_PATH);
        assert!(findings[0].message.contains("serde"));
        assert!(findings[0].message.contains("not in the reviewed"));
    }

    #[test]
    fn an_unreviewed_version_bump_is_denied() {
        let manifest = "zeroconf-engine 0.1.0\nzeroconf-cost 0.2.0\n";
        let findings = check_manifest(CLEAN, manifest);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("zeroconf-cost"));
        assert!(findings[0].message.contains("locked at 0.1.0"));
        assert!(findings[0].message.contains("reviewed at 0.2.0"));
    }

    #[test]
    fn a_stale_manifest_entry_is_denied() {
        let manifest = format!("{MANIFEST}zeroconf-gone 0.1.0\n");
        let findings = check_manifest(CLEAN, &manifest);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, MANIFEST_PATH);
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].message.contains("stale"));
    }

    #[test]
    fn a_malformed_manifest_line_is_denied() {
        let manifest = format!("{MANIFEST}just-a-name\n");
        let findings = check_manifest(CLEAN, &manifest);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("malformed"));
    }
}
