//! Rule 2 — panic-freedom of library code.
//!
//! Library code (everything under a crate's `src/`, outside
//! `#[cfg(test)]`-gated items) must not contain `.unwrap()`, `.expect(…)`,
//! `panic!`, `todo!` or `unimplemented!`. The engine serves long-lived
//! sessions; a panic in a worker poisons the job it was evaluating, and a
//! panic in a library consumer's thread is their outage, not ours — error
//! paths must be `Result`s.
//!
//! `expect` alone is allowlistable: some expects assert genuinely
//! infallible invariants (a `chunks_exact(8)` chunk *is* 8 bytes long)
//! where a `Result` path would be noise. The allowlist lives at
//! [`ALLOWLIST_PATH`], one entry per line:
//!
//! ```text
//! <workspace-relative path> | <expect message, verbatim> | <justification>
//! ```
//!
//! Entries are matched on `(path, message)`, so moving or rewording an
//! expect invalidates its entry; `unwrap` carries no message and is
//! therefore never allowlistable. Unused entries are findings themselves
//! (warnings — fatal under `--deny-warnings`), keeping the list from
//! accreting stale exemptions.

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// Workspace-relative path of the expect allowlist.
pub const ALLOWLIST_PATH: &str = "crates/audit/no-panic-allowlist.txt";

/// The banned macro names (each a finding when invoked as `name!`).
const BANNED_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub path: String,
    pub message: String,
    pub justification: String,
    /// 1-based line in the allowlist file, for findings about the entry.
    pub line: u32,
}

/// Parses the allowlist text. Malformed lines become findings rather
/// than being silently dropped.
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        match fields.as_slice() {
            [path, message, justification] if !justification.is_empty() => {
                entries.push(AllowEntry {
                    path: (*path).to_owned(),
                    message: (*message).to_owned(),
                    justification: (*justification).to_owned(),
                    line: line_no,
                });
            }
            [_, _, _] => findings.push(Finding::deny(
                "no-panic",
                ALLOWLIST_PATH,
                line_no,
                "allowlist entry has an empty justification — say why the expect \
                 is infallible or remove it"
                    .to_owned(),
            )),
            _ => findings.push(Finding::deny(
                "no-panic",
                ALLOWLIST_PATH,
                line_no,
                "malformed allowlist entry; expected `path | expect message | justification`"
                    .to_owned(),
            )),
        }
    }
    (entries, findings)
}

/// Runs the no-panic rule over the scanned sources against `allowlist`.
pub fn check(files: &[ScannedFile], allowlist: &[AllowEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used = vec![false; allowlist.len()];
    for file in files {
        let toks = file.code_tokens();
        for i in 0..toks.len() {
            let t = toks[i];
            if t.kind != TokenKind::Ident || file.in_test_region(t.line) {
                continue;
            }
            // `name!(…)` macro invocations.
            if BANNED_MACROS.contains(&t.text.as_str())
                && toks.get(i + 1).is_some_and(|n| n.text == "!")
            {
                findings.push(Finding::deny(
                    "no-panic",
                    &file.path,
                    t.line,
                    format!(
                        "`{}!` in library code — return an error instead of aborting \
                         the caller's thread",
                        t.text
                    ),
                ));
                continue;
            }
            // `.unwrap(` / `.expect(` method calls.
            let is_call =
                i > 0 && toks[i - 1].text == "." && toks.get(i + 1).is_some_and(|n| n.text == "(");
            if !is_call {
                continue;
            }
            match t.text.as_str() {
                "unwrap" => findings.push(Finding::deny(
                    "no-panic",
                    &file.path,
                    t.line,
                    "`.unwrap()` in library code — handle the failure or use `.expect(…)` \
                     with an allowlisted justification"
                        .to_owned(),
                )),
                "expect" => {
                    let message = toks
                        .get(i + 2)
                        .filter(|m| m.kind == TokenKind::Literal)
                        .map(|m| m.text.trim_matches('"').to_owned());
                    let allowed = message.as_ref().and_then(|msg| {
                        allowlist
                            .iter()
                            .position(|e| e.path == file.path && &e.message == msg)
                    });
                    match allowed {
                        Some(index) => used[index] = true,
                        None => findings.push(Finding::deny(
                            "no-panic",
                            &file.path,
                            t.line,
                            format!(
                                "`.expect({})` in library code without an allowlist entry — \
                                 return an error, or add `{} | {} | <why it is infallible>` \
                                 to {}",
                                message.as_deref().unwrap_or("…"),
                                file.path,
                                message.as_deref().unwrap_or("<literal message>"),
                                ALLOWLIST_PATH
                            ),
                        )),
                    }
                }
                _ => {}
            }
        }
    }
    for (entry, used) in allowlist.iter().zip(used) {
        if !used {
            findings.push(Finding::warn(
                "no-panic",
                ALLOWLIST_PATH,
                entry.line,
                format!(
                    "unused allowlist entry for {} (`{}`) — the expect is gone; remove \
                     the entry",
                    entry.path, entry.message
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<ScannedFile> {
        vec![ScannedFile::new("crates/sim/src/stats.rs", src)]
    }

    #[test]
    fn unwrap_in_library_code_is_denied() {
        let findings = check(&lib("fn f() { x.unwrap(); }\n"), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unwrap"));
    }

    #[test]
    fn unwrap_inside_cfg_test_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn unwrap_in_strings_and_comments_is_not_a_call() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // .unwrap() here too\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { m.lock().unwrap_or_else(|e| e.into_inner()); }\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn banned_macros_are_denied_but_assert_is_not() {
        let src = "fn f() { assert!(ok); panic!(\"boom\"); }\nfn g() { todo!() }\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("panic!"));
        assert!(findings[1].message.contains("todo!"));
    }

    #[test]
    fn should_panic_attribute_is_not_a_panic_call() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[should_panic(expected = \"x\")]\n    fn t() {}\n}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn expect_needs_a_matching_allowlist_entry() {
        let src =
            "fn f() { samples.sort_by(|a, b| a.partial_cmp(b).expect(\"finite samples\")); }\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("allowlist"));

        let (entries, parse_findings) = parse_allowlist(
            "# comment\n\
             crates/sim/src/stats.rs | finite samples | inputs validated finite at construction\n",
        );
        assert!(parse_findings.is_empty());
        assert!(check(&lib(src), &entries).is_empty());
    }

    #[test]
    fn allowlist_match_is_per_path_and_message() {
        let (entries, _) =
            parse_allowlist("crates/sim/src/other.rs | finite samples | justified\n");
        let src = "fn f() { x.expect(\"finite samples\"); }\n";
        let findings = check(&lib(src), &entries);
        // Wrong path: the expect is denied AND the entry is unused.
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("unused")));
    }

    #[test]
    fn non_literal_expect_messages_cannot_be_allowlisted() {
        let (entries, _) = parse_allowlist("crates/sim/src/stats.rs | msg | justified\n");
        let src = "fn f() { x.expect(&format!(\"msg {y}\")); }\n";
        let findings = check(&lib(src), &entries);
        assert!(findings.iter().any(|f| f.rule == "no-panic" && f.line == 1));
    }

    #[test]
    fn malformed_and_unjustified_entries_are_findings() {
        let (entries, findings) = parse_allowlist("just-one-field\na | b |\n");
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 2);
        assert!(findings[0].message.contains("malformed"));
        assert!(findings[1].message.contains("empty justification"));
    }
}
