//! The audit rule set, one module per rule.
//!
//! Each rule is a pure function from scanned input to a list of
//! [`crate::report::Finding`]s, so the unit tests seed violations in
//! fixture strings and assert they are caught without touching the real
//! tree; the workspace walk in [`crate::audit_workspace`] is the only
//! place the filesystem is read.

pub mod const_drift;
pub mod lockfile;
pub mod no_panic;
pub mod unsafe_code;
