//! The audit rule set, one module per rule.
//!
//! Each rule is a pure function from scanned input to a list of
//! [`crate::report::Finding`]s, so the unit tests seed violations in
//! fixture strings and assert they are caught without touching the real
//! tree; the workspace walk in [`crate::audit_workspace`] is the only
//! place the filesystem is read.

use crate::scan::ScannedFile;

pub mod atomic_ordering;
pub mod const_drift;
pub mod ffi_surface;
pub mod lock_order;
pub mod lockfile;
pub mod no_panic;
pub mod reactor_blocking;
pub mod unsafe_code;

/// Every rule code a [`crate::report::Finding`] may carry, sorted. The
/// `--json` schema exposes these verbatim, so tooling keys on them; the
/// CLI integration test (`tests/cli.rs`) and the const-drift pin hold
/// the set stable.
pub const RULE_CODES: &[&str] = &[
    "atomic-ordering",
    "const-drift",
    "ffi-surface",
    "lock-order",
    "lockfile",
    "no-panic",
    "reactor-blocking",
    "safety-comment",
    "unsafe-allowlist",
    "unsafe-header",
];

/// Whether a comment block carrying one of `markers` ends on `line` or
/// within `window` lines above it.
///
/// Consecutive `//` lines are one logical block: the marker is on the
/// first line but the justification may run on for several more, and it
/// is the *block's* end that must sit next to the checked token — the
/// same adjacency contract for `// SAFETY:` and `// ORDERING:`.
pub(crate) fn has_adjacent_marker(
    file: &ScannedFile,
    line: u32,
    markers: &[&str],
    window: u32,
) -> bool {
    let mut block_end = 0u32;
    let mut block_has_marker = false;
    for t in &file.tokens {
        if t.kind != crate::scan::TokenKind::Comment {
            continue;
        }
        if t.line > block_end + 1 {
            // A gap: this comment starts a new block.
            block_has_marker = false;
        }
        block_has_marker |= markers.iter().any(|m| t.text.contains(m));
        block_end = t.end_line;
        if block_has_marker && block_end <= line && line - block_end <= window {
            return true;
        }
    }
    false
}
