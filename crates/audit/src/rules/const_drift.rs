//! Rule 3 — cross-boundary constants have exactly one source of truth.
//!
//! Three formats cross process (and machine) boundaries: the JSON-lines
//! protocol version (`"v":1`, [`zeroconf_engine::wire::WIRE_VERSION`]),
//! the π-table spill header (`ZCPITAB2` magic + 32-byte header,
//! `SPILL_MAGIC` / `SPILL_HEADER_LEN` in `engine/cache.rs`), and the
//! `BENCH_engine.json` row schema (row labels and field names in
//! `bench/schema.rs`, keyed on by trend tooling). A literal copy of any
//! of these that drifts from the constant corrupts data silently — a
//! reader accepts a header the writer never produced, a response claims
//! a version the codec does not speak, a renamed bench row vanishes from
//! a trend chart. This rule pins each constant to one definition site
//! and bans literal copies elsewhere:
//!
//! - the named constants must each be defined exactly once, in their
//!   designated file;
//! - each pinned literal (the `ZCPITAB` magic, the fixed bench row
//!   labels, the distinctive bench field names) may appear in exactly
//!   one non-test string literal — its own definition;
//! - no non-test string literal may hardcode a `"v":<digit>` version —
//!   JSON templates must interpolate `WIRE_VERSION`.
//!
//! Test code is exempt: fixture literals that deliberately spell out the
//! bytes are how drift *tests* work (see `crates/engine/tests/
//! spill_format.rs`, this rule's runtime twin).

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// The single-source-of-truth constants: `(name, defining file)`.
pub const PINNED_CONSTS: &[(&str, &str)] = &[
    ("RULE_CODES", "crates/audit/src/rules/mod.rs"),
    ("SPILL_MAGIC", "crates/engine/src/cache.rs"),
    ("SPILL_HEADER_LEN", "crates/engine/src/cache.rs"),
    ("WIRE_VERSION", "crates/engine/src/wire.rs"),
    ("VERB_CALIBRATE", "crates/engine/src/wire.rs"),
    ("VERB_FRONTIER", "crates/engine/src/wire.rs"),
    ("ROW_KERNEL_BLOCK", BENCH_SCHEMA),
    ("ROW_KERNEL_SINGLE_PASS", BENCH_SCHEMA),
    ("ROW_KERNEL_LEGACY", BENCH_SCHEMA),
    ("ROW_KERNEL_BLOCK_SIMD", BENCH_SCHEMA),
    ("ROW_ENGINE_WARM_MMAP", BENCH_SCHEMA),
    ("ROW_ENGINE_WARM_MMAP_POPULATE", BENCH_SCHEMA),
    ("ROW_FRONTIER_WARM", BENCH_SCHEMA),
    ("ROW_FRONTIER_RECOMPUTE", BENCH_SCHEMA),
    ("ROW_CALIBRATE_WARM", BENCH_SCHEMA),
    ("ROW_STEM_ENGINE", BENCH_SCHEMA),
    ("ROW_STEM_SESSION", BENCH_SCHEMA),
    ("ROW_STEM_SERVE", BENCH_SCHEMA),
    ("ROW_SERVE_OVERLOAD", BENCH_SCHEMA),
    ("FIELD_ID", BENCH_SCHEMA),
    ("FIELD_CACHE", BENCH_SCHEMA),
    ("FIELD_THREADS", BENCH_SCHEMA),
    ("FIELD_N_MAX", BENCH_SCHEMA),
    ("FIELD_R_POINTS", BENCH_SCHEMA),
    ("FIELD_MEDIAN_NS", BENCH_SCHEMA),
    ("FIELD_MIN_NS", BENCH_SCHEMA),
    ("FIELD_MEAN_NS", BENCH_SCHEMA),
    ("FIELD_CELLS_PER_SEC", BENCH_SCHEMA),
    ("FIELD_SAMPLES", BENCH_SCHEMA),
    ("FIELD_ITERS_PER_SAMPLE", BENCH_SCHEMA),
    ("FIELD_NOTE", BENCH_SCHEMA),
];

/// Home of the `BENCH_engine.json` row-schema constants.
pub const BENCH_SCHEMA: &str = "crates/bench/src/schema.rs";

/// Literals that may appear in exactly one non-test string literal —
/// their own definition: `(needle, const name, defining file)`. Only
/// needles distinctive enough not to occur in unrelated literals belong
/// here (`"id"` would match every wire template; `"cells_per_sec"`
/// matches nothing else).
pub const PINNED_LITERALS: &[(&str, &str, &str)] = &[
    (MAGIC_PREFIX, "SPILL_MAGIC", "crates/engine/src/cache.rs"),
    ("kernel/block/columns", "ROW_KERNEL_BLOCK", BENCH_SCHEMA),
    (
        "kernel/single-pass/columns",
        "ROW_KERNEL_SINGLE_PASS",
        BENCH_SCHEMA,
    ),
    (
        "kernel/legacy-per-n/columns",
        "ROW_KERNEL_LEGACY",
        BENCH_SCHEMA,
    ),
    ("kernel/block/simd", "ROW_KERNEL_BLOCK_SIMD", BENCH_SCHEMA),
    (
        "engine/warm-mmap/threads=1",
        "ROW_ENGINE_WARM_MMAP",
        BENCH_SCHEMA,
    ),
    (
        "engine/warm-mmap/populate",
        "ROW_ENGINE_WARM_MMAP_POPULATE",
        BENCH_SCHEMA,
    ),
    ("engine/frontier/warm", "ROW_FRONTIER_WARM", BENCH_SCHEMA),
    (
        "engine/frontier/per-point-recompute",
        "ROW_FRONTIER_RECOMPUTE",
        BENCH_SCHEMA,
    ),
    ("engine/calibrate/warm", "ROW_CALIBRATE_WARM", BENCH_SCHEMA),
    // `engine/serve` itself is not pinnable: the stem is a substring of
    // the overload label's definition, so a contains() scan would count
    // the same schema line twice. The overload prefix is distinctive.
    ("engine/serve/overload", "ROW_SERVE_OVERLOAD", BENCH_SCHEMA),
    ("cells_per_sec", "FIELD_CELLS_PER_SEC", BENCH_SCHEMA),
    ("iters_per_sample", "FIELD_ITERS_PER_SAMPLE", BENCH_SCHEMA),
    ("median_ns", "FIELD_MEDIAN_NS", BENCH_SCHEMA),
];

/// The spill magic prefix that may appear in exactly one non-test literal.
pub const MAGIC_PREFIX: &str = "ZCPITAB";

/// The audit's own sources are exempt from the literal scans: the rule
/// definitions (this file's [`MAGIC_PREFIX`] among them) necessarily
/// name the bytes they hunt for.
fn self_exempt(path: &str) -> bool {
    path.starts_with("crates/audit/")
}

pub fn check(files: &[ScannedFile]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Pinned literals: exactly one occurrence each, in the defining file.
    for &(needle, const_name, home) in PINNED_LITERALS {
        let mut sites: Vec<(&str, u32)> = Vec::new();
        for file in files {
            if self_exempt(&file.path) {
                continue;
            }
            for t in &file.tokens {
                if t.kind == TokenKind::Literal
                    && t.text.contains(needle)
                    && !file.in_test_region(t.line)
                {
                    sites.push((&file.path, t.line));
                }
            }
        }
        match sites.as_slice() {
            [] => findings.push(Finding::deny(
                "const-drift",
                home,
                0,
                format!("the `{needle}…` literal (const {const_name}) is missing"),
            )),
            [(path, line)] if *path != home => findings.push(Finding::deny(
                "const-drift",
                path,
                *line,
                format!("the `{needle}…` literal belongs in {home} alone"),
            )),
            [_] => {}
            sites => {
                for &(path, line) in sites {
                    if !(path == home && sites.iter().filter(|(p, _)| *p == home).count() == 1) {
                        findings.push(Finding::deny(
                            "const-drift",
                            path,
                            line,
                            format!(
                                "duplicate `{needle}…` literal — reference \
                                 `{const_name}` from {home} instead"
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Pinned constants: defined exactly once, in the designated file.
    for &(name, home) in PINNED_CONSTS {
        let mut sites: Vec<(&str, u32)> = Vec::new();
        for file in files {
            let toks = file.code_tokens();
            for i in 1..toks.len() {
                if toks[i].kind == TokenKind::Ident
                    && toks[i].text == name
                    && toks[i - 1].text == "const"
                    && !file.in_test_region(toks[i].line)
                {
                    sites.push((&file.path, toks[i].line));
                }
            }
        }
        match sites.as_slice() {
            [] => findings.push(Finding::deny(
                "const-drift",
                home,
                0,
                format!("`const {name}` is missing — it must be defined (once) in {home}"),
            )),
            [(path, line)] if *path != home => findings.push(Finding::deny(
                "const-drift",
                path,
                *line,
                format!("`const {name}` must live in {home}, its single source of truth"),
            )),
            [_] => {}
            sites => {
                for &(path, line) in sites.iter().filter(|(p, _)| *p != home) {
                    findings.push(Finding::deny(
                        "const-drift",
                        path,
                        line,
                        format!("`const {name}` redefined — the single source of truth is {home}"),
                    ));
                }
                let in_home = sites.iter().filter(|(p, _)| *p == home).count();
                if in_home > 1 {
                    for &(path, line) in sites.iter().filter(|(p, _)| *p == home).skip(1) {
                        findings.push(Finding::deny(
                            "const-drift",
                            path,
                            line,
                            format!("`const {name}` defined twice in its own module"),
                        ));
                    }
                }
            }
        }
    }

    // Hardcoded protocol versions in JSON templates.
    for file in files {
        if self_exempt(&file.path) {
            continue;
        }
        for t in &file.tokens {
            if t.kind != TokenKind::Literal || file.in_test_region(t.line) {
                continue;
            }
            if has_hardcoded_version(&t.text) {
                findings.push(Finding::deny(
                    "const-drift",
                    &file.path,
                    t.line,
                    "string literal hardcodes the wire version (`\"v\":<digit>`) — \
                     interpolate `WIRE_VERSION` instead"
                        .to_owned(),
                ));
            }
        }
    }

    findings
}

/// Whether a literal's raw source text contains `"v":` (escaped or raw)
/// followed directly by a digit.
fn has_hardcoded_version(raw: &str) -> bool {
    for marker in ["\\\"v\\\":", "\"v\":"] {
        let mut rest = raw;
        while let Some(at) = rest.find(marker) {
            let after = &rest[at + marker.len()..];
            if after.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
            rest = after;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal tree where every pinned constant is correctly defined.
    fn healthy() -> Vec<ScannedFile> {
        vec![
            ScannedFile::new(
                "crates/audit/src/rules/mod.rs",
                "pub const RULE_CODES: &[&str] = &[\"no-panic\"];\n",
            ),
            ScannedFile::new(
                "crates/engine/src/cache.rs",
                "pub const SPILL_MAGIC: &[u8; 8] = b\"ZCPITAB2\";\n\
                 pub const SPILL_HEADER_LEN: usize = 32;\n",
            ),
            ScannedFile::new(
                "crates/engine/src/wire.rs",
                "pub const WIRE_VERSION: u64 = 1;\n\
                 pub const VERB_CALIBRATE: &str = \"calibrate\";\n\
                 pub const VERB_FRONTIER: &str = \"frontier\";\n\
                 fn emit(out: &mut String) { out.push_str(&format!(\"{{\\\"v\\\":{WIRE_VERSION}}}\")); }\n",
            ),
            ScannedFile::new(
                BENCH_SCHEMA,
                "pub const ROW_FRONTIER_WARM: &str = \"engine/frontier/warm\";\n\
                 pub const ROW_FRONTIER_RECOMPUTE: &str = \"engine/frontier/per-point-recompute\";\n\
                 pub const ROW_CALIBRATE_WARM: &str = \"engine/calibrate/warm\";\n\
                 pub const ROW_KERNEL_BLOCK: &str = \"kernel/block/columns\";\n\
                 pub const ROW_KERNEL_SINGLE_PASS: &str = \"kernel/single-pass/columns\";\n\
                 pub const ROW_KERNEL_LEGACY: &str = \"kernel/legacy-per-n/columns\";\n\
                 pub const ROW_KERNEL_BLOCK_SIMD: &str = \"kernel/block/simd\";\n\
                 pub const ROW_ENGINE_WARM_MMAP: &str = \"engine/warm-mmap/threads=1\";\n\
                 pub const ROW_ENGINE_WARM_MMAP_POPULATE: &str = \"engine/warm-mmap/populate\";\n\
                 pub const ROW_STEM_ENGINE: &str = \"engine\";\n\
                 pub const ROW_STEM_SESSION: &str = \"engine/session\";\n\
                 pub const ROW_STEM_SERVE: &str = \"engine/serve\";\n\
                 pub const ROW_SERVE_OVERLOAD: &str = \"engine/serve/overload/max-conns\";\n\
                 pub const FIELD_ID: &str = \"id\";\n\
                 pub const FIELD_CACHE: &str = \"cache\";\n\
                 pub const FIELD_THREADS: &str = \"threads\";\n\
                 pub const FIELD_N_MAX: &str = \"n_max\";\n\
                 pub const FIELD_R_POINTS: &str = \"r_points\";\n\
                 pub const FIELD_MEDIAN_NS: &str = \"median_ns\";\n\
                 pub const FIELD_MIN_NS: &str = \"min_ns\";\n\
                 pub const FIELD_MEAN_NS: &str = \"mean_ns\";\n\
                 pub const FIELD_CELLS_PER_SEC: &str = \"cells_per_sec\";\n\
                 pub const FIELD_SAMPLES: &str = \"samples\";\n\
                 pub const FIELD_ITERS_PER_SAMPLE: &str = \"iters_per_sample\";\n\
                 pub const FIELD_NOTE: &str = \"note\";\n",
            ),
        ]
    }

    #[test]
    fn a_healthy_tree_is_clean() {
        assert!(check(&healthy()).is_empty());
    }

    #[test]
    fn a_second_magic_literal_is_denied() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/engine/src/pool.rs",
            "fn sniff(h: &[u8]) -> bool { h.starts_with(b\"ZCPITAB2\") }\n",
        ));
        let findings = check(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/engine/src/pool.rs");
        assert!(findings[0].message.contains("duplicate"));
    }

    #[test]
    fn magic_literals_in_test_modules_are_exempt() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/engine/src/other.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    const M: &[u8] = b\"ZCPITAB2\";\n}\n",
        ));
        assert!(check(&files).is_empty());
    }

    #[test]
    fn a_redefined_constant_is_denied() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/cli/src/lib.rs",
            "const WIRE_VERSION: u64 = 2;\n",
        ));
        let findings = check(&files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("redefined"));
        assert_eq!(findings[0].path, "crates/cli/src/lib.rs");
    }

    #[test]
    fn a_missing_constant_is_denied() {
        let files = vec![ScannedFile::new(
            "crates/engine/src/cache.rs",
            "pub const SPILL_MAGIC: &[u8; 8] = b\"ZCPITAB2\";\n",
        )];
        let findings = check(&files);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("SPILL_HEADER_LEN") && f.message.contains("missing")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("WIRE_VERSION") && f.message.contains("missing")));
    }

    #[test]
    fn a_stray_bench_row_label_literal_is_denied() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/cli/src/lib.rs",
            "fn trend(row: &str) -> bool { row == \"kernel/single-pass/columns\" }\n",
        ));
        let findings = check(&files);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/cli/src/lib.rs");
        assert!(findings[0].message.contains("ROW_KERNEL_SINGLE_PASS"));
    }

    #[test]
    fn a_stray_bench_field_name_literal_is_denied() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/plot/src/lib.rs",
            "fn key() -> &'static str { \"cells_per_sec\" }\n",
        ));
        let findings = check(&files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("FIELD_CELLS_PER_SEC"));
    }

    #[test]
    fn a_missing_bench_schema_names_every_lost_constant() {
        let mut files = healthy();
        files.retain(|f| f.path != BENCH_SCHEMA);
        let findings = check(&files);
        assert!(findings
            .iter()
            .any(|f| f.message.contains("ROW_ENGINE_WARM_MMAP") && f.message.contains("missing")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("FIELD_MEDIAN_NS") && f.message.contains("missing")));
        assert!(findings.iter().all(|f| f.path == BENCH_SCHEMA));
    }

    #[test]
    fn hardcoded_wire_versions_in_json_templates_are_denied() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/engine/src/pipeline.rs",
            "fn emit(out: &mut String) { out.push_str(\"{\\\"v\\\":1,\\\"id\\\":\\\"x\\\"}\"); }\n",
        ));
        let findings = check(&files);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("WIRE_VERSION"));
    }

    #[test]
    fn interpolated_wire_versions_pass() {
        // `"v":{WIRE_VERSION}` has `{`, not a digit, after the colon.
        assert!(!has_hardcoded_version("\"{\\\"v\\\":{WIRE_VERSION}}\""));
        assert!(has_hardcoded_version("\"{\\\"v\\\":1}\""));
        assert!(has_hardcoded_version("r#\"{\"v\":2}\"#"));
    }

    #[test]
    fn the_audit_crates_own_rule_sources_are_exempt() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/audit/src/rules/const_drift.rs",
            "pub const MAGIC_PREFIX: &str = \"ZCPITAB\";\n",
        ));
        assert!(check(&files).is_empty());
    }

    #[test]
    fn hardcoded_versions_in_test_fixtures_are_exempt() {
        let mut files = healthy();
        files.push(ScannedFile::new(
            "crates/engine/src/session.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    const REQ: &str = \"{\\\"v\\\":1}\";\n}\n",
        ));
        assert!(check(&files).is_empty());
    }
}
