//! Rule 7 — nothing reachable from the reactor event loop may block.
//!
//! The serve crate runs one event-loop thread per endpoint; every
//! connection's progress multiplexes through it. A single blocking call
//! — a parked mutex, a channel receive, a `thread::sleep` — stalls every
//! connection on that endpoint, and no tier-1 test notices because the
//! stall is load-dependent. This rule makes the no-blocking contract
//! static:
//!
//! - The call graph of the serve crate is extracted from the token
//!   stream (an identifier followed by `(` that names a function defined
//!   in `crates/serve/src/` is an edge — method and free-call forms
//!   alike, matched by name, the conservative union).
//! - From the pinned [`ENTRY_POINTS`] (the event loop itself and the
//!   per-connection callbacks it dispatches to), every reachable
//!   function body is scanned for the blocking denylist: `thread::sleep`,
//!   `.lock(…)`, Condvar `.wait(…)`/`.wait_timeout(…)`, channel
//!   `.recv(…)`/`.recv_timeout(…)`, `.join(…)`, and the blocking I/O
//!   helpers (`.read_to_end`, `.read_to_string`, `.read_exact`,
//!   `.read_line`, `.write_all`).
//! - Each hit must carry a justified allowlist entry
//!   ([`ALLOWLIST_PATH`]); unused entries warn (fatal under
//!   `--deny-warnings`).
//!
//! Calls that leave the serve crate (the engine's `poll_completions`,
//! `submit_work`, …) are out of this rule's scope; the cross-crate
//! contract — completions are *polled*, admission is budget-gated so the
//! pipeline gate never parks the reactor — is documented in DESIGN.md
//! ("Concurrency invariants") and held by the engine's own audit rules.
//!
//! Allowlist format, one justified site per line:
//!
//! ```text
//! <workspace-relative path> | <function> | <operation> | <why it cannot stall the loop>
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// Workspace-relative path of the justified-blocking allowlist.
pub const ALLOWLIST_PATH: &str = "crates/audit/reactor-allowlist.txt";

/// The directory whose functions form the reachability universe.
pub const SERVE_PREFIX: &str = "crates/serve/src/";

/// The event-loop entry points: `(file, function)` pairs the reactor
/// thread runs directly. `run` is the loop itself; the `conn.rs`
/// callbacks are what it dispatches per readiness event; the reactor
/// wakeup/poll shims run inline in the loop.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/serve/src/listener.rs", "run"),
    ("crates/serve/src/conn.rs", "on_readable"),
    ("crates/serve/src/conn.rs", "on_writable"),
    ("crates/serve/src/conn.rs", "on_hangup"),
    ("crates/serve/src/conn.rs", "pump"),
    ("crates/serve/src/conn.rs", "begin_drain"),
    ("crates/serve/src/conn.rs", "close"),
    ("crates/serve/src/reactor.rs", "wait"),
    ("crates/serve/src/reactor.rs", "notify"),
    ("crates/serve/src/reactor.rs", "drain"),
];

/// Method names whose call parks or loops the calling thread.
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "wait",
    "wait_timeout",
    "recv",
    "recv_timeout",
    "join",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "read_line",
    "write_all",
];

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub path: String,
    pub function: String,
    pub operation: String,
    pub justification: String,
    /// 1-based line in the allowlist file.
    pub line: u32,
}

/// Parses the allowlist text. Malformed lines become findings.
pub fn parse_allowlist(text: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut findings = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        match fields.as_slice() {
            [path, function, operation, justification] if !justification.is_empty() => {
                entries.push(AllowEntry {
                    path: (*path).to_owned(),
                    function: (*function).to_owned(),
                    operation: (*operation).to_owned(),
                    justification: (*justification).to_owned(),
                    line: line_no,
                });
            }
            _ => findings.push(Finding::deny(
                "reactor-blocking",
                ALLOWLIST_PATH,
                line_no,
                "malformed reactor allowlist entry; expected \
                 `path | function | operation | why it cannot stall the loop`"
                    .to_owned(),
            )),
        }
    }
    (entries, findings)
}

/// A function definition in the reachability universe.
struct FnDef<'a> {
    file: &'a ScannedFile,
    name: String,
    body: (usize, usize),
}

/// Runs the reactor-blocking rule over the scanned sources.
pub fn check(files: &[ScannedFile], allowlist: &[AllowEntry]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // The universe: every function defined under the serve crate.
    let mut defs: Vec<FnDef<'_>> = Vec::new();
    for file in files {
        if !file.path.starts_with(SERVE_PREFIX) {
            continue;
        }
        for span in file.fn_spans() {
            if file.in_test_region(span.line) {
                continue;
            }
            defs.push(FnDef {
                file,
                name: span.name,
                body: span.body,
            });
        }
    }
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (index, def) in defs.iter().enumerate() {
        by_name.entry(&def.name).or_default().push(index);
    }

    // BFS from the entry points over name-resolved call edges.
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut queue: Vec<usize> = Vec::new();
    for &(file, name) in ENTRY_POINTS {
        for (index, def) in defs.iter().enumerate() {
            if def.file.path == file && def.name == name && reached.insert(index) {
                queue.push(index);
            }
        }
    }
    while let Some(index) = queue.pop() {
        let def = &defs[index];
        let toks = def.file.code_tokens();
        for i in def.body.0..def.body.1 {
            let t = toks[i];
            if t.kind != TokenKind::Ident || toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
                continue;
            }
            if let Some(callees) = by_name.get(t.text.as_str()) {
                for &callee in callees {
                    if reached.insert(callee) {
                        queue.push(callee);
                    }
                }
            }
        }
    }

    // Scan every reached body for the blocking denylist.
    let mut used = vec![false; allowlist.len()];
    for &index in &reached {
        let def = &defs[index];
        let toks = def.file.code_tokens();
        for i in def.body.0..def.body.1 {
            let t = toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let operation = if t.text == "sleep"
                && i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == "thread"
            {
                Some("thread::sleep".to_owned())
            } else if BLOCKING_METHODS.contains(&t.text.as_str())
                && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                && i >= 1
                && toks[i - 1].text == "."
            {
                Some(format!(".{}()", t.text))
            } else {
                None
            };
            let Some(operation) = operation else { continue };
            let allowed = allowlist.iter().position(|e| {
                e.path == def.file.path && e.function == def.name && e.operation == operation
            });
            match allowed {
                Some(entry) => used[entry] = true,
                None => findings.push(Finding::deny(
                    "reactor-blocking",
                    &def.file.path,
                    t.line,
                    format!(
                        "`{operation}` in `{}`, which is reachable from the reactor event \
                         loop — a blocking call here stalls every connection on the \
                         endpoint; make it nonblocking or justify it in {}",
                        def.name, ALLOWLIST_PATH
                    ),
                )),
            }
        }
    }
    for (entry, used) in allowlist.iter().zip(used) {
        if !used {
            findings.push(Finding::warn(
                "reactor-blocking",
                ALLOWLIST_PATH,
                entry.line,
                format!(
                    "unused reactor allowlist entry for {} `{}` ({}) — the call is gone; \
                     remove the entry",
                    entry.path, entry.function, entry.operation
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listener(src: &str) -> ScannedFile {
        ScannedFile::new("crates/serve/src/listener.rs", src)
    }

    #[test]
    fn a_blocking_call_in_the_loop_itself_is_denied() {
        let files = vec![listener("fn run(&mut self) { thread::sleep(TICK); }\n")];
        let findings = check(&files, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("thread::sleep"));
    }

    #[test]
    fn a_blocking_call_reachable_through_helpers_is_denied() {
        let files = vec![
            listener("fn run(&mut self) { helper(); }\nfn helper() { deep(); }\n"),
            ScannedFile::new(
                "crates/serve/src/budget.rs",
                "fn deep() { let g = m.lock(); }\n",
            ),
        ];
        let findings = check(&files, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].path, "crates/serve/src/budget.rs");
        assert!(findings[0].message.contains(".lock()"));
    }

    #[test]
    fn unreachable_functions_may_block() {
        let files = vec![listener(
            "fn run(&mut self) { ok(); }\nfn ok() {}\nfn cold() { thread::sleep(D); }\n",
        )];
        assert!(check(&files, &[]).is_empty());
    }

    #[test]
    fn functions_outside_the_serve_crate_are_out_of_scope() {
        let files = vec![
            listener("fn run(&mut self) { poll_completions(); }\n"),
            ScannedFile::new(
                "crates/engine/src/pipeline.rs",
                "fn poll_completions() { self.completions.recv(); }\n",
            ),
        ];
        assert!(check(&files, &[]).is_empty());
    }

    #[test]
    fn an_allowlisted_site_passes_and_is_marked_used() {
        let files = vec![listener(
            "fn run(&mut self) { thread::sleep(ACCEPT_ERROR_BACKOFF); }\n",
        )];
        let (allowlist, parse_findings) = parse_allowlist(
            "crates/serve/src/listener.rs | run | thread::sleep | bounded 50ms backoff after \
             accept errors, deliberate\n",
        );
        assert!(parse_findings.is_empty());
        assert!(check(&files, &allowlist).is_empty());
    }

    #[test]
    fn channel_recv_and_condvar_wait_are_denied() {
        let files = vec![listener(
            "fn run(&mut self) { self.rx.recv(); cv.wait_timeout(g, d); }\n",
        )];
        let findings = check(&files, &[]);
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn unused_allowlist_entries_warn() {
        let (allowlist, _) =
            parse_allowlist("crates/serve/src/conn.rs | gone | .lock() | was justified once\n");
        let files = vec![listener("fn run(&mut self) {}\n")];
        let findings = check(&files, &allowlist);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, crate::report::Severity::Warn);
    }

    #[test]
    fn malformed_allowlist_lines_are_denied() {
        let (entries, findings) = parse_allowlist("a | b | c\nx | y | z |\n");
        assert!(entries.is_empty());
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn test_regions_do_not_join_the_universe() {
        let src = "\
fn run(&mut self) {}\n\
#[cfg(test)]\n\
mod tests {\n\
    fn run(&mut self) { thread::sleep(D); }\n\
}\n";
        assert!(check(&[listener(src)], &[]).is_empty());
    }
}
