//! Rule 6 — lock acquisitions nest only in manifest-blessed order.
//!
//! The workspace's blocking primitives (`Mutex` + `Condvar` in the
//! budget, pool, cache and pipeline) are all acquired through tiny
//! poison-tolerant `lock` helpers, which makes acquisition sites
//! recognizable at the token level. Deadlock needs two locks held in
//! opposite orders on two threads; the defense is a static nesting graph
//! checked on every change:
//!
//! - Each function body is scanned with brace-depth scope tracking; a
//!   lock acquired while another guard is still live records a nesting
//!   edge `outer -> inner`. A guard is `let`-bound only when the guard
//!   value itself is what the `let` binds (modulo the poison adapters
//!   `.unwrap_or_else(…)` / `.unwrap()` / `.expect(…)`); it then lives to
//!   the end of its block or an explicit `drop(binding)`. Anything else —
//!   including `let x = lock(q).recv()`, where the bound value is the
//!   *result*, not the guard — is a temporary that dies at its
//!   statement's `;`.
//! - Every observed edge must appear in the committed manifest
//!   ([`MANIFEST_PATH`]); an unknown nesting is a denial (it was never
//!   reviewed), an unused manifest edge is a warning (fatal under
//!   `--deny-warnings`), and a cycle — in the observed graph *or* the
//!   manifest itself — is always a denial.
//! - Re-acquiring the lock already held (self-nesting) is denied: the
//!   workspace's mutexes are not reentrant.
//!
//! Lock identity is `crate/file.field` — the last field identifier of
//! the receiver or argument (`lock(&self.state)` in
//! `crates/serve/src/budget.rs` is `serve/budget.state`). Bodies of
//! functions *named* `lock` (the helpers) are exempt: the caller's site
//! is the acquisition.
//!
//! Manifest format, one allowed nesting per line:
//!
//! ```text
//! <outer> -> <inner> | <why this nesting is safe>
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Finding;
use crate::scan::{ScannedFile, TokenKind};

/// Workspace-relative path of the lock-order manifest.
pub const MANIFEST_PATH: &str = "crates/audit/lock-order.txt";

/// One allowed nesting edge from the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowedEdge {
    pub outer: String,
    pub inner: String,
    pub justification: String,
    /// 1-based line in the manifest file.
    pub line: u32,
}

/// Parses the lock-order manifest. Malformed lines become findings.
pub fn parse_manifest(text: &str) -> (Vec<AllowedEdge>, Vec<Finding>) {
    let mut edges = Vec::new();
    let mut findings = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let line_no = index as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (pair, justification) = match trimmed.split_once('|') {
            Some((pair, j)) if !j.trim().is_empty() => (pair.trim(), j.trim()),
            _ => {
                findings.push(Finding::deny(
                    "lock-order",
                    MANIFEST_PATH,
                    line_no,
                    "malformed lock-order entry; expected `outer -> inner | why it is safe`"
                        .to_owned(),
                ));
                continue;
            }
        };
        match pair.split_once("->") {
            Some((outer, inner)) if !outer.trim().is_empty() && !inner.trim().is_empty() => {
                edges.push(AllowedEdge {
                    outer: outer.trim().to_owned(),
                    inner: inner.trim().to_owned(),
                    justification: justification.to_owned(),
                    line: line_no,
                });
            }
            _ => findings.push(Finding::deny(
                "lock-order",
                MANIFEST_PATH,
                line_no,
                "malformed lock-order entry; expected `outer -> inner | why it is safe`".to_owned(),
            )),
        }
    }
    (edges, findings)
}

/// One observed nesting: `outer` held while `inner` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ObservedEdge {
    outer: String,
    inner: String,
    path: String,
    line: u32,
}

/// Runs the lock-order rule over the scanned sources.
pub fn check(files: &[ScannedFile], manifest: &[AllowedEdge]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut observed: Vec<ObservedEdge> = Vec::new();
    for file in files {
        collect_edges(file, &mut observed, &mut findings);
    }
    observed.sort();
    observed.dedup();

    // Unknown nestings: every observed edge needs a manifest blessing.
    let mut used = vec![false; manifest.len()];
    for edge in &observed {
        match manifest
            .iter()
            .position(|e| e.outer == edge.outer && e.inner == edge.inner)
        {
            Some(index) => used[index] = true,
            None => findings.push(Finding::deny(
                "lock-order",
                &edge.path,
                edge.line,
                format!(
                    "`{}` acquired while `{}` is held — a nesting the lock-order manifest \
                     does not allow; review it and add `{} -> {} | <why>` to {}",
                    edge.inner, edge.outer, edge.outer, edge.inner, MANIFEST_PATH
                ),
            )),
        }
    }
    for (entry, used) in manifest.iter().zip(used) {
        if !used {
            findings.push(Finding::warn(
                "lock-order",
                MANIFEST_PATH,
                entry.line,
                format!(
                    "unused lock-order entry `{} -> {}` — the nesting is gone; remove it",
                    entry.outer, entry.inner
                ),
            ));
        }
    }

    // Cycles: over the union of observed and manifest edges, so a cycle
    // can be caught before the code grows its second half.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &observed {
        graph.entry(&e.outer).or_default().insert(&e.inner);
    }
    for e in manifest {
        graph.entry(&e.outer).or_default().insert(&e.inner);
    }
    for cycle in cycles(&graph) {
        findings.push(Finding::deny(
            "lock-order",
            MANIFEST_PATH,
            0,
            format!(
                "lock-order cycle: {} — two threads taking this loop from different entry \
                 points deadlock",
                cycle.join(" -> ")
            ),
        ));
    }
    findings
}

/// Scans one file's functions for nested acquisitions.
fn collect_edges(
    file: &ScannedFile,
    observed: &mut Vec<ObservedEdge>,
    findings: &mut Vec<Finding>,
) {
    let toks = file.code_tokens();
    let scope = scope_of(&file.path);
    for span in file.fn_spans() {
        if span.name == "lock" || file.in_test_region(span.line) {
            continue;
        }
        // Live guards: (identity, binding depth, `let` binding name). A
        // let-bound guard dies when its block closes or it is `drop`ped;
        // a temporary at its statement's trailing `;`.
        let mut live: Vec<(String, i64, Option<String>)> = Vec::new();
        let mut depth = 0i64;
        let (start, end) = span.body;
        for i in start..end {
            let t = toks[i];
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    live.retain(|&(_, d, _)| d <= depth);
                    continue;
                }
                ";" => {
                    live.retain(|(_, d, binding)| binding.is_some() || *d < depth);
                    continue;
                }
                "drop"
                    if t.kind == TokenKind::Ident
                        && toks.get(i + 1).map(|n| n.text.as_str()) == Some("(")
                        && toks.get(i + 3).map(|n| n.text.as_str()) == Some(")") =>
                {
                    if let Some(name) = toks.get(i + 2).filter(|n| n.kind == TokenKind::Ident) {
                        live.retain(|(_, _, binding)| binding.as_deref() != Some(&name.text));
                    }
                }
                _ => {}
            }
            let Some(identity) = acquisition_at(&toks, i) else {
                continue;
            };
            let identity = format!("{scope}.{identity}");
            for (held, _, _) in &live {
                if *held == identity {
                    findings.push(Finding::deny(
                        "lock-order",
                        &file.path,
                        t.line,
                        format!(
                            "`{identity}` re-acquired while already held in `{}` — \
                             std mutexes are not reentrant",
                            span.name
                        ),
                    ));
                } else {
                    observed.push(ObservedEdge {
                        outer: held.clone(),
                        inner: identity.clone(),
                        path: file.path.clone(),
                        line: t.line,
                    });
                }
            }
            let binding = guard_binding(&toks, start, i);
            live.push((identity, depth, binding));
        }
    }
}

/// If code token `i` is a lock acquisition (`.lock(` method call or a
/// `lock(…)` helper call), the identity of the lock being taken.
fn acquisition_at(toks: &[&crate::scan::Token], i: usize) -> Option<String> {
    let t = toks[i];
    if t.kind != TokenKind::Ident || t.text != "lock" {
        return None;
    }
    if toks.get(i + 1).map(|n| n.text.as_str()) != Some("(") {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
    if prev == Some("fn") {
        return None; // a helper definition, not an acquisition
    }
    if prev == Some(".") {
        // `recv.field.lock()` — the identity is the last field name.
        let recv = toks.get(i.wrapping_sub(2))?;
        if recv.kind == TokenKind::Ident {
            return Some(recv.text.clone());
        }
        return Some("<expr>".to_owned());
    }
    // `lock(&self.state)` helper call: last identifier inside the parens
    // (skipping `self`, which only qualifies the field).
    let mut depth = 0i64;
    let mut last: Option<String> = None;
    for t in toks.iter().skip(i + 1) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ if t.kind == TokenKind::Ident && t.text != "self" => last = Some(t.text.clone()),
            _ => {}
        }
    }
    last.or_else(|| Some("<expr>".to_owned()))
}

/// Poison adapters that return the guard they were called on, so a
/// chained call through them still binds the guard itself.
const GUARD_ADAPTERS: &[&str] = &["unwrap_or_else", "unwrap", "expect"];

/// If the acquisition at code token `i` is the value a `let` statement
/// binds, the binding's name. The guard counts as bound only when the
/// acquisition (plus any [`GUARD_ADAPTERS`] chain) is the *whole*
/// initializer — `let g = lock(q);` binds the guard, but in
/// `let x = lock(q).recv();` the guard is a temporary dying at the `;`.
fn guard_binding(toks: &[&crate::scan::Token], body_start: usize, i: usize) -> Option<String> {
    // Walk past the acquisition's argument list, then any adapter chain.
    let mut j = matching_paren(toks, i + 1)?;
    while toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
        && toks.get(j + 2).is_some_and(|t| {
            t.kind == TokenKind::Ident && GUARD_ADAPTERS.contains(&t.text.as_str())
        })
        && toks.get(j + 3).map(|t| t.text.as_str()) == Some("(")
    {
        j = matching_paren(toks, j + 3)?;
    }
    if toks.get(j + 1).map(|t| t.text.as_str()) != Some(";") {
        return None;
    }
    // The statement must open with `let`; its binding is the first
    // identifier after it (skipping `mut`).
    let mut k = i;
    while k > body_start {
        k -= 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => break,
            _ => {
                if k == body_start {
                    break;
                }
            }
        }
    }
    if toks.get(k + 1).map(|t| t.text.as_str()) != Some("let") {
        return None;
    }
    toks[k + 2..=i]
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
        .map(|t| t.text.clone())
}

/// The index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[&crate::scan::Token], open: usize) -> Option<usize> {
    if toks.get(open).map(|t| t.text.as_str()) != Some("(") {
        return None;
    }
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// `crates/serve/src/budget.rs` → `serve/budget`; anything else keeps
/// its path minus the extension.
fn scope_of(path: &str) -> String {
    let stem = path.strip_suffix(".rs").unwrap_or(path);
    let stem = stem.strip_prefix("crates/").unwrap_or(stem);
    stem.replace("/src/", "/")
}

/// Every elementary cycle reachable in `graph`, as node lists with the
/// repeated node appended (deduplicated by rotation).
fn cycles<'a>(graph: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut found: BTreeSet<Vec<&str>> = BTreeSet::new();
    for &start in graph.keys() {
        let mut stack = vec![start];
        dfs(graph, start, &mut stack, &mut found);
    }
    found.into_iter().collect()
}

fn dfs<'a>(
    graph: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    node: &'a str,
    stack: &mut Vec<&'a str>,
    found: &mut BTreeSet<Vec<&'a str>>,
) {
    let Some(nexts) = graph.get(node) else { return };
    for &next in nexts {
        if let Some(at) = stack.iter().position(|&n| n == next) {
            // Canonicalize the cycle: rotate so the smallest node leads.
            let mut cycle: Vec<&str> = stack[at..].to_vec();
            let min = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map_or(0, |(i, _)| i);
            cycle.rotate_left(min);
            cycle.push(cycle[0]);
            found.insert(cycle);
            continue;
        }
        stack.push(next);
        dfs(graph, next, stack, found);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<ScannedFile> {
        vec![ScannedFile::new("crates/engine/src/pool.rs", src)]
    }

    fn allow(text: &str) -> Vec<AllowedEdge> {
        let (edges, findings) = parse_manifest(text);
        assert!(findings.is_empty(), "{findings:?}");
        edges
    }

    #[test]
    fn sequential_acquisitions_create_no_edge() {
        let src = "\
fn f(&self) {\n\
    { let a = lock(&self.failure); use_it(a); }\n\
    let b = lock(&self.pending);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn a_nested_acquisition_without_a_manifest_entry_is_denied() {
        let src = "\
fn f(&self) {\n\
    let a = lock(&self.failure);\n\
    let b = lock(&self.pending);\n\
}\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("engine/pool.pending"));
        assert!(findings[0].message.contains("engine/pool.failure"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn a_manifest_blessed_nesting_passes() {
        let src = "\
fn f(&self) {\n\
    let a = lock(&self.failure);\n\
    let b = lock(&self.pending);\n\
}\n";
        let manifest =
            allow("engine/pool.failure -> engine/pool.pending | failure is only written here\n");
        assert!(check(&lib(src), &manifest).is_empty());
    }

    #[test]
    fn an_inverted_pair_forms_a_cycle_and_is_denied() {
        let src = "\
fn f(&self) {\n\
    let a = lock(&self.failure);\n\
    let b = lock(&self.pending);\n\
}\n\
fn g(&self) {\n\
    let b = lock(&self.pending);\n\
    let a = lock(&self.failure);\n\
}\n";
        let manifest = allow(
            "engine/pool.failure -> engine/pool.pending | one way\n\
             engine/pool.pending -> engine/pool.failure | the other way\n",
        );
        let findings = check(&lib(src), &manifest);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("cycle"));
    }

    #[test]
    fn method_form_receiver_names_the_lock() {
        let src = "\
fn f(&self) {\n\
    let w = self.wall_nanos.lock();\n\
    let l = self.landscape.lock();\n\
}\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("engine/pool.landscape"));
    }

    #[test]
    fn temporaries_die_at_their_statement() {
        let src = "\
fn f(&self) {\n\
    self.inner.lock().insert(k, v);\n\
    self.other.lock().remove(&k);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn a_guard_dies_with_its_block() {
        let src = "\
fn f(&self) {\n\
    { let a = lock(&self.failure); }\n\
    let b = lock(&self.pending);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn an_explicit_drop_releases_a_let_bound_guard() {
        let src = "\
fn f(&self) {\n\
    let mut pending = lock(&self.pending);\n\
    drop(pending);\n\
    let e = lock(&self.failure);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn a_consumed_initializer_guard_is_a_temporary_not_a_binding() {
        // `let t = lock(q).recv();` binds the *result*; the guard dies at
        // the `;`, so the later acquisition is not nested under it.
        let src = "\
fn f(&self) {\n\
    let t = lock(&self.queue).recv();\n\
    let g = lock(&self.tokens);\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn a_poison_adapter_chain_still_binds_the_guard() {
        let src = "\
fn f(&self) {\n\
    let a = self.failure.lock().unwrap_or_else(|e| e.into_inner());\n\
    let b = lock(&self.pending);\n\
}\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("engine/pool.pending"));
    }

    #[test]
    fn reacquiring_a_held_lock_is_denied() {
        let src = "\
fn f(&self) {\n\
    let a = lock(&self.state);\n\
    let b = lock(&self.state);\n\
}\n";
        let findings = check(&lib(src), &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("re-acquired"));
    }

    #[test]
    fn helper_definitions_and_test_code_are_exempt() {
        let src = "\
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap_or_else(|e| e.into_inner()) }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn t(&self) { let a = lock(&self.x); let b = lock(&self.y); }\n\
}\n";
        assert!(check(&lib(src), &[]).is_empty());
    }

    #[test]
    fn unused_manifest_entries_warn() {
        let manifest = allow("engine/pool.gone -> engine/pool.also_gone | was real once\n");
        let findings = check(&lib("fn f() {}\n"), &manifest);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, crate::report::Severity::Warn);
    }

    #[test]
    fn malformed_manifest_lines_are_denied() {
        let (edges, findings) = parse_manifest("a -> b\nc | d\n# ok\n");
        assert!(edges.is_empty());
        assert_eq!(findings.len(), 2);
    }
}
