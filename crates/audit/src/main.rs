//! The `zeroconf-audit` binary: run the workspace static-analysis gate.
//!
//! ```text
//! zeroconf-audit [--deny-warnings] [--json] [--root PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 findings (under the active warning policy),
//! 2 the audit itself could not run. The same gate is reachable as
//! `zeroconf audit` from the main CLI.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_warnings = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--root" => match iter.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("zeroconf-audit: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: zeroconf-audit [--deny-warnings] [--json] [--root PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("zeroconf-audit: unknown flag '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("zeroconf-audit: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match zeroconf_audit::find_workspace_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("zeroconf-audit: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    match zeroconf_audit::audit_workspace(&root) {
        Ok(report) => {
            // Under --deny-warnings every warning is a denial; render it
            // as one so the output severity matches the exit code.
            let report = report.promoted(deny_warnings);
            if json {
                println!("{}", report.to_json());
            } else {
                println!("{}", report.to_text());
            }
            if report.fails(deny_warnings) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("zeroconf-audit: {e}");
            ExitCode::from(2)
        }
    }
}
