//! Token-level scanning of Rust source text.
//!
//! The audit rules need just enough lexical structure to tell *code*
//! apart from *comments* and *string literals*: a `.unwrap()` inside a
//! doc example or a fixture string is not a violation, and a `SAFETY:`
//! justification lives in a comment. A full parser would be overkill (and
//! would drag in a dependency the offline build cannot have), so this
//! module implements a small hand-rolled lexer producing a flat token
//! stream with line numbers, plus a pass that recovers the line spans of
//! `#[cfg(test)]`-gated items so rules can exempt test code.
//!
//! The lexer understands line and nested block comments, string / raw
//! string / byte-string / char literals, lifetimes, numbers and
//! identifiers; everything else is single-character punctuation. It is
//! intentionally forgiving: unterminated constructs extend to the end of
//! the file rather than erroring, because the audit must never be the
//! thing that panics on weird input.

/// The lexical class of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A single punctuation character.
    Punct,
    /// A string, raw-string, byte-string or character literal. `text`
    /// keeps the raw source spelling, quotes and escapes included.
    Literal,
    /// A numeric literal (integer or float, suffix included).
    Number,
    /// A line or block comment, comment markers included.
    Comment,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One lexed token with its (1-based) source line span.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// Lexes `source` into a flat token stream.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.string_prefix_len().is_some() => {
                    let skip = self.string_prefix_len().unwrap_or(0);
                    self.raw_or_prefixed_string(skip);
                }
                b'"' => self.string_literal(),
                b'\'' => self.char_or_lifetime(),
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, start_line: u32) {
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.tokens.push(Token {
            kind,
            text,
            line: start_line,
            end_line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::Comment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'\n' => self.line += 1,
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 1;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
        self.push(TokenKind::Comment, start, self.pos, start_line);
    }

    /// If the cursor sits on a string prefix (`r"`, `r#"`, `b"`, `b'`,
    /// `br"`, `br#"`), the number of prefix bytes before the hashes /
    /// quote; `None` when this is an ordinary identifier.
    fn string_prefix_len(&self) -> Option<usize> {
        let rest = &self.bytes[self.pos..];
        let after = |n: usize| -> &[u8] { rest.get(n..).unwrap_or(&[]) };
        let starts_raw = |tail: &[u8]| -> bool {
            let hashes = tail.iter().take_while(|&&b| b == b'#').count();
            // `r#ident` has an identifier, not a quote, after the hash.
            tail.get(hashes) == Some(&b'"')
        };
        match rest {
            [b'r', ..] if starts_raw(after(1)) => Some(1),
            [b'b', b'r', ..] if starts_raw(after(2)) => Some(2),
            [b'b', b'"', ..] => Some(1),
            [b'b', b'\'', ..] => Some(1),
            _ => None,
        }
    }

    /// A string with a prefix: raw (`r`/`br`, escape-free whether or not
    /// hash-delimited), byte (`b"..."`, escape rules like a normal
    /// string) or byte char (`b'.'`).
    fn raw_or_prefixed_string(&mut self, prefix: usize) {
        let start = self.pos;
        let start_line = self.line;
        // `r"…"`/`r#"…"#`/`br"…"` are raw: `\` is an ordinary byte, so the
        // escape-aware scanner must never run on them (it would read
        // `r"\"` past its closing quote and swallow real code into the
        // literal). Only the bare `b"…"` byte string keeps escapes.
        let raw = self.bytes[start] == b'r' || prefix == 2;
        self.pos += prefix;
        if self.bytes.get(self.pos) == Some(&b'\'') {
            // b'x' byte char: delegate to the escape-aware scanner.
            self.pos += 1;
            self.quoted(b'\'');
            self.push(TokenKind::Literal, start, self.pos, start_line);
            return;
        }
        let hashes = self.bytes[self.pos..]
            .iter()
            .take_while(|&&b| b == b'#')
            .count();
        self.pos += hashes;
        if !raw {
            // b"..." — escapes apply.
            self.pos += 1;
            self.quoted(b'"');
        } else {
            // r"..." / r#"..."# — no escapes; ends at `"` + the same
            // number of hashes as the opener (zero included).
            self.pos += 1; // opening quote
            while self.pos < self.bytes.len() {
                let b = self.bytes[self.pos];
                if b == b'\n' {
                    self.line += 1;
                } else if b == b'"'
                    && self.bytes[self.pos + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == b'#')
                        .count()
                        == hashes
                {
                    self.pos += 1 + hashes;
                    break;
                }
                self.pos += 1;
            }
        }
        self.push(TokenKind::Literal, start, self.pos, start_line);
    }

    fn string_literal(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += 1;
        self.quoted(b'"');
        self.push(TokenKind::Literal, start, self.pos, start_line);
    }

    /// Advances past the body and closing delimiter of an escape-aware
    /// quoted literal; the opening delimiter is already consumed.
    fn quoted(&mut self, close: u8) {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'\\' => self.pos += 2,
                b if b == close => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        if let Some(next) = self.peek(1) {
            if is_ident_start(next) {
                // `'a'` is a char literal; `'a` (no closing quote after
                // the ident run) is a lifetime.
                let mut end = self.pos + 2;
                while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    self.push(TokenKind::Literal, start, self.pos, start_line);
                } else {
                    self.pos = end;
                    self.push(TokenKind::Lifetime, start, self.pos, start_line);
                }
                return;
            }
        }
        // Escape or symbol char literal: '\n', '\'', '{', …
        self.pos += 1;
        self.quoted(b'\'');
        self.push(TokenKind::Literal, start, self.pos, start_line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let previous = self.bytes[self.pos - 1];
            if is_ident_continue(b) {
                self.pos += 1;
            } else if b == b'.' && self.peek(1).is_some_and(|n| n.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` does not.
                self.pos += 1;
            } else if (b == b'+' || b == b'-') && (previous == b'e' || previous == b'E') {
                // The sign of an exponent: `1.5e-3`.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, self.pos, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .copied()
            .is_some_and(is_ident_continue)
        {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, self.pos, self.line);
    }
}

/// One scanned source file: workspace-relative path, token stream and the
/// line spans of its `#[cfg(test)]`-gated items.
#[derive(Debug)]
pub struct ScannedFile {
    pub path: String,
    pub tokens: Vec<Token>,
    pub test_regions: Vec<(u32, u32)>,
}

impl ScannedFile {
    pub fn new(path: impl Into<String>, source: &str) -> ScannedFile {
        let tokens = tokenize(source);
        let test_regions = test_regions(&tokens);
        ScannedFile {
            path: path.into(),
            tokens,
            test_regions,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]`-gated item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// The code tokens (comments stripped), for rules that match on
    /// syntax rather than commentary.
    pub fn code_tokens(&self) -> Vec<&Token> {
        self.tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect()
    }

    /// The `fn` items of this file, in source order. See [`FnSpan`].
    pub fn fn_spans(&self) -> Vec<FnSpan> {
        fn_spans(&self.code_tokens())
    }
}

/// One `fn` item recovered from the token stream: its name, source line
/// span, and the range of *code tokens* forming its body.
///
/// Nested items are attributed to every enclosing `fn` (an inner helper's
/// tokens appear in its own span *and* its parent's) — the conservative
/// direction for reachability rules. Bodiless declarations (trait
/// methods, `extern` block symbols) produce no span.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Last line of the body block.
    pub end_line: u32,
    /// Half-open index range into [`ScannedFile::code_tokens`] covering
    /// the body, outer braces included.
    pub body: (usize, usize),
}

/// Extracts [`FnSpan`]s from a comment-stripped token slice.
pub fn fn_spans(toks: &[&Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name) = toks
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
        else {
            continue;
        };
        // The signature runs to the body's opening brace; a `;` first
        // means a bodiless declaration. Signatures cannot contain braces
        // or semicolons, so a flat scan suffices.
        let mut j = i + 2;
        let open = loop {
            match toks.get(j).map(|t| t.text.as_str()) {
                Some("{") => break Some(j),
                Some(";") | None => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else { continue };
        let mut depth = 0i64;
        let mut k = open;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let last = k.min(toks.len() - 1);
        spans.push(FnSpan {
            name,
            line: toks[i].line,
            end_line: toks[last].end_line,
            body: (open, (k + 1).min(toks.len())),
        });
    }
    spans
}

/// The line spans of `#[cfg(test)]`-gated items: from the attribute to
/// the closing brace (or semicolon) of the item it gates.
///
/// An attribute counts as test-gating when it is `cfg(…)` with a `test`
/// predicate and no `not(…)` — `#[cfg(not(test))]` gates *non*-test code
/// and `#[cfg_attr(…)]` gates nothing.
pub fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let Some((idents, after_attr)) = attribute_at(&toks, i) else {
            i += 1;
            continue;
        };
        let is_test = idents.first().map(String::as_str) == Some("cfg")
            && idents.iter().any(|id| id == "test")
            && !idents.iter().any(|id| id == "not");
        if !is_test {
            i = after_attr;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes between the cfg and the item.
        let mut k = after_attr;
        while let Some((_, next)) = attribute_at(&toks, k) {
            k = next;
        }
        // The item body: everything to the first top-level `{ … }` block
        // or, for brace-free items like `mod tests;`, the semicolon.
        let mut paren_depth = 0i64;
        let mut end_line = toks.get(k.saturating_sub(1)).map_or(start_line, |t| t.line);
        while k < toks.len() {
            let t = toks[k];
            end_line = t.end_line;
            match t.text.as_str() {
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth -= 1,
                ";" if paren_depth == 0 => break,
                "{" if paren_depth == 0 => {
                    let mut brace_depth = 0i64;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "{" => brace_depth += 1,
                            "}" => {
                                brace_depth -= 1;
                                if brace_depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        end_line = toks[k].end_line;
                        k += 1;
                    }
                    end_line = toks.get(k).map_or(end_line, |t| t.end_line);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        regions.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

/// If `toks[i]` starts an outer attribute `#[…]`, the identifiers inside
/// it and the index just past the closing `]`.
fn attribute_at(toks: &[&Token], i: usize) -> Option<(Vec<String>, usize)> {
    if toks.get(i)?.text != "#" || toks.get(i + 1)?.text != "[" {
        return None;
    }
    let mut idents = Vec::new();
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((idents, j + 1));
                }
            }
            _ if toks[j].kind == TokenKind::Ident => idents.push(toks[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    // Unterminated attribute: treat as consuming the rest of the file.
    Some((idents, toks.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        tokenize(source)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_are_single_tokens() {
        let toks = kinds("let x = \"a.unwrap()\"; // panic!\n/* unsafe */ y");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".to_owned()),
                (TokenKind::Ident, "x".to_owned()),
                (TokenKind::Punct, "=".to_owned()),
                (TokenKind::Literal, "\"a.unwrap()\"".to_owned()),
                (TokenKind::Punct, ";".to_owned()),
                (TokenKind::Comment, "// panic!".to_owned()),
                (TokenKind::Comment, "/* unsafe */".to_owned()),
                (TokenKind::Ident, "y".to_owned()),
            ]
        );
    }

    #[test]
    fn raw_and_byte_strings_lex_as_literals() {
        let toks = kinds(r##"a b"bytes" r"raw" r#"ra"w"# br#"braw"# b'x' c"##);
        let literals: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            literals,
            vec![
                "b\"bytes\"",
                "r\"raw\"",
                "r#\"ra\"w\"#",
                "br#\"braw\"#",
                "b'x'"
            ]
        );
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("c"));
    }

    #[test]
    fn zero_hash_raw_strings_do_not_honor_escapes() {
        // In `r"\"` the backslash is an ordinary byte and the quote
        // terminates the literal. An escape-aware scan would run past it
        // and swallow the `// unsafe` comment and the `.unwrap()` call
        // into the literal — phantom (or, worse, *missing*) findings.
        let toks = kinds("let re = r\"\\\"; // unsafe\nx.unwrap();\n");
        assert!(toks.contains(&(TokenKind::Literal, "r\"\\\"".to_owned())));
        assert!(toks.contains(&(TokenKind::Comment, "// unsafe".to_owned())));
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".to_owned())));
    }

    #[test]
    fn comment_markers_inside_raw_strings_are_not_comments() {
        let toks = kinds("let s = r#\"// not a comment, unsafe neither\"#; code");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Comment)
                .count(),
            0
        );
        assert!(toks.contains(&(TokenKind::Ident, "code".to_owned())));
        assert!(!toks.contains(&(TokenKind::Ident, "unsafe".to_owned())));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let toks = kinds("/* outer /* inner */ still comment */ after");
        assert_eq!(
            toks,
            vec![
                (
                    TokenKind::Comment,
                    "/* outer /* inner */ still comment */".to_owned()
                ),
                (TokenKind::Ident, "after".to_owned()),
            ]
        );
    }

    #[test]
    fn unterminated_nested_block_comment_extends_to_eof() {
        // `/*/` opens without closing: everything after is comment.
        let toks = kinds("/*/ x.unwrap() */ trailing /* unclosed");
        assert!(toks
            .iter()
            .all(|(k, t)| *k == TokenKind::Comment || t == "trailing"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("r#type = 1");
        assert_eq!(toks[0], (TokenKind::Ident, "r".to_owned()));
        // `r#type` lexes as r + # + type — good enough: nothing here is
        // mistaken for a string literal.
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Literal));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["'y'", "'\\n'"]);
    }

    #[test]
    fn multiline_strings_track_line_numbers() {
        let toks = tokenize("let s = \"one\n  two\";\nnext");
        let next = toks.iter().find(|t| t.text == "next").expect("next token");
        assert_eq!(next.line, 3);
        let s = toks
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .expect("string");
        assert_eq!((s.line, s.end_line), (1, 2));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..n_max { let x = 1.5e-3f64; }");
        assert!(toks.contains(&(TokenKind::Number, "0".to_owned())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3f64".to_owned())));
    }

    #[test]
    fn cfg_test_mod_region_covers_the_block() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    #[test]\n\
    fn t() { x.unwrap(); }\n\
}\n\
fn live_too() {}\n";
        let file = ScannedFile::new("x.rs", src);
        assert_eq!(file.test_regions, vec![(2, 6)]);
        assert!(!file.in_test_region(1));
        assert!(file.in_test_region(5));
        assert!(!file.in_test_region(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn shipping() { x.unwrap(); }\n";
        let file = ScannedFile::new("x.rs", src);
        assert!(file.test_regions.is_empty());
    }

    #[test]
    fn cfg_attr_is_not_a_test_region() {
        let src = "#[cfg_attr(not(test), allow(dead_code))]\nfn f() {}\n";
        let file = ScannedFile::new("x.rs", src);
        assert!(file.test_regions.is_empty());
    }

    #[test]
    fn cfg_test_semicolon_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod fixtures;\nfn live() {}\n";
        let file = ScannedFile::new("x.rs", src);
        assert_eq!(file.test_regions, vec![(1, 2)]);
        assert!(!file.in_test_region(3));
    }

    #[test]
    fn stacked_attributes_still_find_the_item_body() {
        let src = "\
#[cfg(test)]\n\
#[allow(clippy::unwrap_used)]\n\
mod tests {\n\
    fn t() {}\n\
}\n";
        let file = ScannedFile::new("x.rs", src);
        assert_eq!(file.test_regions, vec![(1, 5)]);
    }

    #[test]
    fn fn_spans_cover_bodies_and_skip_bodiless_declarations() {
        let src = "\
extern \"C\" {\n\
    fn read(fd: i32) -> isize;\n\
}\n\
fn outer(x: u32) -> u32 {\n\
    helper(x)\n\
}\n\
fn helper(x: u32) -> u32 { x + 1 }\n";
        let file = ScannedFile::new("x.rs", src);
        let spans = file.fn_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        // `read` is bodiless (extern declaration) — no span.
        assert_eq!(names, vec!["outer", "helper"]);
        assert_eq!((spans[0].line, spans[0].end_line), (4, 6));
        let toks = file.code_tokens();
        let body: Vec<&str> = toks[spans[0].body.0..spans[0].body.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, vec!["{", "helper", "(", "x", ")", "}"]);
    }

    #[test]
    fn nested_fns_are_attributed_to_both_spans() {
        let src = "fn outer() {\n    fn inner() { leaf(); }\n    inner();\n}\n";
        let spans = ScannedFile::new("x.rs", src).fn_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].body.0 < spans[1].body.0 && spans[1].body.1 <= spans[0].body.1);
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_regions() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    const S: &str = \"}\";\n\
    fn t() {}\n\
}\n\
fn live() {}\n";
        let file = ScannedFile::new("x.rs", src);
        assert_eq!(file.test_regions, vec![(1, 5)]);
        assert!(!file.in_test_region(6));
    }
}
