//! The machine-readable finding format and the deterministic report.
//!
//! Every rule emits [`Finding`]s; the [`Report`] sorts them by
//! `(rule, path, line, message)` so two runs over the same tree produce
//! byte-identical output — a requirement for the CI gate, whose failure
//! diffs must be stable. JSON rendering is hand-rolled (the offline
//! workspace has no serde) and escapes exactly what RFC 8259 requires.

use std::fmt;

/// How fatal a finding is: `Deny` findings always fail the audit, `Warn`
/// findings fail it only under `--deny-warnings` (the CI configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Deny,
    Warn,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One rule violation, anchored to a workspace-relative path and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `no-panic` or `unsafe-allowlist`.
    pub rule: &'static str,
    pub severity: Severity,
    pub path: String,
    /// 1-based line, or 0 when the finding concerns the file as a whole.
    pub line: u32,
    pub message: String,
}

impl Finding {
    pub fn deny(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            severity: Severity::Deny,
            path: path.to_owned(),
            line,
            message,
        }
    }

    pub fn warn(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            severity: Severity::Warn,
            path: path.to_owned(),
            line,
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity.as_str(),
            self.rule,
            self.path,
            self.line,
            self.message
        )
    }
}

/// The sorted, deterministic result of one audit run.
#[derive(Debug)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    pub fn new(mut findings: Vec<Finding>) -> Report {
        findings.sort_by(|a, b| {
            (a.rule, &a.path, a.line, &a.message).cmp(&(b.rule, &b.path, b.line, &b.message))
        });
        findings.dedup();
        Report { findings }
    }

    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
            .count()
    }

    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Whether the audit fails under the given warning policy.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.deny_count() > 0 || (deny_warnings && !self.findings.is_empty())
    }

    /// The report under the given warning policy: with `--deny-warnings`
    /// every `Warn` finding (unused allowlist and manifest entries) is
    /// promoted to `Deny`, so the rendered severity matches what actually
    /// fails the run.
    #[must_use]
    pub fn promoted(mut self, deny_warnings: bool) -> Report {
        if deny_warnings {
            for finding in &mut self.findings {
                finding.severity = Severity::Deny;
            }
        }
        self
    }

    /// Human-readable report: one line per finding plus a summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "zeroconf-audit: {} finding(s) ({} deny, {} warn)",
            self.findings.len(),
            self.deny_count(),
            self.warn_count()
        ));
        out
    }

    /// The findings as a JSON array, one object per finding, sorted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(f.rule),
                f.severity.as_str(),
                json_escape(&f.path),
                f.line,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sorts_and_dedups_findings() {
        let report = Report::new(vec![
            Finding::deny("z-rule", "b.rs", 9, "late".to_owned()),
            Finding::deny("a-rule", "b.rs", 2, "dup".to_owned()),
            Finding::deny("a-rule", "a.rs", 5, "first".to_owned()),
            Finding::deny("a-rule", "b.rs", 2, "dup".to_owned()),
        ]);
        let order: Vec<(&str, &str, u32)> = report
            .findings()
            .iter()
            .map(|f| (f.rule, f.path.as_str(), f.line))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a-rule", "a.rs", 5),
                ("a-rule", "b.rs", 2),
                ("z-rule", "b.rs", 9)
            ]
        );
    }

    #[test]
    fn failure_policy_honours_deny_warnings() {
        let clean = Report::new(Vec::new());
        assert!(!clean.fails(true));
        let warn_only = Report::new(vec![Finding::warn("r", "a.rs", 1, "w".to_owned())]);
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
        let denied = Report::new(vec![Finding::deny("r", "a.rs", 1, "d".to_owned())]);
        assert!(denied.fails(false));
    }

    #[test]
    fn deny_warnings_promotes_warnings_to_denials() {
        let report = Report::new(vec![
            Finding::warn("r", "a.rs", 1, "unused entry".to_owned()),
            Finding::deny("r", "b.rs", 2, "real".to_owned()),
        ]);
        let promoted = report.promoted(true);
        assert_eq!(promoted.deny_count(), 2);
        assert_eq!(promoted.warn_count(), 0);

        let kept = Report::new(vec![Finding::warn("r", "a.rs", 1, "w".to_owned())]).promoted(false);
        assert_eq!(kept.warn_count(), 1);
    }

    #[test]
    fn json_escapes_quotes_and_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_is_a_valid_array_shape() {
        let report = Report::new(vec![Finding::deny(
            "no-panic",
            "x.rs",
            3,
            "boom".to_owned(),
        )]);
        let json = report.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"rule\":\"no-panic\""));
        assert!(json.contains("\"line\":3"));
        assert_eq!(Report::new(Vec::new()).to_json(), "[]");
    }
}
