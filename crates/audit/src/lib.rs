//! `zeroconf-audit` — the workspace's static-analysis gate.
//!
//! PR 3 and PR 4 pushed the engine's hot path into `unsafe` territory
//! (disjoint shared-slab writes in `engine/pool.rs`, an mmap-served spill
//! tier in `engine/cache.rs`) with correctness argued in prose. This crate
//! is the machine-checked version of that prose — the same move the
//! model-checking literature makes for the protocol itself: encode the
//! invariants once, re-check them on every change. Eight rules, each a
//! module under [`rules`]:
//!
//! - [`rules::unsafe_code`] — `unsafe` only in the allowlisted engine
//!   modules, every occurrence justified by an adjacent `SAFETY` comment,
//!   `#![forbid(unsafe_code)]` everywhere else and
//!   `#![deny(unsafe_op_in_unsafe_fn)]` in the engine;
//! - [`rules::no_panic`] — no `unwrap`/`expect`/`panic!`/`todo!` in
//!   library code outside `#[cfg(test)]`, with a justification-carrying
//!   allowlist for the genuinely infallible expects;
//! - [`rules::const_drift`] — the wire version, the `ZCPITAB2` spill
//!   magic/header width and the `BENCH_engine.json` row schema each have
//!   exactly one definition, and no literal copies drift elsewhere;
//! - [`rules::lockfile`] — `Cargo.lock` holds no duplicate versions and
//!   no non-vendored sources, and its package set matches the reviewed
//!   dependency manifest (`crates/audit/deps-manifest.txt`) — all parsed
//!   fully offline;
//! - [`rules::atomic_ordering`] — every `Ordering::…` choice carries an
//!   adjacent `// ORDERING:` justification, and `Relaxed` on the
//!   cross-thread hand-off sites pinned in `crates/audit/sync-sites.txt`
//!   is denied outright;
//! - [`rules::lock_order`] — observed `Mutex` nesting must match the
//!   committed order manifest (`crates/audit/lock-order.txt`) and the
//!   combined graph must be acyclic;
//! - [`rules::reactor_blocking`] — no blocking call (`.lock()`,
//!   `thread::sleep`, channel `recv`, …) is reachable from the serve
//!   reactor's event-loop entry points, modulo the justified allowlist
//!   in `crates/audit/reactor-allowlist.txt`;
//! - [`rules::ffi_surface`] — every `extern "C"` function appears in
//!   `crates/audit/ffi-manifest.txt` with its errno convention noted.
//!
//! Scanning is token-level ([`scan`]): comments and string literals are
//! real tokens, so a `.unwrap()` in a doc example is not a violation and
//! a fixture string cannot hide one. The report ([`report`]) is
//! deterministic (sorted findings, stable JSON) and there is deliberately
//! no `--fix` mode: the audit names the violation, the change that fixes
//! it goes through review like any other.
//!
//! Run it as `cargo run -p zeroconf-audit -- --deny-warnings` or
//! `zeroconf audit --deny-warnings`; ci.sh does the latter before the
//! test suite.

#![forbid(unsafe_code)]

pub mod report;
pub mod rules;
pub mod scan;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use report::{Finding, Report};
use rules::unsafe_code::CrateRoot;
use scan::ScannedFile;

/// An audit run that could not complete (I/O problems, no workspace).
/// Rule *violations* are never errors — they are findings in the report.
#[derive(Debug)]
pub struct AuditError(pub String);

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "audit error: {}", self.0)
    }
}

impl std::error::Error for AuditError {}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> AuditError {
    AuditError(format!("{what} {}: {e}", path.display()))
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, AuditError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text =
                fs::read_to_string(&manifest).map_err(|e| io_err("reading", &manifest, e))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(AuditError(format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            )));
        }
    }
}

/// Audits the workspace rooted at `root` and returns the sorted report.
///
/// # Errors
///
/// Returns [`AuditError`] only when the tree itself cannot be read; rule
/// violations come back as findings inside the report.
pub fn audit_workspace(root: &Path) -> Result<Report, AuditError> {
    let mut findings = Vec::new();

    // Every `src/` tree in the workspace: the root package plus crates/*.
    let mut files: Vec<ScannedFile> = Vec::new();
    let mut roots: Vec<CrateRoot> = Vec::new();
    let mut packages = vec![(package_name(&root.join("Cargo.toml"))?, root.to_path_buf())];
    let crates_dir = root.join("crates");
    for entry in sorted_dir(&crates_dir)? {
        if entry.join("Cargo.toml").is_file() {
            packages.push((package_name(&entry.join("Cargo.toml"))?, entry));
        }
    }
    for (crate_name, package_dir) in &packages {
        let src = package_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        collect_rs_files(&src, root, &mut files)?;
        for target in ["lib.rs", "main.rs"] {
            if src.join(target).is_file() {
                roots.push(CrateRoot {
                    crate_name: crate_name.clone(),
                    path: relative(&src.join(target), root),
                });
            }
        }
    }

    // Rule 1: unsafe audit.
    findings.extend(rules::unsafe_code::check_sources(&files));
    findings.extend(rules::unsafe_code::check_crate_roots(&roots, &files));

    // Rule 2: panic freedom, against the checked-in allowlist.
    let allowlist_path = root.join(rules::no_panic::ALLOWLIST_PATH);
    // No allowlist on disk means every expect is a finding.
    let allowlist_text = fs::read_to_string(&allowlist_path).unwrap_or_default();
    let (entries, parse_findings) = rules::no_panic::parse_allowlist(&allowlist_text);
    findings.extend(parse_findings);
    findings.extend(rules::no_panic::check(&files, &entries));

    // Rule 3: wire-format constant drift.
    findings.extend(rules::const_drift::check(&files));

    // Rule 4: lockfile audit, including the reviewed-manifest diff.
    let lock_path = root.join(rules::lockfile::LOCKFILE_PATH);
    match fs::read_to_string(&lock_path) {
        Ok(lock) => {
            findings.extend(rules::lockfile::check(&lock));
            let manifest_path = root.join(rules::lockfile::MANIFEST_PATH);
            match fs::read_to_string(&manifest_path) {
                Ok(manifest) => {
                    findings.extend(rules::lockfile::check_manifest(&lock, &manifest));
                }
                Err(e) => findings.push(Finding::deny(
                    "lockfile",
                    rules::lockfile::MANIFEST_PATH,
                    0,
                    format!(
                        "the reviewed dependency manifest is unreadable ({e}) — \
                         every lockfile package counts as unreviewed"
                    ),
                )),
            }
        }
        Err(e) => findings.push(Finding::deny(
            "lockfile",
            rules::lockfile::LOCKFILE_PATH,
            0,
            format!("Cargo.lock is unreadable ({e}) — the dependency audit cannot run"),
        )),
    }

    // Rule 5: atomic-ordering justifications, against the sync-site
    // manifest. A missing manifest is itself a denial: the rule's
    // hand-off check is only as good as the committed site list.
    match fs::read_to_string(root.join(rules::atomic_ordering::MANIFEST_PATH)) {
        Ok(text) => {
            let (sites, parse_findings) = rules::atomic_ordering::parse_manifest(&text);
            findings.extend(parse_findings);
            findings.extend(rules::atomic_ordering::check(&files, &sites));
        }
        Err(e) => findings.push(Finding::deny(
            "atomic-ordering",
            rules::atomic_ordering::MANIFEST_PATH,
            0,
            format!("the sync-site manifest is unreadable ({e}) — the hand-off check cannot run"),
        )),
    }

    // Rule 6: lock-order, against the committed nesting manifest.
    match fs::read_to_string(root.join(rules::lock_order::MANIFEST_PATH)) {
        Ok(text) => {
            let (edges, parse_findings) = rules::lock_order::parse_manifest(&text);
            findings.extend(parse_findings);
            findings.extend(rules::lock_order::check(&files, &edges));
        }
        Err(e) => findings.push(Finding::deny(
            "lock-order",
            rules::lock_order::MANIFEST_PATH,
            0,
            format!("the lock-order manifest is unreadable ({e}) — nesting cannot be checked"),
        )),
    }

    // Rule 7: no blocking calls reachable from the reactor event loop.
    match fs::read_to_string(root.join(rules::reactor_blocking::ALLOWLIST_PATH)) {
        Ok(text) => {
            let (entries, parse_findings) = rules::reactor_blocking::parse_allowlist(&text);
            findings.extend(parse_findings);
            findings.extend(rules::reactor_blocking::check(&files, &entries));
        }
        Err(e) => findings.push(Finding::deny(
            "reactor-blocking",
            rules::reactor_blocking::ALLOWLIST_PATH,
            0,
            format!("the reactor allowlist is unreadable ({e}) — blocking sites cannot be vetted"),
        )),
    }

    // Rule 8: the vendored FFI surface matches its manifest.
    match fs::read_to_string(root.join(rules::ffi_surface::MANIFEST_PATH)) {
        Ok(text) => {
            let (entries, parse_findings) = rules::ffi_surface::parse_manifest(&text);
            findings.extend(parse_findings);
            findings.extend(rules::ffi_surface::check(&files, &entries));
        }
        Err(e) => findings.push(Finding::deny(
            "ffi-surface",
            rules::ffi_surface::MANIFEST_PATH,
            0,
            format!("the FFI manifest is unreadable ({e}) — foreign signatures are unreviewed"),
        )),
    }

    Ok(Report::new(findings))
}

/// The `name = "…"` of a package manifest.
fn package_name(manifest: &Path) -> Result<String, AuditError> {
    let text = fs::read_to_string(manifest).map_err(|e| io_err("reading", manifest, e))?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            if let Some(value) = rest.trim().strip_prefix('=') {
                return Ok(value.trim().trim_matches('"').to_owned());
            }
        }
    }
    Err(AuditError(format!(
        "no package name in {}",
        manifest.display()
    )))
}

/// The sorted subdirectories of `dir` (deterministic walk order).
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err("listing", dir, e))?;
    let mut dirs = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("listing", dir, e))?;
        if entry.path().is_dir() {
            dirs.push(entry.path());
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// Recursively scans every `.rs` file under `dir` into `files`, sorted.
fn collect_rs_files(
    dir: &Path,
    root: &Path,
    files: &mut Vec<ScannedFile>,
) -> Result<(), AuditError> {
    let entries = fs::read_dir(dir).map_err(|e| io_err("listing", dir, e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| io_err("listing", dir, e))?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, root, files)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let source = fs::read_to_string(&path).map_err(|e| io_err("reading", &path, e))?;
            files.push(ScannedFile::new(relative(&path, root), &source));
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The audit's own integration test: the real workspace must be
    /// clean. This is the same invariant ci.sh gates on, checked from
    /// inside `cargo test` so a violation fails the suite even when
    /// ci.sh is skipped.
    #[test]
    fn the_workspace_tree_is_clean() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("the audit crate lives inside the workspace");
        let report = audit_workspace(&root).expect("workspace is readable");
        assert!(
            !report.fails(true),
            "the tree has audit findings:\n{}",
            report.to_text()
        );
    }

    #[test]
    fn find_workspace_root_walks_up() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("found");
        assert!(root.join("Cargo.lock").is_file());
        assert!(here.starts_with(&root));
    }

    #[test]
    fn missing_root_is_an_error_not_a_panic() {
        let e = find_workspace_root(Path::new("/")).expect_err("no workspace at /");
        assert!(e.to_string().contains("no workspace"));
    }
}
