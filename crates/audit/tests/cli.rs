//! End-to-end tests of the `zeroconf-audit` binary: exit codes and the
//! `--json` findings schema, run against the real workspace and against
//! synthetic trees seeded with one violation per rule.
//!
//! The JSON schema (field names, stable rule codes) is part of the tool's
//! contract — CI tooling keys on it — so it is pinned here the same way
//! `const_drift` pins the wire constants.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use zeroconf_audit::rules::RULE_CODES;

fn audit_bin() -> &'static str {
    env!("CARGO_BIN_EXE_zeroconf-audit")
}

fn run(args: &[&str]) -> Output {
    Command::new(audit_bin())
        .args(args)
        .output()
        .expect("the audit binary runs")
}

fn workspace_root() -> PathBuf {
    zeroconf_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the audit crate lives inside the workspace")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("audit exits, not signals")
}

/// A scratch workspace with one library crate, `crates/audit`-style
/// manifest files, and whatever extra sources the test seeds. It is
/// deliberately *not* a full zeroconf tree, so the baseline run has
/// findings (missing pinned constants, no lockfile manifest paths exist
/// under it) — the tests therefore compare seeded runs against a
/// baseline of the same tree, isolating the one rule under test.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(label: &str) -> Scratch {
        let root =
            std::env::temp_dir().join(format!("zeroconf-audit-cli-{}-{label}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).expect("scratch tree");
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\n[package]\nname = \"scratch-root\"\n",
        )
        .expect("root manifest");
        fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\n",
        )
        .expect("demo manifest");
        fs::write(
            root.join("crates/demo/src/lib.rs"),
            "#![forbid(unsafe_code)]\n//! Demo.\n",
        )
        .expect("demo lib");
        let scratch = Scratch { root };
        scratch.write("Cargo.lock", "version = 3\n");
        scratch.write("crates/audit/deps-manifest.txt", "");
        scratch.write("crates/audit/no-panic-allowlist.txt", "");
        scratch.write("crates/audit/sync-sites.txt", "");
        scratch.write("crates/audit/lock-order.txt", "");
        scratch.write("crates/audit/reactor-allowlist.txt", "");
        scratch.write("crates/audit/ffi-manifest.txt", "");
        scratch
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdirs");
        fs::write(path, content).expect("write scratch file");
    }

    fn json_rules(&self) -> Vec<String> {
        let out = run(&["--root", self.root.to_str().expect("utf-8 path"), "--json"]);
        assert_eq!(exit_code(&out), 1, "scratch trees always have findings");
        extract_rules(&String::from_utf8_lossy(&out.stdout))
    }

    /// Whether seeding produced a finding of `rule` that the baseline
    /// tree does not already have.
    fn has_rule(&self, rule: &str) -> bool {
        self.json_rules().iter().any(|r| r == rule)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// Pulls every `"rule":"…"` value out of a JSON report.
fn extract_rules(json: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"rule\":\"") {
        rest = &rest[at + 8..];
        let end = rest.find('"').expect("closing quote");
        rules.push(rest[..end].to_owned());
        rest = &rest[end..];
    }
    rules
}

#[test]
fn the_real_workspace_is_clean_and_exits_zero() {
    let root = workspace_root();
    let out = run(&[
        "--root",
        root.to_str().expect("utf-8 path"),
        "--deny-warnings",
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 finding(s)"), "{text}");
}

#[test]
fn an_unreadable_root_exits_two() {
    let out = run(&["--root", "/nonexistent/zeroconf-audit-test"]);
    assert_eq!(exit_code(&out), 2);
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn an_unknown_flag_exits_two() {
    let out = run(&["--frobnicate"]);
    assert_eq!(exit_code(&out), 2);
}

#[test]
fn json_findings_carry_the_pinned_schema_and_stable_rule_codes() {
    let scratch = Scratch::new("schema");
    let out = run(&["--root", scratch.root.to_str().expect("utf-8"), "--json"]);
    assert_eq!(exit_code(&out), 1);
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.trim_start().starts_with('['), "{json}");
    // Schema: every finding object carries exactly these five keys.
    for key in [
        "\"rule\":",
        "\"severity\":",
        "\"path\":",
        "\"line\":",
        "\"message\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // Every emitted rule code is from the pinned set.
    let rules = extract_rules(&json);
    assert!(!rules.is_empty());
    for rule in &rules {
        assert!(
            RULE_CODES.contains(&rule.as_str()),
            "unpinned rule code {rule}"
        );
    }
    // RULE_CODES itself stays sorted, so diffs against it are stable.
    let mut sorted = RULE_CODES.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, RULE_CODES);
}

#[test]
fn deny_warnings_promotes_warn_findings_in_the_output() {
    let scratch = Scratch::new("promote");
    // An unused no-panic allowlist entry is a warning…
    scratch.write(
        "crates/audit/no-panic-allowlist.txt",
        "crates/demo/src/lib.rs | 999 | never matches anything\n",
    );
    let root = scratch.root.to_str().expect("utf-8");
    let plain = run(&["--root", root]);
    assert!(String::from_utf8_lossy(&plain.stdout).contains("warn: [no-panic]"));
    // …and a denial under --deny-warnings.
    let strict = run(&["--root", root, "--deny-warnings"]);
    assert_eq!(exit_code(&strict), 1);
    let text = String::from_utf8_lossy(&strict.stdout);
    assert!(text.contains("deny: [no-panic]"), "{text}");
    assert!(!text.contains("warn: [no-panic]"), "{text}");
}

#[test]
fn a_seeded_unjustified_relaxed_ordering_is_caught() {
    let scratch = Scratch::new("ordering");
    scratch.write(
        "crates/demo/src/atomics.rs",
        "pub fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    );
    assert!(scratch.has_rule("atomic-ordering"));
}

#[test]
fn a_seeded_unmanifested_lock_nesting_is_caught() {
    let scratch = Scratch::new("lockorder");
    scratch.write(
        "crates/demo/src/locks.rs",
        "pub fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {\n    let x = a.lock();\n    let y = b.lock();\n}\n",
    );
    assert!(scratch.has_rule("lock-order"));
}

#[test]
fn a_seeded_blocking_call_in_reactor_reach_is_caught() {
    let scratch = Scratch::new("reactor");
    scratch.write(
        "crates/serve/Cargo.toml",
        "[package]\nname = \"demo-serve\"\n",
    );
    scratch.write(
        "crates/serve/src/lib.rs",
        "#![forbid(unsafe_code)]\n//! Demo serve.\n",
    );
    scratch.write(
        "crates/serve/src/listener.rs",
        "pub fn run() {\n    std::thread::sleep(std::time::Duration::from_secs(1));\n}\n",
    );
    assert!(scratch.has_rule("reactor-blocking"));
}

#[test]
fn a_seeded_unmanifested_extern_fn_is_caught() {
    let scratch = Scratch::new("ffi");
    // extern "C" also trips the unsafe-allowlist rule in a non-allowlisted
    // file; the ffi-surface finding must appear independently.
    scratch.write(
        "crates/demo/src/ffi.rs",
        "extern \"C\" {\n    fn getpid() -> i32;\n}\n",
    );
    assert!(scratch.has_rule("ffi-surface"));
}
