//! Command-line interface to the zeroconf cost model.
//!
//! The `zeroconf` binary exposes the reproduction's main workflows to the
//! shell:
//!
//! ```text
//! zeroconf cost      --hosts 1000 --loss 1e-15 --rate 10 --delay 1 \
//!                    --probe-cost 2 --error-cost 1e35 --probes 4 --listen 2
//! zeroconf optimize  <scenario flags>
//! zeroconf frontier  <scenario flags> [--budget 1e-40]
//! zeroconf calibrate <network flags> --target-probes 4 --target-listen 2
//! zeroconf simulate  <scenario flags> --probes 4 --listen 2 --trials 100000 --seed 7
//! zeroconf engine    [--workers N] [--cache N] [--cache-dir PATH] [--inflight N]
//!                    [--kernel scalar|simd|auto] [--populate] [--stats]
//!                    # JSON-lines on stdin/stdout
//! zeroconf serve     (--tcp ADDR | --unix PATH)... [--inflight N] [--max-conns N]
//!                    # socket daemon: many clients, one shared engine
//! zeroconf audit     [--deny-warnings] [--json] [--root PATH]
//! ```
//!
//! All commands share the scenario flags (`--hosts` or `--occupancy`,
//! `--probe-cost`, `--error-cost`, `--loss`, `--rate`, `--delay`). The
//! library half of the crate (this module) does the parsing and rendering
//! and is fully unit-tested; `main.rs` is a two-line shim.

#![forbid(unsafe_code)]

use std::sync::Arc;

use zeroconf_cost::calibrate::{self, CalibrateConfig};
use zeroconf_cost::metrics;
use zeroconf_cost::optimize::{self, OptimizeConfig};
use zeroconf_cost::tradeoff::{self, TradeoffConfig};
use zeroconf_cost::Scenario;
use zeroconf_dist::DefectiveExponential;
use zeroconf_rng::rngs::StdRng;
use zeroconf_rng::SeedableRng;
use zeroconf_sim::protocol::{self, ProtocolConfig};

/// A fatal CLI error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError(message.into())
}

/// Flag multiset parsed from the raw arguments.
#[derive(Debug, Clone, Default)]
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let name = flag
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected a --flag, got '{flag}'")))?;
            let value = iter
                .next()
                .ok_or_else(|| err(format!("--{name} requires a value")))?;
            pairs.push((name.to_owned(), value.clone()));
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn number(&self, name: &str) -> Result<Option<f64>, CliError> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<f64>()
                .map(Some)
                .map_err(|_| err(format!("--{name} expects a number, got '{raw}'"))),
        }
    }

    fn require(&self, name: &str) -> Result<f64, CliError> {
        self.number(name)?
            .ok_or_else(|| err(format!("missing required flag --{name}")))
    }

    fn unknown_flags(&self, known: &[&str]) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(n, _)| !known.contains(&n.as_str()))
            .map(|(n, _)| format!("--{n}"))
            .collect()
    }
}

const SCENARIO_FLAGS: [&str; 7] = [
    "hosts",
    "occupancy",
    "probe-cost",
    "error-cost",
    "loss",
    "rate",
    "delay",
];

fn scenario_from(flags: &Flags) -> Result<Scenario, CliError> {
    let occupancy = match (flags.number("hosts")?, flags.number("occupancy")?) {
        (Some(hosts), None) => hosts / zeroconf_cost::ADDRESS_SPACE_SIZE as f64,
        (None, Some(q)) => q,
        (Some(_), Some(_)) => return Err(err("--hosts and --occupancy are mutually exclusive")),
        (None, None) => return Err(err("one of --hosts or --occupancy is required")),
    };
    let probe_cost = flags.require("probe-cost")?;
    let error_cost = flags.require("error-cost")?;
    let loss = flags.require("loss")?;
    let rate = flags.require("rate")?;
    let delay = flags.require("delay")?;
    let dist = DefectiveExponential::from_loss(loss, rate, delay)
        .map_err(|e| err(format!("invalid reply-time parameters: {e}")))?;
    Scenario::builder()
        .occupancy(occupancy)
        .probe_cost(probe_cost)
        .error_cost(error_cost)
        .reply_time(Arc::new(dist))
        .build()
        .map_err(|e| err(format!("invalid scenario: {e}")))
}

/// Executes a full command line (without the program name) and returns the
/// rendered output.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message for unknown commands,
/// malformed flags or failing computations.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args.split_first().ok_or_else(|| err(usage()))?;
    match command.as_str() {
        "cost" => cmd_cost(&Flags::parse(rest)?),
        "optimize" => cmd_optimize(&Flags::parse(rest)?),
        "frontier" => cmd_frontier(&Flags::parse(rest)?),
        "calibrate" => cmd_calibrate(&Flags::parse(rest)?),
        "simulate" => cmd_simulate(&Flags::parse(rest)?),
        "engine" => cmd_engine(rest),
        "serve" => cmd_serve(rest),
        "audit" => cmd_audit(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(err(format!("unknown command '{other}'\n{}", usage()))),
    }
}

/// Options of the `engine` subcommand.
#[derive(Debug, Clone)]
struct EngineOptions {
    workers: usize,
    cache_tables: usize,
    cache_dir: Option<std::path::PathBuf>,
    mmap_spills: bool,
    populate: bool,
    kernel: zeroconf_engine::KernelChoice,
    inflight: usize,
    emit_stats: bool,
}

fn engine_options(args: &[String]) -> Result<EngineOptions, CliError> {
    // `--stats`, `--mmap` and `--populate` are bare switches; strip them
    // before the value-flag parser.
    let mut emit_stats = false;
    let mut mmap_spills = false;
    let mut populate = false;
    let positional: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--stats" => {
                emit_stats = true;
                false
            }
            "--mmap" => {
                mmap_spills = true;
                false
            }
            "--populate" => {
                populate = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let flags = Flags::parse(&positional)?;
    let unknown = flags.unknown_flags(&[
        "workers",
        "cache",
        "cache-dir",
        "inflight",
        "mmap",
        "kernel",
    ]);
    if !unknown.is_empty() {
        return Err(err(format!("unknown flags: {}", unknown.join(", "))));
    }
    let defaults = zeroconf_engine::EngineConfig::default();
    Ok(EngineOptions {
        workers: flags
            .number("workers")?
            .map_or(defaults.workers, |w| w as usize),
        cache_tables: flags
            .number("cache")?
            .map_or(defaults.cache_tables, |c| c as usize),
        cache_dir: flags.get("cache-dir").map(std::path::PathBuf::from),
        mmap_spills,
        populate,
        kernel: parse_kernel_flag(flags.get("kernel"))?,
        inflight: flags.number("inflight")?.map_or(1, |n| n as usize),
        emit_stats,
    })
}

/// Parses `--kernel scalar|simd|auto` (default `auto`).
fn parse_kernel_flag(value: Option<&str>) -> Result<zeroconf_engine::KernelChoice, CliError> {
    match value {
        None => Ok(zeroconf_engine::KernelChoice::default()),
        Some(raw) => zeroconf_engine::KernelChoice::parse(raw).ok_or_else(|| {
            err(format!(
                "--kernel must be scalar, simd or auto (got '{raw}')"
            ))
        }),
    }
}

/// Runs a JSON-lines engine session over `input`, one response line per
/// request line (see [`zeroconf_engine::wire`] for the schema). Factored
/// off the stdin path so tests can drive it with strings.
///
/// With `--inflight 1` (the default) responses come back in input order,
/// one per line. With `--inflight N > 1` up to `N` requests are pipelined
/// and responses arrive in **completion order**, keyed by their `id`.
///
/// # Errors
///
/// Returns [`CliError`] only for malformed *flags*; malformed request
/// lines become `{"error": …}` response lines and never end the session.
pub fn engine_process(input: &str, args: &[String]) -> Result<String, CliError> {
    let options = engine_options(args)?;
    let engine = zeroconf_engine::Engine::new(zeroconf_engine::EngineConfig {
        workers: options.workers.max(1),
        cache_tables: options.cache_tables.max(1),
        cache_dir: options.cache_dir.clone(),
        mmap_spills: options.mmap_spills,
        populate: options.populate,
        kernel: options.kernel,
        ..zeroconf_engine::EngineConfig::default()
    });
    let mut out = String::new();
    let push = |lines: Vec<String>, out: &mut String| {
        for line in lines {
            out.push_str(&line);
            out.push('\n');
        }
    };
    let mut session = zeroconf_engine::wire::PipelinedSession::new(
        engine,
        zeroconf_engine::PipelineConfig::with_depth(options.inflight.max(1)),
    );
    if options.inflight > 1 {
        for line in input.lines() {
            push(session.submit_line(line), &mut out);
            push(session.poll_responses(), &mut out);
        }
        push(session.drain(), &mut out);
    } else {
        // Depth 1, drained per line: in-order blocking, one response per
        // request line — what the deprecated `Session` shim provided.
        for line in input.lines() {
            push(session.submit_line(line), &mut out);
            push(session.drain(), &mut out);
        }
    }
    if options.emit_stats {
        out.push_str(&session.stats_line());
        out.push('\n');
    }
    Ok(out)
}

fn cmd_engine(args: &[String]) -> Result<String, CliError> {
    // Validate flags before consuming stdin so flag errors are immediate.
    engine_options(args)?;
    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
        .map_err(|e| err(format!("reading stdin: {e}")))?;
    let mut out = engine_process(&input, args)?;
    // `main` prints with a trailing newline of its own.
    if out.ends_with('\n') {
        out.pop();
    }
    Ok(out)
}

/// The `serve` subcommand: the socket daemon, run in process. Blocks
/// until SIGTERM/SIGINT drains it; the returned summary is printed on
/// exit. Startup `listening <scheme:addr>` lines go to stdout directly
/// so clients can connect while the command is still running.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut stdout = std::io::stdout();
    zeroconf_serve::run_cli(args, &mut stdout).map_err(|e| err(e.to_string()))
}

/// The `audit` subcommand: the workspace static-analysis gate, run in
/// process (the same engine as the standalone `zeroconf-audit` binary).
/// Findings come back as the error so the process exits non-zero.
fn cmd_audit(args: &[String]) -> Result<String, CliError> {
    let mut deny_warnings = false;
    let mut json = false;
    let mut root: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--json" => json = true,
            "--root" => {
                root = Some(std::path::PathBuf::from(
                    iter.next().ok_or_else(|| err("--root requires a path"))?,
                ));
            }
            other => return Err(err(format!("unknown audit flag '{other}'"))),
        }
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| err(format!("cannot determine working directory: {e}")))?;
            zeroconf_audit::find_workspace_root(&cwd).map_err(|e| err(e.to_string()))?
        }
    };
    let report = zeroconf_audit::audit_workspace(&root).map_err(|e| err(e.to_string()))?;
    let rendered = if json {
        report.to_json()
    } else {
        report.to_text()
    };
    if report.fails(deny_warnings) {
        Err(CliError(rendered))
    } else {
        Ok(rendered)
    }
}

/// The usage text.
pub fn usage() -> String {
    "usage: zeroconf <command> [flags]\n\
     commands:\n\
     \u{20}  cost       evaluate C(n, r), E(n, r) and protocol metrics\n\
     \u{20}  optimize   find the cost-optimal (n, r)\n\
     \u{20}  frontier   print the cost/reliability Pareto frontier\n\
     \u{20}  calibrate  solve for (E, c) making a target (n, r) optimal\n\
     \u{20}  simulate   Monte-Carlo protocol runs with latency percentiles\n\
     \u{20}  engine     JSON-lines verbs on stdin/stdout: sweep, rescore,\n\
     \u{20}             calibrate and frontier over one warm statistic cache\n\
     \u{20}  serve      socket daemon: many clients, one shared engine and cache\n\
     \u{20}  audit      workspace static-analysis gate (unsafe, panics, invariants)\n\
     scenario flags (all commands):\n\
     \u{20}  --hosts N | --occupancy Q, --probe-cost C, --error-cost E,\n\
     \u{20}  --loss P, --rate LAMBDA, --delay D\n\
     command flags:\n\
     \u{20}  cost/simulate: --probes N --listen R\n\
     \u{20}  simulate: --trials K [--seed S]\n\
     \u{20}  frontier: [--budget P] [--n-max N]\n\
     \u{20}  calibrate: --target-probes N --target-listen R\n\
     \u{20}  optimize: [--n-max N] [--r-max R]\n\
     \u{20}  engine: [--workers N] [--cache TABLES] [--cache-dir PATH] [--mmap]\n\
     \u{20}          [--populate] [--kernel scalar|simd|auto] [--inflight N] [--stats]\n\
     \u{20}  serve: (--tcp ADDR | --unix PATH)... [--workers N] [--cache TABLES]\n\
     \u{20}         [--cache-dir PATH] [--mmap] [--populate] [--kernel scalar|simd|auto]\n\
     \u{20}         [--inflight N] [--max-conns N]\n\
     \u{20}  audit: [--deny-warnings] [--json] [--root PATH]\n\
     example:\n\
     \u{20}  zeroconf optimize --hosts 1000 --probe-cost 2 --error-cost 1e35 \\\n\
     \u{20}           --loss 1e-15 --rate 10 --delay 1"
        .to_owned()
}

fn check_unknown(flags: &Flags, extra: &[&str]) -> Result<(), CliError> {
    let mut known: Vec<&str> = SCENARIO_FLAGS.to_vec();
    known.extend_from_slice(extra);
    let unknown = flags.unknown_flags(&known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(err(format!("unknown flags: {}", unknown.join(", "))))
    }
}

fn cmd_cost(flags: &Flags) -> Result<String, CliError> {
    check_unknown(flags, &["probes", "listen"])?;
    let scenario = scenario_from(flags)?;
    let n = flags.require("probes")? as u32;
    let r = flags.require("listen")?;
    let cost = scenario.mean_cost(n, r).map_err(|e| err(e.to_string()))?;
    let risk = scenario
        .error_probability(n, r)
        .map_err(|e| err(e.to_string()))?;
    let m = metrics::protocol_metrics(&scenario, n, r).map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "configuration: n = {n}, r = {r}\n\
         mean total cost        C(n, r) = {cost:.6}\n\
         collision probability  E(n, r) = {risk:.6e}\n\
         expected attempts              = {:.6}\n\
         expected probes sent           = {:.6}\n\
         expected listening (s)         = {:.6}",
        m.expected_attempts, m.expected_probes, m.expected_listening_seconds
    ))
}

fn cmd_optimize(flags: &Flags) -> Result<String, CliError> {
    check_unknown(flags, &["n-max", "r-max"])?;
    let scenario = scenario_from(flags)?;
    let config = OptimizeConfig {
        n_max: flags.number("n-max")?.unwrap_or(16.0) as u32,
        r_max: flags.number("r-max")?.unwrap_or(60.0),
        grid_points: 500,
        ..OptimizeConfig::default()
    };
    let optimum = optimize::joint_optimum(&scenario, &config).map_err(|e| err(e.to_string()))?;
    let mut out = format!(
        "joint optimum: n = {}, r = {:.4}\n\
         cost at optimum          = {:.6}\n\
         collision probability    = {:.6e}\n\
         total listening time (s) = {:.4}\n\
         minimal useful probes ν  = {}\n\
         per-n optima:\n",
        optimum.n,
        optimum.r,
        optimum.cost,
        optimum.error_probability,
        optimum.n as f64 * optimum.r,
        scenario
            .nu_lower_bound()
            .map_or("-".to_owned(), |nu| nu.to_string()),
    );
    for o in &optimum.per_probe_count {
        out.push_str(&format!(
            "  n = {:>2}: r_opt = {:>8.4}, cost = {:.6}\n",
            o.n, o.r, o.cost
        ));
    }
    Ok(out)
}

fn cmd_frontier(flags: &Flags) -> Result<String, CliError> {
    check_unknown(flags, &["budget", "n-max"])?;
    let scenario = scenario_from(flags)?;
    let config = TradeoffConfig {
        n_max: flags.number("n-max")?.unwrap_or(10.0) as u32,
        ..TradeoffConfig::default()
    };
    let frontier = tradeoff::pareto_frontier(&scenario, &config).map_err(|e| err(e.to_string()))?;
    let mut out = format!(
        "{} Pareto-optimal configurations (cost ascending):\n{:>12} {:>4} {:>9} {:>14}\n",
        frontier.len(),
        "cost",
        "n",
        "r",
        "P(collision)"
    );
    for p in frontier.iter().step_by((frontier.len() / 20).max(1)) {
        out.push_str(&format!(
            "{:>12.4} {:>4} {:>9.3} {:>14.4e}\n",
            p.cost, p.n, p.r, p.error_probability
        ));
    }
    if let Some(budget) = flags.number("budget")? {
        match tradeoff::cheapest_within_error_budget(&scenario, &config, budget) {
            Ok(p) => out.push_str(&format!(
                "cheapest with P(collision) <= {budget:e}: n = {}, r = {:.4}, cost = {:.4}\n",
                p.n, p.r, p.cost
            )),
            Err(_) => out.push_str(&format!(
                "no configuration on the grid meets P(collision) <= {budget:e}\n"
            )),
        }
    }
    Ok(out)
}

fn cmd_calibrate(flags: &Flags) -> Result<String, CliError> {
    check_unknown(flags, &["target-probes", "target-listen", "r-max"])?;
    // For calibration the cost flags are the unknowns; require dummies to
    // be absent and build the scenario with placeholders.
    let mut base_flags = flags.clone();
    if flags.get("probe-cost").is_none() {
        base_flags.pairs.push(("probe-cost".into(), "1".into()));
    }
    if flags.get("error-cost").is_none() {
        base_flags.pairs.push(("error-cost".into(), "1".into()));
    }
    let scenario = scenario_from(&base_flags)?;
    let n = flags.require("target-probes")? as u32;
    let r = flags.require("target-listen")?;
    let config = CalibrateConfig {
        optimize: OptimizeConfig {
            r_max: flags.number("r-max")?.unwrap_or(30.0f64.max(10.0 * r)),
            grid_points: 400,
            n_max: 16,
            ..OptimizeConfig::default()
        },
        ..CalibrateConfig::default()
    };
    let result = calibrate::calibrate(&scenario, n, r, &config).map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "costs making (n = {n}, r = {r}) the joint optimum:\n\
         collision cost E = {:.6e}\n\
         probe postage  c = {:.6}\n\
         verification: calibrated scenario's optimum is n = {}, r = {:.4} \
         (on the n <-> n+1 boundary)",
        result.error_cost, result.probe_cost, result.verified_optimum.n, result.verified_optimum.r
    ))
}

fn cmd_simulate(flags: &Flags) -> Result<String, CliError> {
    check_unknown(flags, &["probes", "listen", "trials", "seed"])?;
    let scenario = scenario_from(flags)?;
    let n = flags.require("probes")? as u32;
    let r = flags.require("listen")?;
    let trials = flags.number("trials")?.unwrap_or(100_000.0) as u64;
    let seed = flags.number("seed")?.unwrap_or(2003.0) as u64;
    let config = ProtocolConfig::builder()
        .probes(n)
        .listen_period(r)
        .probe_cost(scenario.probe_cost())
        .error_cost(scenario.error_cost())
        .occupancy(scenario.occupancy())
        .reply_time(scenario.reply_time().clone())
        .build()
        .map_err(|e| err(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let summary = protocol::run_many(&config, trials, &mut rng).map_err(|e| err(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut profile = protocol::latency_profile(&config, trials.min(100_000), &mut rng)
        .map_err(|e| err(e.to_string()))?;
    let exact = scenario.mean_cost(n, r).map_err(|e| err(e.to_string()))?;
    let (lo, hi) = summary.collision_interval_95();
    Ok(format!(
        "{trials} simulated runs (seed {seed}):\n\
         mean cost       = {:.6}  (model: {:.6})\n\
         collision rate  = {:.6e}  (Wilson 95%: [{:.3e}, {:.3e}])\n\
         mean attempts   = {:.4}\n\
         mean probes     = {:.4}\n\
         latency median  = {:.4} s\n\
         latency p95     = {:.4} s\n\
         latency p99     = {:.4} s",
        summary.cost.mean(),
        exact,
        summary.collision_rate(),
        lo,
        hi,
        summary.attempts.mean(),
        summary.probes_sent.mean(),
        profile.elapsed_seconds.median().unwrap_or(f64::NAN),
        profile.elapsed_seconds.p95().unwrap_or(f64::NAN),
        profile.elapsed_seconds.p99().unwrap_or(f64::NAN),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    const SCENARIO: &str = "--hosts 1000 --probe-cost 2 --error-cost 1e35 \
                            --loss 1e-15 --rate 10 --delay 1";

    #[test]
    fn help_prints_usage() {
        let out = run(&args("help")).unwrap();
        assert!(out.contains("usage"));
        assert!(out.contains("optimize"));
        assert!(out.contains("audit"));
    }

    #[test]
    fn audit_passes_on_the_workspace_tree() {
        let out = run(&args("audit --deny-warnings")).unwrap();
        assert!(out.contains("0 finding(s)"), "{out}");
    }

    #[test]
    fn audit_rejects_unknown_flags_and_missing_root_values() {
        let e = run(&args("audit --fix")).unwrap_err();
        assert!(e.0.contains("unknown audit flag"));
        let e = run(&args("audit --root")).unwrap_err();
        assert!(e.0.contains("--root requires a path"));
    }

    #[test]
    fn audit_json_renders_an_array() {
        let out = run(&args("audit --json")).unwrap();
        assert_eq!(out, "[]", "a clean tree renders an empty JSON array");
    }

    #[test]
    fn empty_invocation_shows_usage_error() {
        let e = run(&[]).unwrap_err();
        assert!(e.0.contains("usage"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = run(&args("explode")).unwrap_err();
        assert!(e.0.contains("unknown command 'explode'"));
    }

    #[test]
    fn cost_command_evaluates_the_paper_configuration() {
        let out = run(&args(&format!("cost {SCENARIO} --probes 4 --listen 2"))).unwrap();
        assert!(out.contains("16.06"), "{out}");
        assert!(out.contains("e-50"), "{out}");
        assert!(out.contains("expected probes"));
    }

    #[test]
    fn optimize_command_finds_n_three() {
        let out = run(&args(&format!("optimize {SCENARIO}"))).unwrap();
        assert!(out.contains("n = 3"), "{out}");
        assert!(out.contains("ν  = 3") || out.contains("= 3"), "{out}");
        assert!(out.contains("per-n optima"));
    }

    #[test]
    fn frontier_command_lists_configurations() {
        let out = run(&args(&format!("frontier {SCENARIO} --budget 1e-40"))).unwrap();
        assert!(out.contains("Pareto-optimal"), "{out}");
        assert!(out.contains("cheapest with"), "{out}");
    }

    #[test]
    fn simulate_command_reports_percentiles() {
        let out = run(&args(
            "simulate --occupancy 0.3 --probe-cost 1.5 --error-cost 50 \
             --loss 0.2 --rate 3 --delay 0.2 --probes 3 --listen 0.8 \
             --trials 20000 --seed 5",
        ))
        .unwrap();
        assert!(out.contains("latency p95"), "{out}");
        assert!(out.contains("mean cost"), "{out}");
    }

    #[test]
    fn calibrate_command_reproduces_section_4_5_magnitudes() {
        let out = run(&args(
            "calibrate --hosts 1000 --loss 1e-5 --rate 10 --delay 1 \
             --target-probes 4 --target-listen 2",
        ))
        .unwrap();
        assert!(out.contains("e20"), "{out}");
    }

    const ENGINE_SWEEP: &str = "{\"id\":\"s1\",\"scenario\":{\"hosts\":1000,\"probe_cost\":2.0,\
        \"error_cost\":1e35,\"reply_time\":{\"kind\":\"exponential\",\"loss\":1e-15,\
        \"rate\":10.0,\"delay\":1.0}},\"grid\":{\"n_max\":4,\"r\":[1.0,2.0,3.0]}}";

    #[test]
    fn engine_session_answers_sweeps_and_rescores() {
        let input = format!(
            "{ENGINE_SWEEP}\n{{\"id\":\"s2\",\"rescore\":{{\"of\":\"s1\",\"error_cost\":1e30}}}}\n"
        );
        let out = engine_process(&input, &args("--workers 2 --stats")).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].contains("\"id\":\"s1\""), "{}", lines[0]);
        assert!(lines[0].contains("\"cache_misses\":3"), "{}", lines[0]);
        assert!(lines[1].contains("\"cache_misses\":0"), "{}", lines[1]);
        assert!(lines[2].contains("\"requests\":2"), "{}", lines[2]);
        assert!(lines[2].contains("cells_per_worker"), "{}", lines[2]);
    }

    #[test]
    fn engine_pipelined_session_answers_every_id() {
        // Three sweeps through the pipelined path: every id answered
        // exactly once, stats carries the pipeline latency block.
        let input = format!(
            "{}\n{}\n{}\n",
            ENGINE_SWEEP,
            ENGINE_SWEEP.replace("\"id\":\"s1\"", "\"id\":\"s2\""),
            ENGINE_SWEEP.replace("\"id\":\"s1\"", "\"id\":\"s3\""),
        );
        let out = engine_process(&input, &args("--workers 2 --inflight 3 --stats")).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        for id in ["s1", "s2", "s3"] {
            let matching: Vec<&&str> = lines
                .iter()
                .filter(|l| l.contains(&format!("\"id\":\"{id}\"")))
                .collect();
            assert_eq!(matching.len(), 1, "one response for {id}: {out}");
            assert!(matching[0].contains("\"cells\""), "{}", matching[0]);
        }
        let stats = lines[3];
        assert!(stats.contains("\"pipeline\":{\"depth\":3"), "{stats}");
        assert!(stats.contains("\"submitted\":3"), "{stats}");
        assert!(stats.contains("service_ns_total"), "{stats}");
    }

    #[test]
    fn engine_pipelined_path_matches_blocking_path() {
        // The pipelined codec must not change a single byte of a
        // response body — only the measured wall time may differ.
        fn blank_wall_ns(out: &str) -> String {
            let mut out = out.to_owned();
            let mut from = 0;
            while let Some(hit) = out[from..].find("\"wall_ns\":") {
                let digits = from + hit + "\"wall_ns\":".len();
                let end = out[digits..]
                    .find(|c: char| !c.is_ascii_digit())
                    .map_or(out.len(), |k| digits + k);
                out.replace_range(digits..end, "_");
                from = digits;
            }
            out
        }
        let serial = engine_process(ENGINE_SWEEP, &args("--workers 1")).unwrap();
        let pipelined = engine_process(ENGINE_SWEEP, &args("--workers 1 --inflight 4")).unwrap();
        assert_eq!(blank_wall_ns(&serial), blank_wall_ns(&pipelined));
    }

    #[test]
    fn engine_cache_dir_persists_tables_across_processes() {
        // Two separate engine sessions pointed at one spill directory:
        // the second must serve every π-table from disk, so its sweep
        // reports zero cache misses and byte-identical cell payloads.
        let dir =
            std::env::temp_dir().join(format!("zeroconf-cli-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let flags = args(&format!("--workers 1 --cache-dir {}", dir.display()));
        let cold = engine_process(ENGINE_SWEEP, &flags).unwrap();
        assert!(cold.contains("\"cache_misses\":3"), "{cold}");
        let warm = engine_process(ENGINE_SWEEP, &flags).unwrap();
        assert!(warm.contains("\"cache_misses\":0"), "{warm}");
        assert!(warm.contains("\"cache_hits\":3"), "{warm}");
        let body = |out: &str| {
            let cells = out.split("\"cells\":").nth(1).expect("response has cells");
            cells
                .split("],\"stats\"")
                .next()
                .expect("cells precede stats")
                .to_owned()
        };
        assert_eq!(body(&cold), body(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_bad_lines_become_error_responses() {
        let out = engine_process("garbage\n", &[]).unwrap();
        assert!(out.contains("\"error\""), "{out}");
    }

    #[test]
    fn engine_rejects_unknown_flags() {
        let e = engine_process("", &args("--bogus 1")).unwrap_err();
        assert!(e.0.contains("--bogus"), "{}", e.0);
    }

    #[test]
    fn engine_matches_cost_command_numbers() {
        // The wire mean_cost for (n = 4, r = 2) must round to the 16.06…
        // the `cost` command prints for the same paper scenario.
        let out = engine_process(ENGINE_SWEEP, &args("--workers 1")).unwrap();
        let direct = run(&args(&format!("cost {SCENARIO} --probes 4 --listen 2"))).unwrap();
        assert!(direct.contains("16.06"), "{direct}");
        assert!(
            out.contains("\"n\":4,\"r\":2.0,\"mean_cost\":16.06"),
            "{out}"
        );
    }

    #[test]
    fn missing_required_flags_are_reported() {
        let e = run(&args("cost --hosts 1000")).unwrap_err();
        assert!(e.0.contains("missing required flag"), "{}", e.0);
        let e = run(&args(&format!("cost {SCENARIO}"))).unwrap_err();
        assert!(
            e.0.contains("--probes") || e.0.contains("probes"),
            "{}",
            e.0
        );
    }

    #[test]
    fn malformed_flags_are_reported() {
        let e = run(&args("cost --hosts")).unwrap_err();
        assert!(e.0.contains("requires a value"));
        let e = run(&args("cost hosts 1000")).unwrap_err();
        assert!(e.0.contains("expected a --flag"));
        let e = run(&args("cost --hosts abc")).unwrap_err();
        assert!(e.0.contains("expects a number"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = run(&args(&format!(
            "cost {SCENARIO} --probes 4 --listen 2 --bogus 1"
        )))
        .unwrap_err();
        assert!(e.0.contains("--bogus"), "{}", e.0);
    }

    #[test]
    fn hosts_and_occupancy_conflict() {
        let e = run(&args(
            "cost --hosts 10 --occupancy 0.5 --probe-cost 1 --error-cost 1 \
             --loss 0.1 --rate 1 --delay 0 --probes 1 --listen 1",
        ))
        .unwrap_err();
        assert!(e.0.contains("mutually exclusive"));
    }

    #[test]
    fn occupancy_flag_works_without_hosts() {
        let out = run(&args(
            "cost --occupancy 0.3 --probe-cost 1.5 --error-cost 50 \
             --loss 0.2 --rate 3 --delay 0.2 --probes 3 --listen 0.8",
        ))
        .unwrap();
        assert!(out.contains("8.53"), "{out}");
    }
}
