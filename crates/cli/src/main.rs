//! The `zeroconf` binary: see [`zeroconf_cli::usage`] or run
//! `zeroconf help`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match zeroconf_cli::run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
