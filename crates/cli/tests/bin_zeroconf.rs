//! End-to-end tests of the `zeroconf` binary.

use std::process::Command;

fn zeroconf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zeroconf"))
}

const SCENARIO: [&str; 12] = [
    "--hosts",
    "1000",
    "--probe-cost",
    "2",
    "--error-cost",
    "1e35",
    "--loss",
    "1e-15",
    "--rate",
    "10",
    "--delay",
    "1",
];

#[test]
fn cost_command_prints_the_paper_numbers() {
    let output = zeroconf()
        .arg("cost")
        .args(SCENARIO)
        .args(["--probes", "4", "--listen", "2"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("16.06"), "{stdout}");
    assert!(stdout.contains("e-50"), "{stdout}");
}

#[test]
fn optimize_command_succeeds() {
    let output = zeroconf()
        .arg("optimize")
        .args(SCENARIO)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("joint optimum: n = 3"), "{stdout}");
}

#[test]
fn bad_flags_fail_with_message_on_stderr() {
    let output = zeroconf()
        .args(["cost", "--hosts"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let output = zeroconf().arg("help").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("usage: zeroconf"));
}
