//! End-to-end tests of the `zeroconf` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn zeroconf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zeroconf"))
}

const SCENARIO: [&str; 12] = [
    "--hosts",
    "1000",
    "--probe-cost",
    "2",
    "--error-cost",
    "1e35",
    "--loss",
    "1e-15",
    "--rate",
    "10",
    "--delay",
    "1",
];

#[test]
fn cost_command_prints_the_paper_numbers() {
    let output = zeroconf()
        .arg("cost")
        .args(SCENARIO)
        .args(["--probes", "4", "--listen", "2"])
        .output()
        .expect("binary runs");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("16.06"), "{stdout}");
    assert!(stdout.contains("e-50"), "{stdout}");
}

#[test]
fn optimize_command_succeeds() {
    let output = zeroconf()
        .arg("optimize")
        .args(SCENARIO)
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("joint optimum: n = 3"), "{stdout}");
}

#[test]
fn engine_subcommand_serves_json_lines_end_to_end() {
    let mut child = zeroconf()
        .args(["engine", "--workers", "2", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let request = concat!(
        "{\"id\":\"fig2\",\"scenario\":{\"hosts\":1000,\"probe_cost\":2.0,\"error_cost\":1e35,",
        "\"reply_time\":{\"kind\":\"exponential\",\"loss\":1e-15,\"rate\":10.0,\"delay\":1.0}},",
        "\"grid\":{\"n_max\":8,\"r_min\":0.1,\"r_max\":30.0,\"r_points\":50}}\n",
        "{\"id\":\"cheap\",\"rescore\":{\"of\":\"fig2\",\"error_cost\":1e20}}\n",
    );
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(request.as_bytes())
        .expect("write requests");
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("\"id\":\"fig2\""), "{}", lines[0]);
    assert!(lines[0].contains("\"cache_misses\":50"), "{}", lines[0]);
    assert!(
        lines[1].contains("\"cache_misses\":0"),
        "rescore must be served from cache: {}",
        lines[1]
    );
    assert!(lines[2].contains("\"requests\":2"), "{}", lines[2]);
}

#[test]
fn bad_flags_fail_with_message_on_stderr() {
    let output = zeroconf()
        .args(["cost", "--hosts"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("requires a value"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let output = zeroconf().arg("help").output().expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("usage: zeroconf"));
}
