//! Typed blocking client for the `zeroconf serve` daemon.
//!
//! The serve daemon speaks a JSON-lines protocol over TCP and unix
//! sockets (see `crates/serve`): each request line carries a protocol
//! version, a caller-chosen `id`, and one verb; each response line echoes
//! the `id` it answers. Requests may be pipelined — many ids in flight on
//! one connection — and the daemon answers them as they complete, so
//! responses can arrive out of submission order.
//!
//! [`Client`] wraps one such connection:
//!
//! - **Typed senders** ([`Client::sweep`], [`Client::rescore`],
//!   [`Client::calibrate`], [`Client::frontier`], [`Client::cancel`],
//!   [`Client::stats`]) assemble well-formed frames, interpolating
//!   [`WIRE_VERSION`] so a protocol bump updates every caller at once.
//!   [`Client::send_raw`] is the escape hatch for malformed-frame and
//!   version-skew tests.
//! - **Pipelined waits**: [`Client::wait`] reads response lines until the
//!   requested id appears, parking any other ids it passes in an
//!   out-of-order buffer that later waits drain first. [`Client::wait_all`]
//!   collects a whole batch.
//! - **Deadlines**: every read is bounded. The socket runs with a short
//!   read timeout and the client loops until its per-call deadline
//!   (default [`DEFAULT_DEADLINE`]) elapses, so a wedged daemon fails a
//!   test instead of hanging it.
//!
//! The crate is used by the serve integration tests, the `serve_throughput`
//! bench, and the `zeroconf-client` binary that `ci.sh` drives for its
//! socket smoke tests — one wire codec, no duplicated frame readers.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;
use std::time::{Duration, Instant};

pub use zeroconf_engine::wire::{parse_json, Json, WIRE_VERSION};
use zeroconf_engine::wire::{VERB_CALIBRATE, VERB_FRONTIER};

/// Default per-wait deadline: generous enough for a cold engine on a
/// loaded CI box, short enough that a hung daemon fails the run.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(60);

/// Socket-level read timeout; the wait loop spins on this tick so it can
/// re-check its overall deadline between reads.
const READ_TICK: Duration = Duration::from_millis(50);

/// A client-side failure: socket error, undecodable response, elapsed
/// deadline, or a connection the daemon closed with waits outstanding.
#[derive(Debug)]
pub enum ClientError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The daemon sent a line the client could not decode.
    Protocol(String),
    /// The deadline elapsed before the awaited response arrived.
    Timeout(String),
    /// The daemon closed the connection while a wait was outstanding.
    Disconnected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Timeout(msg) => write!(f, "timed out: {msg}"),
            ClientError::Disconnected(msg) => write!(f, "connection closed: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A reply-time distribution in wire form.
#[derive(Debug, Clone)]
pub enum ReplyTime {
    /// `{"kind":"exponential",…}` — defective exponential reply time.
    Exponential {
        /// Probability the probe is lost outright.
        loss: f64,
        /// Rate of the exponential reply-delay component.
        rate: f64,
        /// Deterministic propagation delay added to every reply.
        delay: f64,
    },
    /// `{"kind":"deterministic",…}` — replies land after a fixed delay.
    Deterministic {
        /// Probability the reply arrives at all.
        mass: f64,
        /// The fixed reply delay.
        delay: f64,
    },
    /// `{"kind":"uniform",…}` — replies uniform on `[lo, hi]`.
    Uniform {
        /// Probability the reply arrives at all.
        mass: f64,
        /// Lower edge of the reply-delay support.
        lo: f64,
        /// Upper edge of the reply-delay support.
        hi: f64,
    },
    /// Any other wire shape (mixtures, weibull), supplied as raw JSON.
    Raw(String),
}

impl ReplyTime {
    fn to_wire(&self) -> String {
        match self {
            ReplyTime::Exponential { loss, rate, delay } => format!(
                "{{\"kind\":\"exponential\",\"loss\":{loss:?},\"rate\":{rate:?},\"delay\":{delay:?}}}"
            ),
            ReplyTime::Deterministic { mass, delay } => {
                format!("{{\"kind\":\"deterministic\",\"mass\":{mass:?},\"delay\":{delay:?}}}")
            }
            ReplyTime::Uniform { mass, lo, hi } => {
                format!("{{\"kind\":\"uniform\",\"mass\":{mass:?},\"lo\":{lo:?},\"hi\":{hi:?}}}")
            }
            ReplyTime::Raw(json) => json.clone(),
        }
    }
}

/// A protocol scenario: the model parameters a sweep evaluates.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Per-probe address-collision probability.
    pub q: f64,
    /// Cost of sending one probe.
    pub probe_cost: f64,
    /// Cost of settling on a colliding address.
    pub error_cost: f64,
    /// Reply-time distribution.
    pub reply_time: ReplyTime,
}

impl Scenario {
    /// The fixture scenario the workspace's session tests standardize on
    /// (`q = 0.5`, exponential replies) — mirrors
    /// `zeroconf_engine::testkit::sweep_line`.
    #[must_use]
    pub fn fixture() -> Scenario {
        Scenario {
            q: 0.5,
            probe_cost: 2.0,
            error_cost: 1e6,
            reply_time: ReplyTime::Exponential {
                loss: 1e-6,
                rate: 10.0,
                delay: 1.0,
            },
        }
    }

    fn to_wire(&self) -> String {
        format!(
            "{{\"q\":{:?},\"probe_cost\":{:?},\"error_cost\":{:?},\"reply_time\":{}}}",
            self.q,
            self.probe_cost,
            self.error_cost,
            self.reply_time.to_wire()
        )
    }
}

/// A policy grid: which `(n, r)` cells a sweep evaluates.
#[derive(Debug, Clone)]
pub enum Grid {
    /// An explicit list of timeout values per probe count.
    Explicit {
        /// Largest probe count to evaluate (1..=n_max).
        n_max: u32,
        /// The timeout values to evaluate at each probe count.
        r: Vec<f64>,
    },
    /// A dense linspace of timeouts — the heavy-load shape.
    Linspace {
        /// Largest probe count to evaluate (1..=n_max).
        n_max: u32,
        /// Smallest timeout in the linspace.
        r_min: f64,
        /// Largest timeout in the linspace.
        r_max: f64,
        /// Number of linspace points.
        r_points: usize,
    },
}

impl Grid {
    fn to_wire(&self) -> String {
        match self {
            Grid::Explicit { n_max, r } => {
                let r_list = r
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect::<Vec<String>>()
                    .join(",");
                format!("{{\"n_max\":{n_max},\"r\":[{r_list}]}}")
            }
            Grid::Linspace {
                n_max,
                r_min,
                r_max,
                r_points,
            } => format!(
                "{{\"n_max\":{n_max},\"r_min\":{r_min:?},\"r_max\":{r_max:?},\"r_points\":{r_points}}}"
            ),
        }
    }
}

/// A frontier axis: which scenario parameter varies, over which values.
#[derive(Debug, Clone)]
pub struct Axis {
    /// The scenario field to vary: `"q"`, `"probe_cost"` or `"error_cost"`.
    pub axis: &'static str,
    /// The values to take along this axis.
    pub values: Vec<f64>,
}

impl Axis {
    /// An axis over the collision probability `q`.
    #[must_use]
    pub fn q(values: &[f64]) -> Axis {
        Axis {
            axis: "q",
            values: values.to_vec(),
        }
    }

    /// An axis over the per-probe cost.
    #[must_use]
    pub fn probe_cost(values: &[f64]) -> Axis {
        Axis {
            axis: "probe_cost",
            values: values.to_vec(),
        }
    }

    /// An axis over the collision cost.
    #[must_use]
    pub fn error_cost(values: &[f64]) -> Axis {
        Axis {
            axis: "error_cost",
            values: values.to_vec(),
        }
    }

    fn to_wire(&self) -> String {
        let values = self
            .values
            .iter()
            .map(|v| format!("{v:?}"))
            .collect::<Vec<String>>()
            .join(",");
        format!("{{\"axis\":\"{}\",\"values\":[{values}]}}", self.axis)
    }
}

/// One decoded response line.
#[derive(Debug, Clone)]
pub struct Response {
    /// The raw line as received (without the trailing newline).
    pub line: String,
    /// The parsed document.
    pub json: Json,
}

impl Response {
    /// The response id (`""` for id-less lines such as capacity refusals).
    #[must_use]
    pub fn id(&self) -> &str {
        match self.json.get("id") {
            Some(Json::Str(s)) => s,
            _ => "",
        }
    }

    /// The `error` member, if this response is an error line.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        match self.json.get("error") {
            Some(Json::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Whether this response carries a `cells` payload (a completed sweep
    /// or rescore).
    #[must_use]
    pub fn has_cells(&self) -> bool {
        matches!(self.json.get("cells"), Some(Json::Arr(_)))
    }

    /// Number of entries in the `cells` array (0 when absent).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        match self.json.get("cells") {
            Some(Json::Arr(items)) => items.len(),
            _ => 0,
        }
    }

    /// Walks `path` through nested objects and returns the value.
    #[must_use]
    pub fn member(&self, path: &[&str]) -> Option<&Json> {
        let mut node = &self.json;
        for key in path {
            node = node.get(key)?;
        }
        Some(node)
    }

    /// Walks `path` and returns the number at its end, if any.
    #[must_use]
    pub fn number(&self, path: &[&str]) -> Option<f64> {
        match self.member(path) {
            Some(Json::Num(x)) => Some(*x),
            _ => None,
        }
    }
}

/// One half-duplex view of the connection (the write side, or the read
/// side wrapped in a [`BufReader`]).
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }

    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            #[cfg(unix)]
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A blocking connection to a serve daemon.
pub struct Client {
    writer: Stream,
    reader: BufReader<Stream>,
    /// Responses read past while waiting for a different id, keyed by id.
    parked: HashMap<String, Response>,
    /// Per-wait deadline.
    deadline: Duration,
}

impl Client {
    /// Connects over TCP to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Client::from_stream(Stream::Tcp(stream))
    }

    /// Connects to the unix socket at `path`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the connection cannot be established.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> Result<Client> {
        let stream = UnixStream::connect(path)?;
        Client::from_stream(Stream::Unix(stream))
    }

    fn from_stream(stream: Stream) -> Result<Client> {
        stream.set_read_timeout(READ_TICK)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            parked: HashMap::new(),
            deadline: DEFAULT_DEADLINE,
        })
    }

    /// Overrides the per-wait deadline (default [`DEFAULT_DEADLINE`]).
    pub fn set_deadline(&mut self, deadline: Duration) {
        self.deadline = deadline;
    }

    /// Sends one raw frame (a newline is appended). The escape hatch for
    /// malformed-frame and version-skew tests; prefer the typed senders.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn send_raw(&mut self, line: &str) -> Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Submits a sweep of `grid` under `scenario`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn sweep(&mut self, id: &str, scenario: &Scenario, grid: &Grid) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"scenario\":{},\"grid\":{}}}",
            escape(id),
            scenario.to_wire(),
            grid.to_wire()
        );
        self.send_raw(&line)
    }

    /// Submits a rescore of the earlier sweep `of` under a changed
    /// collision cost.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn rescore(&mut self, id: &str, of: &str, error_cost: f64) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"rescore\":{{\"of\":\"{}\",\"error_cost\":{error_cost:?}}}}}",
            escape(id),
            escape(of)
        );
        self.send_raw(&line)
    }

    /// Submits a calibration anchored at the `(n, r)` cell of the earlier
    /// sweep `of`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn calibrate(&mut self, id: &str, of: &str, n: u32, r: f64) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"{VERB_CALIBRATE}\":{{\"of\":\"{}\",\"n\":{n},\"r\":{r:?}}}}}",
            escape(id),
            escape(of)
        );
        self.send_raw(&line)
    }

    /// Submits an inline calibration: sweep `grid` under `scenario`, then
    /// calibrate at `(n, r)`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn calibrate_inline(
        &mut self,
        id: &str,
        scenario: &Scenario,
        grid: &Grid,
        n: u32,
        r: f64,
    ) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"scenario\":{},\"grid\":{},\"{VERB_CALIBRATE}\":{{\"n\":{n},\"r\":{r:?}}}}}",
            escape(id),
            scenario.to_wire(),
            grid.to_wire()
        );
        self.send_raw(&line)
    }

    /// Submits a frontier scan over axes `x` and `y`, anchored at the
    /// earlier sweep `of`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn frontier(&mut self, id: &str, of: &str, x: &Axis, y: &Axis) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"{VERB_FRONTIER}\":{{\"of\":\"{}\",\"x\":{},\"y\":{}}}}}",
            escape(id),
            escape(of),
            x.to_wire(),
            y.to_wire()
        );
        self.send_raw(&line)
    }

    /// Cancels the in-flight request `of`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the write fails.
    pub fn cancel(&mut self, id: &str, of: &str) -> Result<()> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"cancel\":\"{}\"}}",
            escape(id),
            escape(of)
        );
        self.send_raw(&line)
    }

    /// Requests the per-connection / server / engine stats snapshot and
    /// waits for it.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]: write failure, timeout, undecodable response.
    pub fn stats(&mut self, id: &str) -> Result<Response> {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"stats\":true}}",
            escape(id)
        );
        self.send_raw(&line)?;
        self.wait(id)
    }

    /// Half-closes the write side, signalling the daemon that no further
    /// requests will arrive (responses can still be read).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the shutdown fails.
    pub fn shutdown_write(&mut self) -> Result<()> {
        self.writer.shutdown_write()?;
        Ok(())
    }

    /// Waits for the response with `id`, parking any other responses read
    /// past (later waits find them without touching the socket).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if the deadline elapses,
    /// [`ClientError::Disconnected`] on EOF before the id arrives,
    /// [`ClientError::Protocol`] on an undecodable line.
    pub fn wait(&mut self, id: &str) -> Result<Response> {
        if let Some(found) = self.parked.remove(id) {
            return Ok(found);
        }
        let deadline = Instant::now() + self.deadline;
        loop {
            match self.next_response(deadline)? {
                Some(response) if response.id() == id => return Ok(response),
                Some(response) => {
                    self.parked.insert(response.id().to_owned(), response);
                }
                None => {
                    return Err(ClientError::Disconnected(format!(
                        "EOF while waiting for id `{id}`"
                    )))
                }
            }
        }
    }

    /// Waits for every id in `ids` (in any arrival order) and returns the
    /// responses in the requested order.
    ///
    /// # Errors
    ///
    /// As for [`Client::wait`], on the first id that fails.
    pub fn wait_all(&mut self, ids: &[&str]) -> Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(ids.len());
        for id in ids {
            responses.push(self.wait(id)?);
        }
        Ok(responses)
    }

    /// Reads the next response line from the socket (skipping the parked
    /// buffer), or `Ok(None)` on EOF.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if `deadline` passes with no line,
    /// [`ClientError::Protocol`] if a line fails to parse.
    pub fn next_response(&mut self, deadline: Instant) -> Result<Option<Response>> {
        match self.next_line_until(deadline)? {
            None => Ok(None),
            Some(line) => {
                let json = parse_json(&line)
                    .map_err(|e| ClientError::Protocol(format!("bad response line: {e}")))?;
                Ok(Some(Response { line, json }))
            }
        }
    }

    /// Reads one raw line within the client's default deadline, or
    /// `Ok(None)` on EOF. Used by tests that inspect id-less lines (e.g.
    /// capacity refusals before the daemon closes the socket).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] if the deadline passes with no line.
    pub fn next_line(&mut self) -> Result<Option<String>> {
        let deadline = Instant::now() + self.deadline;
        self.next_line_until(deadline)
    }

    fn next_line_until(&mut self, deadline: Instant) -> Result<Option<String>> {
        // `read_line` appends to `line`; when the socket's read timeout
        // fires mid-line it returns `WouldBlock` with the partial line
        // already accumulated, so the buffer must survive retries —
        // clearing it would silently drop bytes and break the framing.
        let mut line = String::new();
        loop {
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    // EOF. A leftover partial line is a truncated frame:
                    // hand it to the caller, whose parse will say so.
                    return if line.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(line))
                    };
                }
                Ok(_) if line.ends_with('\n') => {
                    while line.ends_with('\n') || line.ends_with('\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                // Ok(_) without a newline: EOF cut the line short; the
                // next read observes Ok(0) and returns the fragment.
                Ok(_) => {}
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Timeout(
                            "no response line before the deadline".to_owned(),
                        ));
                    }
                }
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeroconf_engine::wire::{parse_request_line, WireRequest};

    fn render_sweep(scenario: &Scenario, grid: &Grid) -> String {
        format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"t\",\"scenario\":{},\"grid\":{}}}",
            scenario.to_wire(),
            grid.to_wire()
        )
    }

    #[test]
    fn typed_frames_decode_as_the_wire_parser_expects() {
        let scenario = Scenario::fixture();
        let explicit = Grid::Explicit {
            n_max: 4,
            r: vec![0.5, 1.0, 2.0],
        };
        let line = render_sweep(&scenario, &explicit);
        let WireRequest::Sweep { request, .. } = parse_request_line(&line).unwrap() else {
            panic!("explicit-grid sweep decodes as a sweep: {line}");
        };
        assert_eq!(request.grid.r_values.len(), 3);

        let linspace = Grid::Linspace {
            n_max: 8,
            r_min: 0.1,
            r_max: 30.0,
            r_points: 50,
        };
        let line = render_sweep(&scenario, &linspace);
        let WireRequest::Sweep { request, .. } = parse_request_line(&line).unwrap() else {
            panic!("linspace sweep decodes as a sweep: {line}");
        };
        assert_eq!(request.grid.r_values.len(), 50);
    }

    #[test]
    fn every_reply_time_variant_renders_a_known_wire_kind() {
        for reply_time in [
            ReplyTime::Exponential {
                loss: 1e-6,
                rate: 10.0,
                delay: 1.0,
            },
            ReplyTime::Deterministic {
                mass: 0.9,
                delay: 0.5,
            },
            ReplyTime::Uniform {
                mass: 0.95,
                lo: 0.0,
                hi: 2.0,
            },
        ] {
            let scenario = Scenario {
                reply_time,
                ..Scenario::fixture()
            };
            let line = render_sweep(
                &scenario,
                &Grid::Explicit {
                    n_max: 2,
                    r: vec![1.0],
                },
            );
            assert!(
                matches!(parse_request_line(&line), Ok(WireRequest::Sweep { .. })),
                "{line}"
            );
        }
    }

    #[test]
    fn verb_frames_decode_and_ids_escape() {
        let rescore = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"{}\",\"rescore\":{{\"of\":\"{}\",\"error_cost\":{:?}}}}}",
            escape("a\"b"),
            escape("s1"),
            1e9
        );
        let WireRequest::Rescore { id, .. } = parse_request_line(&rescore).unwrap() else {
            panic!("rescore decodes: {rescore}");
        };
        assert_eq!(id, "a\"b");

        let frontier = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"f\",\"{VERB_FRONTIER}\":{{\"of\":\"s1\",\"x\":{},\"y\":{}}}}}",
            Axis::error_cost(&[1e3, 1e6]).to_wire(),
            Axis::probe_cost(&[1.0, 2.0]).to_wire()
        );
        assert!(
            matches!(
                parse_request_line(&frontier),
                Ok(WireRequest::Frontier { .. })
            ),
            "{frontier}"
        );

        let calibrate = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"k\",\"{VERB_CALIBRATE}\":{{\"of\":\"s1\",\"n\":4,\"r\":{:?}}}}}",
            2.0
        );
        assert!(
            matches!(
                parse_request_line(&calibrate),
                Ok(WireRequest::Calibrate { .. })
            ),
            "{calibrate}"
        );
    }

    #[test]
    fn responses_expose_members_by_path() {
        let line = format!(
            "{{\"v\":{WIRE_VERSION},\"id\":\"s1\",\"cells\":[1,2,3],\"stats\":{{\"engine\":{{\"requests\":7}}}}}}"
        );
        let response = Response {
            json: parse_json(&line).unwrap(),
            line,
        };
        assert_eq!(response.id(), "s1");
        assert!(response.has_cells());
        assert_eq!(response.cell_count(), 3);
        assert_eq!(response.number(&["stats", "engine", "requests"]), Some(7.0));
        assert_eq!(response.number(&["stats", "engine", "absent"]), None);
        assert_eq!(response.error(), None);
    }

    #[cfg(unix)]
    #[test]
    fn waits_buffer_out_of_order_responses() {
        use std::os::unix::net::UnixListener;

        let dir = std::env::temp_dir().join(format!("zeroconf-client-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ooo.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();

        let server = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            use std::io::{BufRead, BufReader, Write};
            let mut lines = BufReader::new(peer.try_clone().unwrap()).lines();
            let first = lines.next().unwrap().unwrap();
            let second = lines.next().unwrap().unwrap();
            assert!(first.contains("\"id\":\"a\""), "{first}");
            assert!(second.contains("\"id\":\"b\""), "{second}");
            // Answer in reverse order to exercise the parking buffer.
            writeln!(peer, "{{\"v\":{WIRE_VERSION},\"id\":\"b\",\"cells\":[2]}}").unwrap();
            writeln!(peer, "{{\"v\":{WIRE_VERSION},\"id\":\"a\",\"cells\":[1]}}").unwrap();
        });

        let mut client = Client::connect_unix(&path).unwrap();
        client.set_deadline(Duration::from_secs(10));
        client.cancel("a", "x").unwrap();
        client.cancel("b", "y").unwrap();
        let a = client.wait("a").unwrap();
        let b = client.wait("b").unwrap();
        assert_eq!(a.cell_count(), 1);
        assert_eq!(b.cell_count(), 1);
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
