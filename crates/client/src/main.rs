//! The `zeroconf-client` binary: scripted exercisers for a running serve
//! daemon, built on the [`zeroconf_client`] library.
//!
//! Two subcommands, both driven by `ci.sh` against a freshly spawned
//! daemon:
//!
//! - `smoke` — the lossless-drain scenario: a victim connection pipelines
//!   work and disconnects mid-flight; a survivor pipelines a sweep, a
//!   rescore, a frontier and an inline calibration; the daemon is
//!   SIGTERMed while those are in flight and every survivor request must
//!   still be answered.
//! - `flood` — the reactor scale scenario: many concurrent clients
//!   pipeline sweeps at once, a fraction disconnect mid-flight, and (with
//!   `--pid`) a straggler must still be answered across a SIGTERM drain.
//!
//! Exit status 0 when every assertion holds, 1 otherwise (with a
//! diagnostic on stderr). The process never signals anything except the
//! pid it was explicitly given.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::Command;
use std::thread;
use std::time::Duration;

use zeroconf_client::{Axis, Client, Grid, Response, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => println!("{summary}"),
        Err(error) => {
            eprintln!("zeroconf-client: {error}");
            std::process::exit(1);
        }
    }
}

/// Where the daemon listens, as given on the command line.
enum Target {
    Tcp(String),
    Unix(PathBuf),
}

impl Target {
    fn connect(&self) -> Result<Client, String> {
        match self {
            Target::Tcp(addr) => {
                Client::connect_tcp(addr).map_err(|e| format!("connect {addr}: {e}"))
            }
            #[cfg(unix)]
            Target::Unix(path) => {
                Client::connect_unix(path).map_err(|e| format!("connect {}: {e}", path.display()))
            }
            #[cfg(not(unix))]
            Target::Unix(path) => Err(format!(
                "unix socket {} unsupported on this platform",
                path.display()
            )),
        }
    }
}

struct Options {
    target: Target,
    /// Daemon pid to SIGTERM mid-flight (drain assertion), if any.
    pid: Option<u32>,
    clients: usize,
    requests: usize,
}

fn run(args: &[String]) -> Result<String, String> {
    let Some((verb, rest)) = args.split_first() else {
        return Err(usage("missing subcommand"));
    };
    let options = parse_options(rest)?;
    match verb.as_str() {
        "smoke" => smoke(&options),
        "flood" => flood(&options),
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(problem: &str) -> String {
    format!(
        "{problem}\n\
         usage: zeroconf-client <smoke|flood> (--tcp ADDR | --unix PATH)\n\
                [--pid PID] [--clients N] [--requests N]"
    )
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut target = None;
    let mut pid = None;
    let mut clients = 64usize;
    let mut requests = 8usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next()
                .ok_or_else(|| usage(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--tcp" => target = Some(Target::Tcp(value("--tcp")?.clone())),
            "--unix" => target = Some(Target::Unix(PathBuf::from(value("--unix")?))),
            "--pid" => {
                let raw = value("--pid")?;
                pid = Some(
                    raw.parse::<u32>()
                        .map_err(|_| usage(&format!("--pid `{raw}` is not a pid")))?,
                );
            }
            "--clients" => {
                let raw = value("--clients")?;
                clients = raw
                    .parse::<usize>()
                    .map_err(|_| usage(&format!("--clients `{raw}` is not a count")))?;
            }
            "--requests" => {
                let raw = value("--requests")?;
                requests = raw
                    .parse::<usize>()
                    .map_err(|_| usage(&format!("--requests `{raw}` is not a count")))?;
            }
            other => return Err(usage(&format!("unknown flag `{other}`"))),
        }
    }
    let target = target.ok_or_else(|| usage("one of --tcp/--unix is required"))?;
    Ok(Options {
        target,
        pid,
        clients: clients.max(1),
        requests: requests.max(1),
    })
}

/// Sends SIGTERM to `pid` via `kill(1)` (this binary forbids unsafe code,
/// so no direct syscall).
fn sigterm(pid: u32) -> Result<(), String> {
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .map_err(|e| format!("spawning kill: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("kill -TERM {pid} exited with {status}"))
    }
}

fn require_cells(response: &Response, what: &str) -> Result<usize, String> {
    if let Some(error) = response.error() {
        return Err(format!("{what} answered with an error: {error}"));
    }
    let cells = response.cell_count();
    if cells == 0 {
        return Err(format!("{what} carried no cells: {}", response.line));
    }
    Ok(cells)
}

/// A deliberately expensive sweep: dense enough that responses are still
/// in flight when the disconnect / SIGTERM lands.
fn heavy_grid() -> Grid {
    Grid::Linspace {
        n_max: 64,
        r_min: 0.1,
        r_max: 30.0,
        r_points: 4000,
    }
}

/// The lossless-drain smoke: victim disconnects mid-flight, survivor's
/// pipelined sweep/rescore/frontier/calibration all get answered across a
/// SIGTERM drain.
fn smoke(options: &Options) -> Result<String, String> {
    let scenario = Scenario::fixture();
    fn fail(what: &'static str) -> impl Fn(zeroconf_client::ClientError) -> String {
        move |e| format!("{what}: {e}")
    }

    let mut victim = options.target.connect()?;
    let mut survivor = options.target.connect()?;

    // The victim pipelines expensive work it will never read.
    victim
        .sweep("v1", &scenario, &heavy_grid())
        .map_err(fail("victim sweep v1"))?;
    victim
        .rescore("v2", "v1", 1e9)
        .map_err(fail("victim rescore v2"))?;

    // The survivor pipelines one of everything.
    survivor
        .sweep("a1", &scenario, &heavy_grid())
        .map_err(fail("survivor sweep a1"))?;
    survivor
        .rescore("a2", "a1", 1e9)
        .map_err(fail("survivor rescore a2"))?;
    survivor
        .sweep(
            "a3",
            &scenario,
            &Grid::Linspace {
                n_max: 4,
                r_min: 0.1,
                r_max: 30.0,
                r_points: 60,
            },
        )
        .map_err(fail("survivor sweep a3"))?;
    survivor
        .frontier(
            "a4",
            "a3",
            &Axis::error_cost(&[1e3, 1e6]),
            &Axis::probe_cost(&[1.0, 2.0]),
        )
        .map_err(fail("survivor frontier a4"))?;
    survivor
        .calibrate_inline(
            "a5",
            &scenario,
            &Grid::Explicit {
                n_max: 3,
                r: vec![0.5, 1.0, 2.0],
            },
            2,
            1.0,
        )
        .map_err(fail("survivor calibrate a5"))?;

    // Let the daemon take everything in, then yank the victim mid-flight.
    thread::sleep(Duration::from_millis(150));
    drop(victim);
    thread::sleep(Duration::from_millis(100));

    // SIGTERM with the survivor's requests still in flight: the drain
    // must answer all of them before the daemon exits.
    if let Some(pid) = options.pid {
        sigterm(pid)?;
    }

    let responses = survivor
        .wait_all(&["a1", "a2", "a3", "a4", "a5"])
        .map_err(fail("survivor responses"))?;
    let mut cells = 0usize;
    for (response, what) in responses.iter().zip(["a1", "a2", "a3"]) {
        cells += require_cells(response, what)?;
    }
    let frontier = &responses[3];
    let candidates = frontier
        .number(&["frontier", "candidates"])
        .ok_or_else(|| format!("a4 is not a frontier response: {}", frontier.line))?;
    if candidates != 4.0 {
        return Err(format!(
            "a4 expected 4 frontier candidates: {}",
            frontier.line
        ));
    }
    match frontier.member(&["frontier", "points"]) {
        Some(zeroconf_client::Json::Arr(points)) if !points.is_empty() => {}
        _ => return Err(format!("a4 frontier has no points: {}", frontier.line)),
    }
    let calibrated = &responses[4];
    let error_cost = calibrated
        .number(&["calibrate", "error_cost"])
        .ok_or_else(|| format!("a5 is not a calibrate response: {}", calibrated.line))?;
    if error_cost.is_nan() || error_cost <= 0.0 {
        return Err(format!(
            "a5 calibrated a nonpositive error_cost: {}",
            calibrated.line
        ));
    }

    Ok(format!(
        "smoke ok: 5 survivor responses ({cells} cells, {candidates} frontier candidates, \
         calibrated error_cost {error_cost:.3e}) across a mid-flight disconnect{}",
        if options.pid.is_some() {
            " and a SIGTERM drain"
        } else {
            ""
        }
    ))
}

/// One flood worker: pipeline `requests` sweeps, then either read every
/// answer back or (for the deserter fraction) disconnect mid-flight.
fn flood_worker(
    target: &Target,
    index: usize,
    requests: usize,
    desert: bool,
) -> Result<usize, String> {
    let scenario = Scenario::fixture();
    let grid = Grid::Explicit {
        n_max: 8,
        r: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
    };
    let mut client = target.connect()?;
    let ids: Vec<String> = (0..requests).map(|j| format!("c{index}-r{j}")).collect();
    for id in &ids {
        client
            .sweep(id, &scenario, &grid)
            .map_err(|e| format!("client {index} sweep {id}: {e}"))?;
    }
    if desert {
        // Queue one more expensive sweep and vanish with it in flight.
        client
            .sweep(&format!("c{index}-deserter"), &scenario, &heavy_grid())
            .map_err(|e| format!("client {index} deserter sweep: {e}"))?;
        drop(client);
        return Ok(0);
    }
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let responses = client
        .wait_all(&id_refs)
        .map_err(|e| format!("client {index} responses: {e}"))?;
    for (response, id) in responses.iter().zip(&ids) {
        require_cells(response, &format!("client {index} {id}"))?;
    }
    Ok(responses.len())
}

/// The reactor scale smoke: `--clients` concurrent pipeliners, every
/// eighth disconnecting mid-flight, with an optional straggler answered
/// across a SIGTERM drain.
fn flood(options: &Options) -> Result<String, String> {
    let mut handles = Vec::with_capacity(options.clients);
    for index in 0..options.clients {
        let target = match &options.target {
            Target::Tcp(addr) => Target::Tcp(addr.clone()),
            Target::Unix(path) => Target::Unix(path.clone()),
        };
        let requests = options.requests;
        let desert = index % 8 == 3;
        handles.push(thread::spawn(move || {
            flood_worker(&target, index, requests, desert)
        }));
    }

    let mut answered = 0usize;
    let mut deserters = 0usize;
    let mut failures = Vec::new();
    for (index, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(0)) => deserters += 1,
            Ok(Ok(n)) => answered += n,
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push(format!("client {index} panicked")),
        }
    }
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} client(s) failed; first: {first}",
            failures.len()
        ));
    }

    // The server must have seen every connection and still be healthy.
    let mut inspector = options.target.connect()?;
    let stats = inspector
        .stats("flood-stats")
        .map_err(|e| format!("stats after flood: {e}"))?;
    let total = stats
        .number(&["stats", "server", "connections_total"])
        .unwrap_or(0.0);
    if total < options.clients as f64 {
        return Err(format!(
            "server saw {total} connections, expected at least {}: {}",
            options.clients, stats.line
        ));
    }

    // Straggler across the drain: submit, SIGTERM, then demand the answer.
    let mut drained = "";
    if let Some(pid) = options.pid {
        inspector
            .sweep("straggler", &Scenario::fixture(), &heavy_grid())
            .map_err(|e| format!("straggler sweep: {e}"))?;
        thread::sleep(Duration::from_millis(100));
        sigterm(pid)?;
        let response = inspector
            .wait("straggler")
            .map_err(|e| format!("straggler response after SIGTERM: {e}"))?;
        require_cells(&response, "straggler")?;
        drained = ", straggler answered across SIGTERM drain";
    }

    Ok(format!(
        "flood ok: {} clients ({} mid-flight disconnects), {answered} pipelined \
         responses verified{drained}",
        options.clients, deserters
    ))
}
