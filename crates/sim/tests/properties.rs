// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based tests of the protocol simulator's accounting
//! invariants: whatever the parameters, every run outcome must satisfy
//! exact bookkeeping identities.

use std::sync::Arc;

use proptest::prelude::*;
use zeroconf_dist::DefectiveExponential;
use zeroconf_rng::rngs::StdRng;
use zeroconf_rng::SeedableRng;
use zeroconf_sim::protocol::{run_many, run_once, ProtocolConfig};

#[derive(Debug, Clone)]
struct Params {
    n: u32,
    r: f64,
    c: f64,
    e: f64,
    q: f64,
    loss: f64,
    rate: f64,
    delay: f64,
    seed: u64,
}

fn params() -> impl Strategy<Value = Params> {
    (
        1u32..6,
        0.0f64..3.0,
        0.0f64..4.0,
        0.0f64..200.0,
        0.01f64..0.9,
        0.0f64..1.0,
        0.5f64..20.0,
        0.0f64..1.0,
        0u64..1_000_000,
    )
        .prop_map(|(n, r, c, e, q, loss, rate, delay, seed)| Params {
            n,
            r,
            c,
            e,
            q,
            loss,
            rate,
            delay,
            seed,
        })
}

fn config(p: &Params) -> ProtocolConfig {
    ProtocolConfig::builder()
        .probes(p.n)
        .listen_period(p.r)
        .probe_cost(p.c)
        .error_cost(p.e)
        .occupancy(p.q)
        .reply_time(Arc::new(
            DefectiveExponential::from_loss(p.loss, p.rate, p.delay).expect("valid params"),
        ))
        .build()
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cost_identity_holds_exactly(p in params()) {
        // The DRM reward accounting implies, for every single run:
        //   total_cost = (r + c) · probes_sent + E · [collided]
        let cfg = config(&p);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let out = run_once(&cfg, &mut rng).unwrap();
        let reconstructed =
            (p.r + p.c) * out.probes_sent as f64 + if out.collided { p.e } else { 0.0 };
        prop_assert!(
            (out.total_cost - reconstructed).abs() < 1e-9 * (1.0 + reconstructed),
            "cost {} vs reconstruction {}",
            out.total_cost,
            reconstructed
        );
    }

    #[test]
    fn elapsed_never_exceeds_paid_listening(p in params()) {
        // Replies can cut a round short, so wall-clock listening is at
        // most the fully-charged r per probe round.
        let cfg = config(&p);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let out = run_once(&cfg, &mut rng).unwrap();
        prop_assert!(
            out.elapsed.seconds() <= p.r * out.probes_sent as f64 + 1e-9,
            "elapsed {} vs max {}",
            out.elapsed.seconds(),
            p.r * out.probes_sent as f64
        );
    }

    #[test]
    fn successful_runs_end_with_a_full_silent_window(p in params()) {
        let cfg = config(&p);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let out = run_once(&cfg, &mut rng).unwrap();
        // Whatever happened before, the final (accepting) attempt always
        // transmits exactly n probes; hence probes_sent >= n and
        // probes_sent ≡ counts per attempt.
        prop_assert!(out.probes_sent >= p.n);
        prop_assert!(out.attempts >= 1);
        // Each non-final attempt sends at least one probe and at most n.
        prop_assert!(out.probes_sent <= out.attempts * p.n);
    }

    #[test]
    fn aggregate_mean_matches_identity_in_expectation(p in params()) {
        // Summed over many runs, mean cost must equal
        // (r + c)·E[probes] + E·P(collision) by linearity.
        let cfg = config(&p);
        let mut rng = StdRng::seed_from_u64(p.seed);
        let summary = run_many(&cfg, 400, &mut rng).unwrap();
        let lhs = summary.cost.mean();
        let rhs = (p.r + p.c) * summary.probes_sent.mean()
            + p.e * summary.collision_rate();
        prop_assert!(
            (lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()),
            "mean {} vs identity {}",
            lhs,
            rhs
        );
    }

    #[test]
    fn lossless_long_listen_never_collides(
        n in 1u32..5,
        q in 0.01f64..0.9,
        seed in 0u64..100_000,
    ) {
        // Replies always arrive (loss 0) within delay + tail; a listening
        // period comfortably longer than the delay makes collisions
        // impossible in a static network.
        let cfg = ProtocolConfig::builder()
            .probes(n)
            .listen_period(50.0)
            .probe_cost(1.0)
            .error_cost(100.0)
            .occupancy(q)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.0, 10.0, 0.1).unwrap(),
            ))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let summary = run_many(&cfg, 200, &mut rng).unwrap();
        prop_assert_eq!(summary.collisions, 0);
    }
}
