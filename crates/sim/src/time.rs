//! Simulation time: a totally ordered, validated wrapper around seconds.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// `SimTime` maintains the invariant of being finite and nonnegative,
/// which makes it totally ordered (`Ord`) and therefore usable as a
/// priority in the event queue — something a raw `f64` cannot offer.
///
/// # Examples
///
/// ```
/// use zeroconf_sim::SimTime;
///
/// let t = SimTime::new(1.5).unwrap() + SimTime::new(0.5).unwrap();
/// assert_eq!(t.seconds(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point; `None` for negative, NaN or infinite input.
    pub fn new(seconds: f64) -> Option<SimTime> {
        if seconds.is_finite() && seconds >= 0.0 {
            Some(SimTime(seconds))
        } else {
            None
        }
    }

    /// The wrapped seconds value.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: `max(self − other, 0)`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Both values are finite (enforced by the constructor), so the
        // IEEE total order coincides with the numeric order.
        self.0.total_cmp(&other.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, other: SimTime) -> SimTime {
        SimTime(self.0 + other.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics (in debug builds) when the result would be negative; use
    /// [`SimTime::saturating_sub`] when clamping is intended.
    fn sub(self, other: SimTime) -> SimTime {
        debug_assert!(self.0 >= other.0, "SimTime subtraction went negative");
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(SimTime::new(0.0).is_some());
        assert!(SimTime::new(1e9).is_some());
        assert!(SimTime::new(-0.1).is_none());
        assert!(SimTime::new(f64::NAN).is_none());
        assert!(SimTime::new(f64::INFINITY).is_none());
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0).unwrap();
        let b = SimTime::new(2.0).unwrap();
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn arithmetic_works() {
        let a = SimTime::new(3.0).unwrap();
        let b = SimTime::new(1.0).unwrap();
        assert_eq!((a + b).seconds(), 4.0);
        assert_eq!((a - b).seconds(), 2.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::new(1.25).unwrap().to_string(), "1.250000s");
    }
}
