//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A scheduled event: payload `E` due at a given time.
///
/// Events at equal times are delivered in scheduling order (FIFO), which
/// keeps multi-host simulations deterministic under a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

/// A min-heap of events ordered by `(time, insertion sequence)`.
///
/// # Examples
///
/// ```
/// use zeroconf_sim::events::EventQueue;
/// use zeroconf_sim::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::new(2.0).unwrap(), "late");
/// q.schedule(SimTime::new(1.0).unwrap(), "early");
/// assert_eq!(q.pop().unwrap().event, "early");
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    sequence: u64,
    now: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    sequence: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.sequence == other.sequence
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.sequence).cmp(&(other.at, other.sequence))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            sequence: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time: the timestamp of the last popped event
    /// (zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is allowed (the event fires "immediately",
    /// still after already-due events) — broadcast deliveries with zero
    /// delay rely on this.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let entry = Entry {
            at,
            sequence: self.sequence,
            event,
        };
        self.sequence += 1;
        self.heap.push(Reverse(entry));
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    /// Events scheduled "in the past" do not move the clock backwards.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop().map(|Reverse(entry)| {
            self.now = self.now.max(entry.at);
            Scheduled {
                at: entry.at,
                event: entry.event,
            }
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seconds: f64) -> SimTime {
        SimTime::new(seconds).unwrap()
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 'c');
        q.schedule(t(1.0), 'a');
        q.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(t(5.0), ());
        q.pop();
        assert_eq!(q.now(), t(5.0));
    }

    #[test]
    fn clock_does_not_move_backwards() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), "future");
        q.pop();
        q.schedule(t(1.0), "past");
        let e = q.pop().unwrap();
        assert_eq!(e.event, "past");
        assert_eq!(e.at, t(1.0));
        assert_eq!(q.now(), t(5.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), "first");
        q.pop();
        q.schedule_in(t(1.5), "second");
        assert_eq!(q.peek_time(), Some(t(3.5)));
    }

    #[test]
    fn len_and_is_empty_track_content() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(t(1.0), ());
        q.schedule(t(2.0), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
    }
}
