//! Streaming statistics for Monte-Carlo runs.

/// Welford online accumulator for mean and variance, with extremes.
///
/// # Examples
///
/// ```
/// use zeroconf_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (zero before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (zero with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    pub fn standard_deviation(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count > 0 {
            (self.variance() / self.count as f64).sqrt()
        } else {
            0.0
        }
    }

    /// Smallest observation (`+∞` before any observation).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` before any observation).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Normal-approximation 95 % confidence interval for the mean.
    pub fn confidence_interval_95(&self) -> (f64, f64) {
        let half = 1.959_963_985 * self.standard_error();
        (self.mean - half, self.mean + half)
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Wilson score interval for a binomial proportion — more trustworthy than
/// the normal approximation for the tiny collision rates this simulator
/// estimates.
///
/// Returns `(lower, upper)` at 95 % confidence; `(0, 1)` when `trials` is
/// zero.
pub fn wilson_interval_95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985f64;
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn known_small_sample() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let mut s = RunningStats::new();
        for i in 0..100 {
            s.push(i as f64);
        }
        let (lo, hi) = s.confidence_interval_95();
        assert!(lo < s.mean() && s.mean() < hi);
        assert!(hi - lo < 20.0);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..20] {
            left.push(x);
        }
        for &x in &xs[20..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(3.0);
        let copy = s;
        s.merge(&RunningStats::new());
        assert_eq!(s, copy);
        let mut empty = RunningStats::new();
        empty.merge(&copy);
        assert_eq!(empty, copy);
    }

    #[test]
    fn wilson_interval_behaves() {
        let (lo, hi) = wilson_interval_95(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        // Zero successes: interval starts at (numerically) zero but stays
        // informative.
        let (lo, hi) = wilson_interval_95(0, 1000);
        assert!(lo.abs() < 1e-12);
        assert!(hi < 0.01);
        // Half successes: symmetric-ish around 0.5.
        let (lo, hi) = wilson_interval_95(500, 1000);
        assert!(lo < 0.5 && hi > 0.5);
        assert!((0.5 - lo - (hi - 0.5)).abs() < 1e-6);
        // All successes.
        let (lo, hi) = wilson_interval_95(1000, 1000);
        assert!(lo > 0.99);
        assert!(hi > 1.0 - 1e-12);
    }

    #[test]
    fn wilson_contains_true_rate_for_typical_case() {
        let (lo, hi) = wilson_interval_95(30, 1000);
        assert!(lo < 0.03 && 0.03 < hi);
    }
}

/// A sample store for empirical quantiles (user-perceived latency
/// percentiles of configuration time, tail costs, …).
///
/// Keeps every observation; for the Monte-Carlo sizes this crate runs
/// (10⁵–10⁶) that is a few megabytes and exact, which beats a sketch.
///
/// # Examples
///
/// ```
/// use zeroconf_sim::stats::Quantiles;
///
/// let mut q = Quantiles::new();
/// for v in 1..=99 {
///     q.push(v as f64);
/// }
/// assert_eq!(q.quantile(0.5), Some(50.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty store.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Adds an observation; non-finite values are ignored (and should not
    /// occur in this crate's pipelines).
    pub fn push(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Number of stored observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The empirical `q`-quantile (nearest-rank), `None` when empty or `q`
    /// outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) || !q.is_finite() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let idx =
            ((q * (self.samples.len() - 1) as f64).round() as usize).min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the 95th percentile — the "slow but not pathological"
    /// configuration experience.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Convenience: the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn empty_store_has_no_quantiles() {
        let mut q = Quantiles::new();
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.count(), 0);
    }

    #[test]
    fn quantiles_walk_sorted_data() {
        let mut q = Quantiles::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            q.push(v);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
    }

    #[test]
    fn out_of_range_levels_are_rejected() {
        let mut q = Quantiles::new();
        q.push(1.0);
        assert_eq!(q.quantile(-0.1), None);
        assert_eq!(q.quantile(1.1), None);
        assert_eq!(q.quantile(f64::NAN), None);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut q = Quantiles::new();
        q.push(f64::NAN);
        q.push(f64::INFINITY);
        q.push(2.0);
        assert_eq!(q.count(), 1);
        assert_eq!(q.median(), Some(2.0));
    }

    #[test]
    fn pushes_after_query_resort() {
        let mut q = Quantiles::new();
        q.push(10.0);
        assert_eq!(q.median(), Some(10.0));
        q.push(1.0);
        q.push(2.0);
        assert_eq!(q.median(), Some(2.0));
    }

    #[test]
    fn p95_and_p99_of_uniform_grid() {
        let mut q = Quantiles::new();
        for v in 1..=1000 {
            q.push(v as f64);
        }
        assert!((q.p95().unwrap() - 950.0).abs() <= 1.0);
        assert!((q.p99().unwrap() - 990.0).abs() <= 1.0);
    }
}
