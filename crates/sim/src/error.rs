use std::error::Error;
use std::fmt;

use zeroconf_dist::DistError;

/// Errors produced by the protocol simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration parameter was outside its domain.
    InvalidConfig {
        /// Name of the parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A required configuration field was never set.
    MissingConfig {
        /// Name of the missing field.
        field: &'static str,
    },
    /// The address pool cannot satisfy the request (e.g. more occupied
    /// addresses than the pool holds).
    AddressSpaceExhausted {
        /// Requested number of addresses.
        requested: u32,
        /// Pool capacity.
        capacity: u32,
    },
    /// Zero trials or hosts were requested.
    NothingToSimulate,
    /// A single run exceeded its safety bound without resolving.
    RunDidNotResolve {
        /// The bound that was hit.
        max_attempts: u32,
    },
    /// An underlying distribution computation failed.
    Dist(DistError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter, value } => {
                write!(f, "invalid simulation parameter {parameter} = {value}")
            }
            SimError::MissingConfig { field } => {
                write!(f, "missing simulation configuration field: {field}")
            }
            SimError::AddressSpaceExhausted {
                requested,
                capacity,
            } => write!(
                f,
                "cannot occupy {requested} addresses in a pool of {capacity}"
            ),
            SimError::NothingToSimulate => write!(f, "zero trials or hosts requested"),
            SimError::RunDidNotResolve { max_attempts } => {
                write!(f, "run did not resolve within {max_attempts} attempts")
            }
            SimError::Dist(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for SimError {
    fn from(e: DistError) -> Self {
        SimError::Dist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SimError::MissingConfig { field: "probes" }
            .to_string()
            .contains("probes"));
        assert!(SimError::AddressSpaceExhausted {
            requested: 10,
            capacity: 5
        }
        .to_string()
        .contains("10"));
    }

    #[test]
    fn dist_errors_convert_with_source() {
        let e: SimError = DistError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&SimError::NothingToSimulate).is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
