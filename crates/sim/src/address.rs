//! The link-local address pool.

use std::collections::HashSet;

use zeroconf_rng::Rng;

use crate::SimError;

/// Number of addresses IANA reserves for IPv4 link-local configuration.
pub const LINK_LOCAL_POOL_SIZE: u32 = 65024;

/// The pool of candidate addresses with occupancy tracking.
///
/// Addresses are abstract indices `0 .. size`; mapping them onto the
/// concrete 169.254.x.y range would add nothing to the model.
///
/// # Examples
///
/// ```
/// use zeroconf_rng::SeedableRng;
/// use zeroconf_sim::address::AddressPool;
///
/// # fn main() -> Result<(), zeroconf_sim::SimError> {
/// let mut rng = zeroconf_rng::rngs::StdRng::seed_from_u64(3);
/// let pool = AddressPool::with_random_occupancy(100, 30, &mut rng)?;
/// assert_eq!(pool.occupied_count(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressPool {
    size: u32,
    occupied: HashSet<u32>,
}

impl AddressPool {
    /// Creates an empty pool of `size` addresses.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `size == 0`.
    pub fn new(size: u32) -> Result<Self, SimError> {
        if size == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "address pool size",
                value: 0.0,
            });
        }
        Ok(AddressPool {
            size,
            occupied: HashSet::new(),
        })
    }

    /// Creates the standard 65024-address link-local pool.
    pub fn link_local() -> Self {
        AddressPool::new(LINK_LOCAL_POOL_SIZE).expect("pool size is positive")
    }

    /// Creates a pool with `occupied` distinct random addresses in use —
    /// the paper's "m hosts already connected".
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidConfig`] when `size == 0`.
    /// - [`SimError::AddressSpaceExhausted`] when `occupied > size`.
    pub fn with_random_occupancy<R: Rng>(
        size: u32,
        occupied: u32,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        let mut pool = AddressPool::new(size)?;
        if occupied > size {
            return Err(SimError::AddressSpaceExhausted {
                requested: occupied,
                capacity: size,
            });
        }
        while pool.occupied.len() < occupied as usize {
            pool.occupied.insert(rng.gen_range(0..size));
        }
        Ok(pool)
    }

    /// Pool capacity.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of occupied addresses.
    pub fn occupied_count(&self) -> u32 {
        self.occupied.len() as u32
    }

    /// Fraction of the pool in use — the model's `q`.
    pub fn occupancy(&self) -> f64 {
        self.occupied.len() as f64 / self.size as f64
    }

    /// True when `address` is in use.
    pub fn is_occupied(&self, address: u32) -> bool {
        self.occupied.contains(&address)
    }

    /// Marks an address as in use; returns whether it was free before.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an address outside the pool.
    pub fn occupy(&mut self, address: u32) -> Result<bool, SimError> {
        self.check(address)?;
        Ok(self.occupied.insert(address))
    }

    /// Releases an address; returns whether it was in use.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an address outside the pool.
    pub fn release(&mut self, address: u32) -> Result<bool, SimError> {
        self.check(address)?;
        Ok(self.occupied.remove(&address))
    }

    /// Draws a uniformly random candidate address (occupied or not), as
    /// the protocol does.
    pub fn random_candidate<R: Rng>(&self, rng: &mut R) -> u32 {
        rng.gen_range(0..self.size)
    }

    /// Draws a uniformly random *occupied* address, `None` when the pool
    /// is empty of occupants. Used by churn models (a departing host frees
    /// its address).
    pub fn random_occupied<R: Rng>(&self, rng: &mut R) -> Option<u32> {
        if self.occupied.is_empty() {
            return None;
        }
        let index = rng.gen_range(0..self.occupied.len());
        self.occupied.iter().nth(index).copied()
    }

    /// Draws a uniformly random *free* address by rejection sampling,
    /// `None` when the pool is saturated. Used by churn models (an
    /// arriving host claims a free address).
    pub fn random_free<R: Rng>(&self, rng: &mut R) -> Option<u32> {
        if self.occupied.len() as u32 >= self.size {
            return None;
        }
        loop {
            let candidate = rng.gen_range(0..self.size);
            if !self.occupied.contains(&candidate) {
                return Some(candidate);
            }
        }
    }

    fn check(&self, address: u32) -> Result<(), SimError> {
        if address >= self.size {
            Err(SimError::InvalidConfig {
                parameter: "address",
                value: address as f64,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    #[test]
    fn empty_pool_size_is_rejected() {
        assert!(AddressPool::new(0).is_err());
    }

    #[test]
    fn link_local_pool_has_iana_size() {
        assert_eq!(AddressPool::link_local().size(), 65024);
    }

    #[test]
    fn random_occupancy_is_exact_and_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = AddressPool::with_random_occupancy(1000, 250, &mut rng).unwrap();
        assert_eq!(pool.occupied_count(), 250);
        assert!((pool.occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn over_occupancy_is_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            AddressPool::with_random_occupancy(10, 11, &mut rng),
            Err(SimError::AddressSpaceExhausted { .. })
        ));
    }

    #[test]
    fn full_occupancy_terminates() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = AddressPool::with_random_occupancy(16, 16, &mut rng).unwrap();
        assert_eq!(pool.occupied_count(), 16);
        for a in 0..16 {
            assert!(pool.is_occupied(a));
        }
    }

    #[test]
    fn occupy_and_release_round_trip() {
        let mut pool = AddressPool::new(8).unwrap();
        assert!(pool.occupy(3).unwrap());
        assert!(!pool.occupy(3).unwrap());
        assert!(pool.is_occupied(3));
        assert!(pool.release(3).unwrap());
        assert!(!pool.release(3).unwrap());
        assert!(!pool.is_occupied(3));
    }

    #[test]
    fn out_of_range_addresses_are_rejected() {
        let mut pool = AddressPool::new(8).unwrap();
        assert!(pool.occupy(8).is_err());
        assert!(pool.release(100).is_err());
    }

    #[test]
    fn random_candidates_cover_the_pool() {
        let pool = AddressPool::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(pool.random_candidate(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn random_occupied_and_free_respect_the_partition() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool = AddressPool::with_random_occupancy(64, 16, &mut rng).unwrap();
        for _ in 0..200 {
            let occupied = pool.random_occupied(&mut rng).unwrap();
            assert!(pool.is_occupied(occupied));
            let free = pool.random_free(&mut rng).unwrap();
            assert!(!pool.is_occupied(free));
        }
    }

    #[test]
    fn degenerate_pools_return_none() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty = AddressPool::new(8).unwrap();
        assert_eq!(empty.random_occupied(&mut rng), None);
        let full = AddressPool::with_random_occupancy(8, 8, &mut rng).unwrap();
        assert_eq!(full.random_free(&mut rng), None);
    }

    #[test]
    fn candidate_hit_rate_matches_occupancy() {
        let mut rng = StdRng::seed_from_u64(4);
        let pool = AddressPool::with_random_occupancy(500, 100, &mut rng).unwrap();
        let trials = 50_000;
        let hits = (0..trials)
            .filter(|_| pool.is_occupied(pool.random_candidate(&mut rng)))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.2).abs() < 0.01, "hit rate {rate}");
    }
}
