//! Discrete-event simulation of the IPv4 zeroconf initialization protocol.
//!
//! The analytical model of `zeroconf-cost` abstracts the network into the
//! no-answer probabilities `p_i(r)`. This crate simulates the *protocol
//! itself* — probes sent at times `0, r, 2r, …`, replies drawn from a
//! defective reply-time distribution, restarts on replies, acceptance
//! after `n` silent rounds — and thereby provides an independent check of
//! Eq. (3) and Eq. (4): because Eq. (1) telescopes to a product of
//! per-probe survivals, a simulation with independent per-probe reply
//! delays follows *exactly* the same law as the paper's Markov chain (see
//! `zeroconf_dist::noanswer`). The `figures validate` experiment and the
//! integration tests exploit this.
//!
//! Beyond validation, the simulator covers what the analytical model
//! deliberately leaves out:
//!
//! - the Internet-Draft's **rate limiting** (after 10 conflicts a host must
//!   back off to one address per minute) and **no-retry of failed
//!   addresses**, both acknowledged as abstractions in Section 3.1;
//! - **multi-host** concurrent configuration ([`multihost`]), where several
//!   fresh hosts race for addresses and can conflict with each other — the
//!   scenario the paper defers to its Uppaal-based companion work \[7\].
//!
//! # Architecture
//!
//! - [`protocol`] — the single-host state machine and its Monte-Carlo
//!   runner, cost-accounted identically to the DRM;
//! - [`events`] — a deterministic discrete-event queue (time plus sequence
//!   number, so simultaneous events resolve in insertion order);
//! - [`address`] — the 65024-address pool with occupancy tracking;
//! - [`network`] — broadcast link with per-recipient loss and delay;
//! - [`multihost`] — the concurrent-configuration simulation;
//! - [`stats`] — Welford accumulators and confidence intervals.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use zeroconf_rng::SeedableRng;
//! use zeroconf_dist::DefectiveExponential;
//! use zeroconf_sim::protocol::{ProtocolConfig, run_many};
//!
//! # fn main() -> Result<(), zeroconf_sim::SimError> {
//! let config = ProtocolConfig::builder()
//!     .probes(4)
//!     .listen_period(2.0)
//!     .probe_cost(2.0)
//!     .error_cost(1e4)
//!     .occupancy(0.3)
//!     .reply_time(Arc::new(DefectiveExponential::new(0.9, 10.0, 1.0)?))
//!     .build()?;
//! let mut rng = zeroconf_rng::rngs::StdRng::seed_from_u64(1);
//! let summary = run_many(&config, 1000, &mut rng)?;
//! assert!(summary.cost.mean() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod address;
mod error;
pub mod events;
pub mod multihost;
pub mod network;
pub mod protocol;
pub mod stats;
mod time;

pub use error::SimError;
pub use time::SimTime;
