//! Concurrent configuration of several fresh hosts.
//!
//! The paper's model covers a *single* fresh host against a static
//! network and points to the Uppaal-based companion study for "what
//! happens in a setting in which multiple hosts simultaneously request an
//! IP address" (Section 1, related work). This module simulates that
//! setting with the event queue:
//!
//! - every fresh host runs the probe/listen state machine concurrently,
//! - a probe for an address owned by a *configured* host (pre-existing or
//!   freshly configured) draws a reply delay from `F_X` (or none — the
//!   defect covers loss),
//! - probes are also *broadcast to other probing hosts*: per the draft, a
//!   host that sees a rival's probe for its own candidate treats it as a
//!   conflict and restarts — this is how simultaneous claims on the same
//!   address are usually resolved before anyone configures,
//! - a host that completes `n` silent rounds configures; if its address is
//!   in fact owned by someone else, that is an address collision.
//!
//! Cost accounting per host matches the DRM rewards exactly as in
//! [`protocol`](crate::protocol).

use zeroconf_rng::Rng;

use crate::address::AddressPool;
use crate::events::EventQueue;
use crate::network::Link;
use crate::stats::RunningStats;
use crate::{SimError, SimTime};

/// Configuration of a multi-host simulation.
#[derive(Debug, Clone)]
pub struct MultiHostConfig {
    /// Number of fresh hosts configuring simultaneously.
    pub fresh_hosts: u32,
    /// Probe count `n` per attempt.
    pub probes: u32,
    /// Listening period `r` (seconds).
    pub listen_period: f64,
    /// Per-probe postage `c`.
    pub probe_cost: f64,
    /// Collision cost `E`.
    pub error_cost: f64,
    /// The shared broadcast link.
    pub link: Link,
    /// Address attempts allowed per host before the run is aborted.
    pub max_attempts_per_host: u32,
}

impl MultiHostConfig {
    fn validate(&self) -> Result<(), SimError> {
        if self.fresh_hosts == 0 {
            return Err(SimError::NothingToSimulate);
        }
        if self.probes == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "probes",
                value: 0.0,
            });
        }
        if !self.listen_period.is_finite() || self.listen_period <= 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "listen_period",
                value: self.listen_period,
            });
        }
        for (name, v) in [
            ("probe_cost", self.probe_cost),
            ("error_cost", self.error_cost),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(SimError::InvalidConfig {
                    parameter: name,
                    value: v,
                });
            }
        }
        if self.max_attempts_per_host == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "max_attempts_per_host",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// Final state of one fresh host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostResult {
    /// The address the host settled on.
    pub address: u32,
    /// True when that address is also owned by a pre-configured host or
    /// another fresh host — a real collision on the link.
    pub collided: bool,
    /// Candidate addresses tried.
    pub attempts: u32,
    /// DRM-style accumulated cost.
    pub total_cost: f64,
    /// Time from simulation start to configuration.
    pub configured_at: SimTime,
}

/// Outcome of one multi-host run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHostOutcome {
    /// Per-host results, indexed by fresh-host id.
    pub hosts: Vec<HostResult>,
    /// Number of fresh hosts whose final address collides.
    pub collisions: u32,
    /// The latest configuration time (network fully settled).
    pub settled_at: SimTime,
}

/// Aggregate over many runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHostSummary {
    /// Runs simulated.
    pub trials: u64,
    /// Per-run collision counts.
    pub collisions: RunningStats,
    /// Per-host cost statistics pooled over all runs.
    pub cost: RunningStats,
    /// Per-host attempt statistics pooled over all runs.
    pub attempts: RunningStats,
    /// Per-run settle-time statistics.
    pub settle_seconds: RunningStats,
    /// Runs in which at least one collision happened.
    pub runs_with_collision: u64,
}

/// A background-churn model: while fresh hosts are still configuring,
/// already-configured bystander hosts join and leave the link with
/// exponential inter-event times. This deliberately violates the paper's
/// Section 3.1 assumption that "other devices are neither added nor
/// removed from the network" — the churn experiments measure how much
/// that abstraction costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Churn {
    /// Rate (events per second) of new bystander hosts occupying a free
    /// address.
    pub arrival_rate: f64,
    /// Rate (events per second) of existing bystanders releasing theirs.
    pub departure_rate: f64,
}

impl Churn {
    fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("arrival_rate", self.arrival_rate),
            ("departure_rate", self.departure_rate),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(SimError::InvalidConfig {
                    parameter: name,
                    value: v,
                });
            }
        }
        Ok(())
    }

    fn next_gap<R: Rng>(rate: f64, rng: &mut R) -> Option<SimTime> {
        if rate <= 0.0 {
            return None;
        }
        let u: f64 = rng.gen();
        SimTime::new(-(-u).ln_1p() / rate)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Probing { candidate: u32, rounds_paid: u32 },
    Configured { address: u32 },
}

#[derive(Debug, Clone, Copy)]
enum Event {
    /// Host sends probe number `round` (1-based) of its current attempt.
    ProbeSend { host: u32, attempt: u32, round: u32 },
    /// The final listening period of the attempt ended silently.
    RoundsComplete { host: u32, attempt: u32 },
    /// A reply to one of the host's probes arrives.
    Reply { host: u32, attempt: u32 },
    /// Another probing host's probe for `candidate` reaches this host.
    RivalProbeSeen {
        host: u32,
        attempt: u32,
        candidate: u32,
    },
    /// A churned bystander host joins the link.
    ChurnArrival,
    /// A churned bystander host leaves the link.
    ChurnDeparture,
}

struct HostState {
    phase: Phase,
    attempt: u32,
    attempts_used: u32,
    total_cost: f64,
    configured_at: SimTime,
}

/// Runs one multi-host simulation on the given pool (pre-occupied entries
/// model the `m` existing hosts).
///
/// # Errors
///
/// - Validation errors from the configuration.
/// - [`SimError::RunDidNotResolve`] when a host exhausts its attempt
///   budget (e.g. a saturated pool).
pub fn run_once<R: Rng>(
    config: &MultiHostConfig,
    pool: &AddressPool,
    rng: &mut R,
) -> Result<MultiHostOutcome, SimError> {
    run_once_with_churn(config, pool, None, rng)
}

/// Like [`run_once`], but with background churn: bystander hosts keep
/// joining and leaving while the fresh hosts configure.
///
/// # Errors
///
/// Same conditions as [`run_once`], plus validation of the churn rates.
pub fn run_once_with_churn<R: Rng>(
    config: &MultiHostConfig,
    pool: &AddressPool,
    churn: Option<&Churn>,
    rng: &mut R,
) -> Result<MultiHostOutcome, SimError> {
    config.validate()?;
    if let Some(churn) = churn {
        churn.validate()?;
    }
    let mut pool = pool.clone();
    let n = config.probes;
    let r = config.listen_period;
    let round_cost = r + config.probe_cost;
    let hosts_count = config.fresh_hosts as usize;

    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut hosts: Vec<HostState> = Vec::with_capacity(hosts_count);

    for host in 0..hosts_count as u32 {
        let candidate = pool.random_candidate(rng);
        hosts.push(HostState {
            phase: Phase::Probing {
                candidate,
                rounds_paid: 0,
            },
            attempt: 0,
            attempts_used: 1,
            total_cost: 0.0,
            configured_at: SimTime::ZERO,
        });
        queue.schedule(
            SimTime::ZERO,
            Event::ProbeSend {
                host,
                attempt: 0,
                round: 1,
            },
        );
    }
    if let Some(churn) = churn {
        if let Some(gap) = Churn::next_gap(churn.arrival_rate, rng) {
            queue.schedule(gap, Event::ChurnArrival);
        }
        if let Some(gap) = Churn::next_gap(churn.departure_rate, rng) {
            queue.schedule(gap, Event::ChurnDeparture);
        }
    }

    while let Some(scheduled) = queue.pop() {
        let now = scheduled.at;
        match scheduled.event {
            Event::ProbeSend {
                host,
                attempt,
                round,
            } => {
                let (candidate, current_attempt) = match &mut hosts[host as usize] {
                    HostState {
                        phase:
                            Phase::Probing {
                                candidate,
                                rounds_paid,
                            },
                        attempt: a,
                        ..
                    } if *a == attempt => {
                        *rounds_paid = round;
                        (*candidate, *a)
                    }
                    _ => continue, // stale event from an abandoned attempt
                };
                hosts[host as usize].total_cost += round_cost;

                // A configured owner (pre-existing or fresh) may reply.
                let owner_exists = pool.is_occupied(candidate)
                    || hosts.iter().enumerate().any(|(other, h)| {
                        other != host as usize
                            && matches!(h.phase, Phase::Configured { address } if address == candidate)
                    });
                if owner_exists {
                    if let Some(delay) = config.link.sample_reply_delay(rng) {
                        queue.schedule(
                            now + delay,
                            Event::Reply {
                                host,
                                attempt: current_attempt,
                            },
                        );
                    }
                }

                // Broadcast to rival probing hosts.
                for other in 0..hosts_count as u32 {
                    if other == host {
                        continue;
                    }
                    if let Phase::Probing { .. } = hosts[other as usize].phase {
                        if config.link.probe_delivered(rng) {
                            queue.schedule(
                                now + config.link.probe_delay(),
                                Event::RivalProbeSeen {
                                    host: other,
                                    attempt: hosts[other as usize].attempt,
                                    candidate,
                                },
                            );
                        }
                    }
                }

                // Schedule the rest of this attempt.
                let next_time = now + SimTime::new(r).expect("validated r");
                if round < n {
                    queue.schedule(
                        next_time,
                        Event::ProbeSend {
                            host,
                            attempt: current_attempt,
                            round: round + 1,
                        },
                    );
                } else {
                    queue.schedule(
                        next_time,
                        Event::RoundsComplete {
                            host,
                            attempt: current_attempt,
                        },
                    );
                }
            }
            Event::RoundsComplete { host, attempt } => {
                let state = &mut hosts[host as usize];
                if state.attempt != attempt {
                    continue;
                }
                if let Phase::Probing { candidate, .. } = state.phase {
                    state.phase = Phase::Configured { address: candidate };
                    state.configured_at = now;
                }
            }
            Event::Reply { host, attempt } => {
                restart_host(
                    &mut hosts, host, attempt, None, &pool, config, &mut queue, now, rng,
                )?;
            }
            Event::RivalProbeSeen {
                host,
                attempt,
                candidate,
            } => {
                restart_host(
                    &mut hosts,
                    host,
                    attempt,
                    Some(candidate),
                    &pool,
                    config,
                    &mut queue,
                    now,
                    rng,
                )?;
            }
            Event::ChurnArrival => {
                if let Some(address) = pool.random_free(rng) {
                    pool.occupy(address)?;
                }
                // Keep churning only while someone is still configuring;
                // otherwise let the queue drain.
                if hosts
                    .iter()
                    .any(|h| matches!(h.phase, Phase::Probing { .. }))
                {
                    if let Some(churn) = churn {
                        if let Some(gap) = Churn::next_gap(churn.arrival_rate, rng) {
                            queue.schedule(now + gap, Event::ChurnArrival);
                        }
                    }
                }
            }
            Event::ChurnDeparture => {
                if let Some(address) = pool.random_occupied(rng) {
                    pool.release(address)?;
                }
                if hosts
                    .iter()
                    .any(|h| matches!(h.phase, Phase::Probing { .. }))
                {
                    if let Some(churn) = churn {
                        if let Some(gap) = Churn::next_gap(churn.departure_rate, rng) {
                            queue.schedule(now + gap, Event::ChurnDeparture);
                        }
                    }
                }
            }
        }
    }

    // Everyone is configured (or the queue drained); assess collisions.
    let mut results = Vec::with_capacity(hosts_count);
    let mut collisions = 0;
    let mut settled_at = SimTime::ZERO;
    for (i, state) in hosts.iter().enumerate() {
        let address = match state.phase {
            Phase::Configured { address } => address,
            Phase::Probing { .. } => {
                return Err(SimError::RunDidNotResolve {
                    max_attempts: config.max_attempts_per_host,
                })
            }
        };
        let collided = pool.is_occupied(address)
            || hosts.iter().enumerate().any(|(other, h)| {
                other != i && matches!(h.phase, Phase::Configured { address: a } if a == address)
            });
        let mut total_cost = state.total_cost;
        if collided {
            total_cost += config.error_cost;
        }
        if collided {
            collisions += 1;
        }
        settled_at = settled_at.max(state.configured_at);
        results.push(HostResult {
            address,
            collided,
            attempts: state.attempts_used,
            total_cost,
            configured_at: state.configured_at,
        });
    }
    Ok(MultiHostOutcome {
        hosts: results,
        collisions,
        settled_at,
    })
}

#[allow(clippy::too_many_arguments)]
fn restart_host<R: Rng>(
    hosts: &mut [HostState],
    host: u32,
    attempt: u32,
    only_if_candidate: Option<u32>,
    pool: &AddressPool,
    config: &MultiHostConfig,
    queue: &mut EventQueue<Event>,
    now: SimTime,
    rng: &mut R,
) -> Result<(), SimError> {
    let state = &mut hosts[host as usize];
    if state.attempt != attempt {
        return Ok(()); // stale
    }
    let current_candidate = match state.phase {
        Phase::Probing { candidate, .. } => candidate,
        Phase::Configured { .. } => return Ok(()),
    };
    if let Some(required) = only_if_candidate {
        if required != current_candidate {
            return Ok(()); // rival probed a different address
        }
    }
    if state.attempts_used >= config.max_attempts_per_host {
        return Err(SimError::RunDidNotResolve {
            max_attempts: config.max_attempts_per_host,
        });
    }
    state.attempt += 1;
    state.attempts_used += 1;
    let candidate = pool.random_candidate(rng);
    state.phase = Phase::Probing {
        candidate,
        rounds_paid: 0,
    };
    queue.schedule(
        now,
        Event::ProbeSend {
            host,
            attempt: state.attempt,
            round: 1,
        },
    );
    Ok(())
}

/// Runs `trials` independent multi-host simulations, regenerating the
/// random pre-occupancy each run.
///
/// # Errors
///
/// - [`SimError::NothingToSimulate`] when `trials == 0`.
/// - Pool-construction and per-run errors.
pub fn run_many<R: Rng>(
    config: &MultiHostConfig,
    pool_size: u32,
    pre_occupied: u32,
    trials: u64,
    rng: &mut R,
) -> Result<MultiHostSummary, SimError> {
    if trials == 0 {
        return Err(SimError::NothingToSimulate);
    }
    let mut collisions = RunningStats::new();
    let mut cost = RunningStats::new();
    let mut attempts = RunningStats::new();
    let mut settle = RunningStats::new();
    let mut runs_with_collision = 0;
    for _ in 0..trials {
        let pool = AddressPool::with_random_occupancy(pool_size, pre_occupied, rng)?;
        let outcome = run_once(config, &pool, rng)?;
        collisions.push(outcome.collisions as f64);
        if outcome.collisions > 0 {
            runs_with_collision += 1;
        }
        for host in &outcome.hosts {
            cost.push(host.total_cost);
            attempts.push(host.attempts as f64);
        }
        settle.push(outcome.settled_at.seconds());
    }
    Ok(MultiHostSummary {
        trials,
        collisions,
        cost,
        attempts,
        settle_seconds: settle,
        runs_with_collision,
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn link(loss: f64) -> Link {
        Link::new(Arc::new(
            DefectiveExponential::from_loss(loss, 20.0, 0.05).unwrap(),
        ))
    }

    fn config(fresh: u32, loss: f64) -> MultiHostConfig {
        MultiHostConfig {
            fresh_hosts: fresh,
            probes: 3,
            listen_period: 0.5,
            probe_cost: 1.0,
            error_cost: 100.0,
            link: link(loss),
            max_attempts_per_host: 1000,
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = AddressPool::new(100).unwrap();
        for bad in [
            MultiHostConfig {
                fresh_hosts: 0,
                ..config(1, 0.0)
            },
            MultiHostConfig {
                probes: 0,
                ..config(1, 0.0)
            },
            MultiHostConfig {
                listen_period: 0.0,
                ..config(1, 0.0)
            },
            MultiHostConfig {
                max_attempts_per_host: 0,
                ..config(1, 0.0)
            },
        ] {
            assert!(run_once(&bad, &pool, &mut rng).is_err());
        }
    }

    #[test]
    fn lone_host_on_empty_network_configures_cleanly() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = AddressPool::new(1000).unwrap();
        let cfg = config(1, 0.0);
        let out = run_once(&cfg, &pool, &mut rng).unwrap();
        assert_eq!(out.collisions, 0);
        assert_eq!(out.hosts.len(), 1);
        assert_eq!(out.hosts[0].attempts, 1);
        // n rounds of (r + c).
        assert!((out.hosts[0].total_cost - 3.0 * 1.5).abs() < 1e-12);
        assert!((out.settled_at.seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn many_hosts_large_pool_no_collisions_with_reliable_link() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = AddressPool::new(65024).unwrap();
        let cfg = config(10, 0.0);
        let out = run_once(&cfg, &pool, &mut rng).unwrap();
        assert_eq!(out.collisions, 0);
        // All final addresses distinct.
        let mut addrs: Vec<u32> = out.hosts.iter().map(|h| h.address).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
    }

    #[test]
    fn occupied_address_with_reliable_replies_forces_retry() {
        let mut rng = StdRng::seed_from_u64(4);
        // Tiny pool, half occupied: hosts must bounce off the owners.
        let mut pool = AddressPool::new(16).unwrap();
        for a in 0..8 {
            pool.occupy(a).unwrap();
        }
        let cfg = config(2, 0.0);
        let out = run_once(&cfg, &pool, &mut rng).unwrap();
        assert_eq!(out.collisions, 0);
        for h in &out.hosts {
            assert!(!pool.is_occupied(h.address));
        }
    }

    #[test]
    fn total_probe_blackout_on_tiny_pool_yields_collisions() {
        // Replies never arrive and rival probes are never seen: every host
        // accepts its first candidate. With a pool of 2 and 3 hosts at
        // least two must collide.
        let mut rng = StdRng::seed_from_u64(5);
        let pool = AddressPool::new(2).unwrap();
        let cfg = MultiHostConfig {
            fresh_hosts: 3,
            link: link(1.0).with_probe_loss(1.0).unwrap(),
            ..config(3, 1.0)
        };
        let out = run_once(&cfg, &pool, &mut rng).unwrap();
        assert!(out.collisions >= 2, "collisions = {}", out.collisions);
        // Colliding hosts were charged the error cost.
        for h in out.hosts.iter().filter(|h| h.collided) {
            assert!(h.total_cost >= 100.0);
        }
    }

    #[test]
    fn rival_probe_detection_prevents_most_simultaneous_collisions() {
        // Same tiny pool, but probes are broadcast reliably: hosts racing
        // for the same address see each other and back off.
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = MultiHostConfig {
            fresh_hosts: 2,
            link: link(0.0),
            max_attempts_per_host: 10_000,
            ..config(2, 0.0)
        };
        let mut collision_runs = 0;
        for _ in 0..50 {
            let pool = AddressPool::new(4).unwrap();
            let out = run_once(&cfg, &pool, &mut rng).unwrap();
            if out.collisions > 0 {
                collision_runs += 1;
            }
        }
        assert_eq!(collision_runs, 0);
    }

    #[test]
    fn exhausted_attempts_error_out() {
        let mut rng = StdRng::seed_from_u64(7);
        // One-address pool, already occupied, perfectly replying owner:
        // the fresh host can never settle.
        let mut pool = AddressPool::new(1).unwrap();
        pool.occupy(0).unwrap();
        let cfg = MultiHostConfig {
            max_attempts_per_host: 25,
            ..config(1, 0.0)
        };
        let result = run_once(&cfg, &pool, &mut rng);
        assert!(matches!(result, Err(SimError::RunDidNotResolve { .. })));
    }

    #[test]
    fn run_many_aggregates() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = config(3, 0.1);
        let summary = run_many(&cfg, 256, 32, 40, &mut rng).unwrap();
        assert_eq!(summary.trials, 40);
        assert_eq!(summary.cost.count(), 120);
        assert!(summary.settle_seconds.mean() >= 1.5 - 1e-12);
        assert!(summary.collisions.mean() >= 0.0);
    }

    #[test]
    fn run_many_rejects_zero_trials() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(matches!(
            run_many(&config(2, 0.1), 64, 8, 0, &mut rng),
            Err(SimError::NothingToSimulate)
        ));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let cfg = config(4, 0.2);
        let a = run_many(&cfg, 128, 16, 20, &mut StdRng::seed_from_u64(10)).unwrap();
        let b = run_many(&cfg, 128, 16, 20, &mut StdRng::seed_from_u64(10)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_contention_means_more_attempts() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = config(2, 0.0);
        let sparse = run_many(&cfg, 1024, 8, 30, &mut rng).unwrap();
        let crowded = run_many(&cfg, 64, 56, 30, &mut rng).unwrap();
        assert!(
            crowded.attempts.mean() > sparse.attempts.mean(),
            "crowded {} vs sparse {}",
            crowded.attempts.mean(),
            sparse.attempts.mean()
        );
    }
}

#[cfg(test)]
mod churn_tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn config() -> MultiHostConfig {
        MultiHostConfig {
            fresh_hosts: 2,
            probes: 3,
            listen_period: 0.5,
            probe_cost: 1.0,
            error_cost: 100.0,
            link: Link::new(Arc::new(
                DefectiveExponential::from_loss(0.05, 20.0, 0.05).unwrap(),
            )),
            max_attempts_per_host: 10_000,
        }
    }

    #[test]
    fn churn_rates_are_validated() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = AddressPool::new(64).unwrap();
        let bad = Churn {
            arrival_rate: -1.0,
            departure_rate: 0.0,
        };
        assert!(run_once_with_churn(&config(), &pool, Some(&bad), &mut rng).is_err());
        let nan = Churn {
            arrival_rate: f64::NAN,
            departure_rate: 0.0,
        };
        assert!(run_once_with_churn(&config(), &pool, Some(&nan), &mut rng).is_err());
    }

    #[test]
    fn zero_rate_churn_matches_the_static_run() {
        let pool = {
            let mut rng = StdRng::seed_from_u64(2);
            AddressPool::with_random_occupancy(128, 32, &mut rng).unwrap()
        };
        let churn = Churn {
            arrival_rate: 0.0,
            departure_rate: 0.0,
        };
        let static_run = run_once(&config(), &pool, &mut StdRng::seed_from_u64(3)).unwrap();
        let churn_run = run_once_with_churn(
            &config(),
            &pool,
            Some(&churn),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(static_run, churn_run);
    }

    #[test]
    fn churned_runs_terminate_and_stay_sane() {
        let mut rng = StdRng::seed_from_u64(4);
        let churn = Churn {
            arrival_rate: 2.0,
            departure_rate: 2.0,
        };
        for _ in 0..20 {
            let pool = AddressPool::with_random_occupancy(128, 32, &mut rng).unwrap();
            let outcome = run_once_with_churn(&config(), &pool, Some(&churn), &mut rng).unwrap();
            assert_eq!(outcome.hosts.len(), 2);
            for h in &outcome.hosts {
                assert!(h.attempts >= 1);
                assert!(h.total_cost > 0.0);
            }
        }
    }

    #[test]
    fn heavy_arrivals_on_a_tiny_pool_raise_contention() {
        // With aggressive arrivals into a small pool, fresh hosts should
        // need more attempts on average than on the static network.
        let mut rng = StdRng::seed_from_u64(5);
        // Net inflow, but bounded: departures keep the pool from
        // saturating so every run still resolves.
        let churn = Churn {
            arrival_rate: 6.0,
            departure_rate: 3.0,
        };
        let mut static_attempts = 0.0;
        let mut churned_attempts = 0.0;
        let trials = 60;
        for _ in 0..trials {
            let pool = AddressPool::with_random_occupancy(24, 6, &mut rng).unwrap();
            let s = run_once(&config(), &pool, &mut rng).unwrap();
            static_attempts += s.hosts.iter().map(|h| h.attempts as f64).sum::<f64>();
            let c = run_once_with_churn(&config(), &pool, Some(&churn), &mut rng).unwrap();
            churned_attempts += c.hosts.iter().map(|h| h.attempts as f64).sum::<f64>();
        }
        assert!(
            churned_attempts > static_attempts,
            "churned {churned_attempts} vs static {static_attempts}"
        );
    }
}
