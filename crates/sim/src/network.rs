//! The broadcast link: reply delays and per-recipient packet loss.

use std::sync::Arc;

use zeroconf_dist::ReplyTimeDistribution;
use zeroconf_rng::Rng;

use crate::{SimError, SimTime};

/// The link model used by both simulators.
///
/// For the single-host validation runs everything the model knows about
/// the network is the defective reply-time distribution `F_X`: a reply to
/// a probe arrives after `X ~ F_X`, or never (covering probe loss, busy
/// responder and reply loss together, exactly as Section 3.2 folds them
/// into one distribution). The multi-host simulator additionally needs a
/// loss probability and delay for *probe* deliveries between concurrently
/// configuring hosts; these default to the distribution's own defect and
/// a zero-delay broadcast, and can be overridden.
#[derive(Debug, Clone)]
pub struct Link {
    reply_time: Arc<dyn ReplyTimeDistribution>,
    probe_loss: f64,
    probe_delay: f64,
}

impl Link {
    /// Creates a link from a reply-time distribution, with probe-delivery
    /// loss equal to the distribution's defect and zero probe delay.
    pub fn new(reply_time: Arc<dyn ReplyTimeDistribution>) -> Self {
        let probe_loss = reply_time.defect();
        Link {
            reply_time,
            probe_loss,
            probe_delay: 0.0,
        }
    }

    /// Overrides the probe-delivery loss probability (multi-host only).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `loss ∈ [0, 1]`.
    pub fn with_probe_loss(mut self, loss: f64) -> Result<Self, SimError> {
        if !loss.is_finite() || !(0.0..=1.0).contains(&loss) {
            return Err(SimError::InvalidConfig {
                parameter: "probe_loss",
                value: loss,
            });
        }
        self.probe_loss = loss;
        Ok(self)
    }

    /// Overrides the probe broadcast delay in seconds (multi-host only).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a negative or non-finite
    /// delay.
    pub fn with_probe_delay(mut self, delay: f64) -> Result<Self, SimError> {
        if !delay.is_finite() || delay < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "probe_delay",
                value: delay,
            });
        }
        self.probe_delay = delay;
        Ok(self)
    }

    /// The reply-time distribution.
    pub fn reply_time(&self) -> &Arc<dyn ReplyTimeDistribution> {
        &self.reply_time
    }

    /// Draws the end-to-end reply delay for one probe, `None` when the
    /// reply never arrives.
    pub fn sample_reply_delay<R: Rng>(&self, rng: &mut R) -> Option<SimTime> {
        self.reply_time.sample(rng).and_then(SimTime::new)
    }

    /// Decides whether a probe broadcast reaches one particular recipient.
    pub fn probe_delivered<R: Rng>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() >= self.probe_loss
    }

    /// The probe broadcast delay.
    pub fn probe_delay(&self) -> SimTime {
        SimTime::new(self.probe_delay).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_dist::DefectiveExponential;
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn link(loss: f64) -> Link {
        Link::new(Arc::new(
            DefectiveExponential::from_loss(loss, 10.0, 0.5).unwrap(),
        ))
    }

    #[test]
    fn probe_loss_defaults_to_reply_defect() {
        let l = link(0.25);
        let mut rng = StdRng::seed_from_u64(6);
        let delivered = (0..20_000).filter(|_| l.probe_delivered(&mut rng)).count();
        let rate = delivered as f64 / 20_000.0;
        assert!((rate - 0.75).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn reply_delays_respect_round_trip_floor() {
        let l = link(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            if let Some(delay) = l.sample_reply_delay(&mut rng) {
                assert!(delay.seconds() >= 0.5);
            }
        }
    }

    #[test]
    fn overrides_are_validated() {
        assert!(link(0.1).with_probe_loss(1.5).is_err());
        assert!(link(0.1).with_probe_loss(f64::NAN).is_err());
        assert!(link(0.1).with_probe_delay(-1.0).is_err());
        let l = link(0.1)
            .with_probe_loss(0.0)
            .unwrap()
            .with_probe_delay(0.25)
            .unwrap();
        assert_eq!(l.probe_delay().seconds(), 0.25);
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..100).all(|_| l.probe_delivered(&mut rng)));
    }

    #[test]
    fn lossless_link_always_replies() {
        let l = link(0.0);
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..1000).all(|_| l.sample_reply_delay(&mut rng).is_some()));
    }
}
