//! The single-host initialization protocol and its Monte-Carlo runner.
//!
//! One *run* reproduces the paper's model scope: a single fresh host
//! configures against a static network. The cost accounting matches the
//! DRM transition rewards exactly — `r + c` for every probe round entered,
//! `E` on a collision, `n(r + c)` for probing a free address — so the
//! sample mean over many runs is an unbiased estimator of Eq. (3) and the
//! collision frequency estimates Eq. (4).
//!
//! Two protocol details the paper's model abstracts away (its Section 3.1
//! explicitly lists them) are available as options:
//!
//! - [`ProtocolConfigBuilder::rate_limit`] — the draft's requirement that
//!   a host which has seen more than 10 conflicts slows down to one
//!   address acquisition per minute;
//! - [`ProtocolConfigBuilder::pool`] with
//!   [`ProtocolConfigBuilder::avoid_retrying_failed`] — a host may
//!   remember and avoid addresses that failed before (this requires a
//!   concrete address pool rather than the abstract occupancy `q`).

use std::sync::Arc;

use zeroconf_dist::ReplyTimeDistribution;
use zeroconf_rng::Rng;

use crate::address::AddressPool;
use crate::stats::{wilson_interval_95, RunningStats};
use crate::{SimError, SimTime};

/// How candidate addresses are modelled.
#[derive(Debug, Clone)]
enum AddressModel {
    /// Abstract occupancy probability `q` (the paper's model).
    Occupancy(f64),
    /// A concrete pool; enables the avoid-retry protocol detail.
    Pool(AddressPool),
}

/// Configuration of a single-host simulation.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    probes: u32,
    listen_period: f64,
    probe_cost: f64,
    error_cost: f64,
    address_model: AddressModel,
    reply_time: Arc<dyn ReplyTimeDistribution>,
    max_attempts: u32,
    rate_limit_after: Option<u32>,
    rate_limit_interval: f64,
    avoid_retry: bool,
}

impl ProtocolConfig {
    /// Starts building a configuration.
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder::default()
    }

    /// The probe count `n`.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// The listening period `r`.
    pub fn listen_period(&self) -> f64 {
        self.listen_period
    }
}

/// Builder for [`ProtocolConfig`].
#[derive(Debug, Clone, Default)]
pub struct ProtocolConfigBuilder {
    probes: Option<u32>,
    listen_period: Option<f64>,
    probe_cost: Option<f64>,
    error_cost: Option<f64>,
    occupancy: Option<f64>,
    pool: Option<AddressPool>,
    reply_time: Option<Arc<dyn ReplyTimeDistribution>>,
    max_attempts: u32,
    rate_limit_after: Option<u32>,
    rate_limit_interval: f64,
    avoid_retry: bool,
}

impl ProtocolConfigBuilder {
    /// Sets the probe count `n`.
    pub fn probes(mut self, n: u32) -> Self {
        self.probes = Some(n);
        self
    }

    /// Sets the listening period `r` in seconds.
    pub fn listen_period(mut self, r: f64) -> Self {
        self.listen_period = Some(r);
        self
    }

    /// Sets the per-probe postage `c`.
    pub fn probe_cost(mut self, c: f64) -> Self {
        self.probe_cost = Some(c);
        self
    }

    /// Sets the collision cost `E`.
    pub fn error_cost(mut self, e: f64) -> Self {
        self.error_cost = Some(e);
        self
    }

    /// Uses the abstract occupancy probability `q` (mutually exclusive
    /// with [`ProtocolConfigBuilder::pool`]; the later call wins).
    pub fn occupancy(mut self, q: f64) -> Self {
        self.occupancy = Some(q);
        self.pool = None;
        self
    }

    /// Uses a concrete address pool.
    pub fn pool(mut self, pool: AddressPool) -> Self {
        self.pool = Some(pool);
        self.occupancy = None;
        self
    }

    /// Sets the reply-time distribution `F_X`.
    pub fn reply_time(mut self, dist: Arc<dyn ReplyTimeDistribution>) -> Self {
        self.reply_time = Some(dist);
        self
    }

    /// Safety bound on address attempts per run (default 1 000 000).
    pub fn max_attempts(mut self, bound: u32) -> Self {
        self.max_attempts = bound;
        self
    }

    /// Enables the draft's rate limiting: after `conflicts` conflicts,
    /// wait `interval_seconds` before each further attempt.
    pub fn rate_limit(mut self, conflicts: u32, interval_seconds: f64) -> Self {
        self.rate_limit_after = Some(conflicts);
        self.rate_limit_interval = interval_seconds;
        self
    }

    /// Never retry an address that failed before (requires a pool).
    pub fn avoid_retrying_failed(mut self, avoid: bool) -> Self {
        self.avoid_retry = avoid;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// - [`SimError::MissingConfig`] for unset required fields.
    /// - [`SimError::InvalidConfig`] for out-of-domain values, including
    ///   `avoid_retrying_failed` without a pool.
    pub fn build(self) -> Result<ProtocolConfig, SimError> {
        let probes = self
            .probes
            .ok_or(SimError::MissingConfig { field: "probes" })?;
        if probes == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "probes",
                value: 0.0,
            });
        }
        let listen_period = self.listen_period.ok_or(SimError::MissingConfig {
            field: "listen_period",
        })?;
        if !listen_period.is_finite() || listen_period < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "listen_period",
                value: listen_period,
            });
        }
        let probe_cost = self.probe_cost.ok_or(SimError::MissingConfig {
            field: "probe_cost",
        })?;
        if !probe_cost.is_finite() || probe_cost < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "probe_cost",
                value: probe_cost,
            });
        }
        let error_cost = self.error_cost.ok_or(SimError::MissingConfig {
            field: "error_cost",
        })?;
        if !error_cost.is_finite() || error_cost < 0.0 {
            return Err(SimError::InvalidConfig {
                parameter: "error_cost",
                value: error_cost,
            });
        }
        let address_model = match (self.pool, self.occupancy) {
            (Some(pool), _) => AddressModel::Pool(pool),
            (None, Some(q)) => {
                if !q.is_finite() || !(0.0..1.0).contains(&q) {
                    return Err(SimError::InvalidConfig {
                        parameter: "occupancy",
                        value: q,
                    });
                }
                AddressModel::Occupancy(q)
            }
            (None, None) => {
                return Err(SimError::MissingConfig {
                    field: "occupancy or pool",
                })
            }
        };
        if self.avoid_retry && !matches!(address_model, AddressModel::Pool(_)) {
            return Err(SimError::InvalidConfig {
                parameter: "avoid_retrying_failed requires a pool",
                value: 1.0,
            });
        }
        if self.rate_limit_after.is_some()
            && (!self.rate_limit_interval.is_finite() || self.rate_limit_interval < 0.0)
        {
            return Err(SimError::InvalidConfig {
                parameter: "rate_limit_interval",
                value: self.rate_limit_interval,
            });
        }
        let reply_time = self.reply_time.ok_or(SimError::MissingConfig {
            field: "reply_time",
        })?;
        Ok(ProtocolConfig {
            probes,
            listen_period,
            probe_cost,
            error_cost,
            address_model,
            reply_time,
            max_attempts: if self.max_attempts == 0 {
                1_000_000
            } else {
                self.max_attempts
            },
            rate_limit_after: self.rate_limit_after,
            rate_limit_interval: self.rate_limit_interval,
            avoid_retry: self.avoid_retry,
        })
    }
}

/// Outcome of a single protocol run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// True when the host accepted an address already in use.
    pub collided: bool,
    /// Total cost, accounted exactly like the DRM rewards.
    pub total_cost: f64,
    /// Number of candidate addresses tried.
    pub attempts: u32,
    /// Total probes transmitted.
    pub probes_sent: u32,
    /// Wall-clock protocol time (listening periods actually spent, reply
    /// waits, plus any rate-limit back-off; unlike cost, a round cut short
    /// by a reply contributes only the elapsed fraction).
    pub elapsed: SimTime,
}

/// Aggregate over many runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Number of runs.
    pub trials: u64,
    /// Statistics of the per-run total cost (mean estimates Eq. 3).
    pub cost: RunningStats,
    /// Statistics of probes sent per run.
    pub probes_sent: RunningStats,
    /// Statistics of address attempts per run.
    pub attempts: RunningStats,
    /// Statistics of per-run elapsed protocol time.
    pub elapsed_seconds: RunningStats,
    /// Number of runs that ended in an address collision.
    pub collisions: u64,
}

impl RunSummary {
    /// Point estimate of the collision probability (estimates Eq. 4).
    pub fn collision_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.collisions as f64 / self.trials as f64
        }
    }

    /// Wilson 95 % interval for the collision probability.
    pub fn collision_interval_95(&self) -> (f64, f64) {
        wilson_interval_95(self.collisions, self.trials)
    }
}

/// Simulates one protocol run.
///
/// # Errors
///
/// Returns [`SimError::RunDidNotResolve`] when the safety bound on
/// attempts is exceeded (practically impossible for sane parameters).
pub fn run_once<R: Rng>(config: &ProtocolConfig, rng: &mut R) -> Result<RunOutcome, SimError> {
    let n = config.probes;
    let r = config.listen_period;
    let round_cost = r + config.probe_cost;
    let mut pool = match &config.address_model {
        AddressModel::Pool(p) => Some(p.clone()),
        AddressModel::Occupancy(_) => None,
    };
    let mut failed: Vec<u32> = Vec::new();

    let mut total_cost = 0.0;
    let mut probes_sent = 0u32;
    let mut elapsed = 0.0f64;
    let mut conflicts = 0u32;

    for attempt in 1..=config.max_attempts {
        // Draft rate limiting: beyond the conflict threshold, each new
        // attempt is delayed. The delay costs the user time but is not a
        // DRM reward (the model predates this mechanism), so it only
        // extends `elapsed`.
        if let Some(threshold) = config.rate_limit_after {
            if conflicts >= threshold {
                elapsed += config.rate_limit_interval;
            }
        }

        let occupied = match (&mut pool, &config.address_model) {
            (Some(p), _) => {
                let candidate = loop {
                    let candidate = p.random_candidate(rng);
                    if !config.avoid_retry || !failed.contains(&candidate) {
                        break candidate;
                    }
                    // All addresses failed: give up through the safety
                    // bound rather than spinning forever.
                    if failed.len() as u32 >= p.size() {
                        break candidate;
                    }
                };
                if config.avoid_retry {
                    failed.push(candidate);
                }
                p.is_occupied(candidate)
            }
            (None, AddressModel::Occupancy(q)) => rng.gen::<f64>() < *q,
            (None, AddressModel::Pool(_)) => unreachable!("pool cloned above"),
        };

        if !occupied {
            // Free address: n silent rounds, then configure.
            total_cost += n as f64 * round_cost;
            probes_sent += n;
            elapsed += n as f64 * r;
            return Ok(RunOutcome {
                collided: false,
                total_cost,
                attempts: attempt,
                probes_sent,
                elapsed: SimTime::new(elapsed).expect("elapsed stays finite"),
            });
        }

        // Occupied: probe j goes out at (j−1)·r; its reply (if ever)
        // arrives at (j−1)·r + X_j with X_j ~ F_X independent.
        let mut earliest_reply = f64::INFINITY;
        for j in 0..n {
            if let Some(x) = config.reply_time.sample(rng) {
                earliest_reply = earliest_reply.min(j as f64 * r + x);
            }
        }
        let deadline = n as f64 * r;
        if earliest_reply < deadline && r > 0.0 {
            // Reply in round k = ⌊t/r⌋ + 1: k rounds entered and paid.
            let k = ((earliest_reply / r).floor() as u32 + 1).min(n);
            total_cost += k as f64 * round_cost;
            probes_sent += k;
            elapsed += earliest_reply;
            conflicts += 1;
            continue;
        }
        if r == 0.0 && earliest_reply <= 0.0 {
            // Degenerate zero-length rounds with an instantaneous reply.
            total_cost += round_cost;
            probes_sent += 1;
            conflicts += 1;
            continue;
        }

        // All n rounds silent: the host accepts the occupied address.
        total_cost += n as f64 * round_cost + config.error_cost;
        probes_sent += n;
        elapsed += deadline;
        return Ok(RunOutcome {
            collided: true,
            total_cost,
            attempts: attempt,
            probes_sent,
            elapsed: SimTime::new(elapsed).expect("elapsed stays finite"),
        });
    }
    Err(SimError::RunDidNotResolve {
        max_attempts: config.max_attempts,
    })
}

/// Runs `trials` independent simulations and aggregates them.
///
/// # Errors
///
/// - [`SimError::NothingToSimulate`] when `trials == 0`.
/// - Any error from [`run_once`].
pub fn run_many<R: Rng>(
    config: &ProtocolConfig,
    trials: u64,
    rng: &mut R,
) -> Result<RunSummary, SimError> {
    if trials == 0 {
        return Err(SimError::NothingToSimulate);
    }
    let mut cost = RunningStats::new();
    let mut probes = RunningStats::new();
    let mut attempts = RunningStats::new();
    let mut elapsed = RunningStats::new();
    let mut collisions = 0u64;
    for _ in 0..trials {
        let outcome = run_once(config, rng)?;
        cost.push(outcome.total_cost);
        probes.push(outcome.probes_sent as f64);
        attempts.push(outcome.attempts as f64);
        elapsed.push(outcome.elapsed.seconds());
        if outcome.collided {
            collisions += 1;
        }
    }
    Ok(RunSummary {
        trials,
        cost,
        probes_sent: probes,
        attempts,
        elapsed_seconds: elapsed,
        collisions,
    })
}

/// Empirical distribution of the user-perceived configuration latency
/// (and per-run cost) over many simulated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyProfile {
    /// Elapsed protocol seconds per run.
    pub elapsed_seconds: crate::stats::Quantiles,
    /// Total cost per run.
    pub cost: crate::stats::Quantiles,
    /// Runs simulated.
    pub trials: u64,
}

/// Collects full latency/cost distributions over `trials` runs — the
/// percentile view (median, P95, P99) the mean-based model cannot give.
///
/// # Errors
///
/// Same conditions as [`run_many`].
pub fn latency_profile<R: Rng>(
    config: &ProtocolConfig,
    trials: u64,
    rng: &mut R,
) -> Result<LatencyProfile, SimError> {
    if trials == 0 {
        return Err(SimError::NothingToSimulate);
    }
    let mut elapsed = crate::stats::Quantiles::new();
    let mut cost = crate::stats::Quantiles::new();
    for _ in 0..trials {
        let outcome = run_once(config, rng)?;
        elapsed.push(outcome.elapsed.seconds());
        cost.push(outcome.total_cost);
    }
    Ok(LatencyProfile {
        elapsed_seconds: elapsed,
        cost,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use zeroconf_dist::DefectiveExponential;
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn dist(loss: f64) -> Arc<dyn ReplyTimeDistribution> {
        Arc::new(DefectiveExponential::from_loss(loss, 3.0, 0.2).unwrap())
    }

    fn config(n: u32, r: f64, q: f64, loss: f64) -> ProtocolConfig {
        ProtocolConfig::builder()
            .probes(n)
            .listen_period(r)
            .probe_cost(1.5)
            .error_cost(50.0)
            .occupancy(q)
            .reply_time(dist(loss))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_fields_and_domains() {
        assert!(matches!(
            ProtocolConfig::builder().build(),
            Err(SimError::MissingConfig { field: "probes" })
        ));
        assert!(ProtocolConfig::builder()
            .probes(0)
            .listen_period(1.0)
            .probe_cost(1.0)
            .error_cost(1.0)
            .occupancy(0.1)
            .reply_time(dist(0.1))
            .build()
            .is_err());
        assert!(ProtocolConfig::builder()
            .probes(4)
            .listen_period(-1.0)
            .probe_cost(1.0)
            .error_cost(1.0)
            .occupancy(0.1)
            .reply_time(dist(0.1))
            .build()
            .is_err());
        assert!(ProtocolConfig::builder()
            .probes(4)
            .listen_period(1.0)
            .probe_cost(1.0)
            .error_cost(1.0)
            .occupancy(1.0)
            .reply_time(dist(0.1))
            .build()
            .is_err());
    }

    #[test]
    fn avoid_retry_requires_pool() {
        let err = ProtocolConfig::builder()
            .probes(4)
            .listen_period(1.0)
            .probe_cost(1.0)
            .error_cost(1.0)
            .occupancy(0.1)
            .avoid_retrying_failed(true)
            .reply_time(dist(0.1))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn free_address_run_has_deterministic_cost() {
        // q = 0 is not allowed as occupancy... use a pool with nothing
        // occupied instead.
        let pool = crate::address::AddressPool::new(64).unwrap();
        let cfg = ProtocolConfig::builder()
            .probes(3)
            .listen_period(2.0)
            .probe_cost(1.0)
            .error_cost(100.0)
            .pool(pool)
            .reply_time(dist(0.1))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_once(&cfg, &mut rng).unwrap();
        assert!(!out.collided);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.probes_sent, 3);
        assert_eq!(out.total_cost, 3.0 * 3.0); // n(r + c) = 3 * 3
        assert_eq!(out.elapsed.seconds(), 6.0);
    }

    #[test]
    fn zero_listening_always_collides_on_occupied() {
        // r = 0: replies (delayed at least d = 0.2 s) can never arrive in
        // time, so occupied addresses always slip through.
        let cfg = config(4, 0.0, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let summary = run_many(&cfg, 2000, &mut rng).unwrap();
        // Collision rate should be ≈ q = 0.9 (every occupied pick is
        // accepted; free picks succeed).
        assert!((summary.collision_rate() - 0.9).abs() < 0.03);
    }

    #[test]
    fn lossless_link_with_long_listening_never_collides() {
        let cfg = config(2, 5.0, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let summary = run_many(&cfg, 2000, &mut rng).unwrap();
        assert_eq!(summary.collisions, 0);
        // Each run probes at least n = 2 times.
        assert!(summary.probes_sent.min() >= 2.0);
    }

    #[test]
    fn collision_rate_matches_occupancy_and_loss() {
        // Fully lossy link: every occupied candidate survives all rounds.
        // Collision probability = q / (q + (1-q)) ... every attempt
        // resolves: occupied -> collision, free -> ok. So rate = q.
        let cfg = config(3, 1.0, 0.4, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let summary = run_many(&cfg, 4000, &mut rng).unwrap();
        assert!((summary.collision_rate() - 0.4).abs() < 0.02);
        // Exactly one attempt per run in this regime.
        assert_eq!(summary.attempts.max(), 1.0);
    }

    #[test]
    fn rate_limiting_extends_elapsed_time_only() {
        let base = config(2, 0.5, 0.8, 1.0);
        let limited = ProtocolConfig::builder()
            .probes(2)
            .listen_period(0.5)
            .probe_cost(1.5)
            .error_cost(50.0)
            .occupancy(0.8)
            .reply_time(dist(1.0))
            .rate_limit(0, 60.0)
            .build()
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let a = run_once(&base, &mut rng_a).unwrap();
        let b = run_once(&limited, &mut rng_b).unwrap();
        assert_eq!(a.total_cost, b.total_cost);
        assert!(b.elapsed.seconds() >= a.elapsed.seconds() + 60.0 - 1e-9);
    }

    #[test]
    fn avoid_retry_never_repeats_candidates() {
        let mut rng = StdRng::seed_from_u64(6);
        // Small pool, everything occupied, lossless: every attempt fails
        // fast; with avoid_retry each address is tried at most once until
        // the pool is exhausted.
        let pool = crate::address::AddressPool::with_random_occupancy(8, 8, &mut rng).unwrap();
        let cfg = ProtocolConfig::builder()
            .probes(1)
            .listen_period(2.0)
            .probe_cost(0.5)
            .error_cost(10.0)
            .pool(pool)
            .avoid_retrying_failed(true)
            .reply_time(dist(0.0))
            .max_attempts(50)
            .build()
            .unwrap();
        // The run cannot succeed (all addresses occupied, replies always
        // arrive), so it keeps drawing; the safety bound must fire.
        let result = run_once(&cfg, &mut rng);
        assert!(matches!(result, Err(SimError::RunDidNotResolve { .. })));
    }

    #[test]
    fn summary_aggregates_are_consistent() {
        let cfg = config(3, 0.8, 0.3, 0.2);
        let mut rng = StdRng::seed_from_u64(7);
        let summary = run_many(&cfg, 5000, &mut rng).unwrap();
        assert_eq!(summary.trials, 5000);
        assert_eq!(summary.cost.count(), 5000);
        assert!(summary.cost.mean() > 0.0);
        assert!(summary.attempts.mean() >= 1.0);
        let (lo, hi) = summary.collision_interval_95();
        let rate = summary.collision_rate();
        assert!(lo <= rate && rate <= hi);
    }

    #[test]
    fn zero_trials_is_rejected() {
        let cfg = config(3, 0.8, 0.3, 0.2);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(matches!(
            run_many(&cfg, 0, &mut rng),
            Err(SimError::NothingToSimulate)
        ));
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let cfg = config(4, 1.0, 0.5, 0.3);
        let a = run_many(&cfg, 500, &mut StdRng::seed_from_u64(11)).unwrap();
        let b = run_many(&cfg, 500, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mean_cost_matches_analytical_model() {
        // The headline validation: simulator vs Eq. (3) on moderate
        // parameters (also exercised end-to-end by `figures validate`).
        let cfg = config(3, 0.8, 0.3, 0.2);
        let scenario = zeroconf_cost::Scenario::builder()
            .occupancy(0.3)
            .probe_cost(1.5)
            .error_cost(50.0)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.2, 3.0, 0.2).unwrap(),
            ))
            .build()
            .unwrap();
        let exact = scenario.mean_cost(3, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let summary = run_many(&cfg, 120_000, &mut rng).unwrap();
        let se = summary.cost.standard_error();
        assert!(
            (summary.cost.mean() - exact).abs() < 5.0 * se,
            "simulated {} vs exact {} (se {se})",
            summary.cost.mean(),
            exact
        );
    }

    #[test]
    fn collision_rate_matches_analytical_model() {
        let cfg = config(2, 0.6, 0.4, 0.5);
        let scenario = zeroconf_cost::Scenario::builder()
            .occupancy(0.4)
            .probe_cost(1.5)
            .error_cost(50.0)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.5, 3.0, 0.2).unwrap(),
            ))
            .build()
            .unwrap();
        let exact = scenario.error_probability(2, 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let summary = run_many(&cfg, 80_000, &mut rng).unwrap();
        let (lo, hi) = summary.collision_interval_95();
        assert!(
            lo <= exact && exact <= hi,
            "exact {exact} outside [{lo}, {hi}]"
        );
    }
}

#[cfg(test)]
mod latency_tests {
    use std::sync::Arc;

    use zeroconf_dist::DefectiveExponential;
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    #[test]
    fn latency_profile_percentiles_are_ordered() {
        let config = ProtocolConfig::builder()
            .probes(3)
            .listen_period(0.5)
            .probe_cost(1.0)
            .error_cost(25.0)
            .occupancy(0.4)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.2, 4.0, 0.1).unwrap(),
            ))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        let mut profile = latency_profile(&config, 20_000, &mut rng).unwrap();
        let median = profile.elapsed_seconds.median().unwrap();
        let p95 = profile.elapsed_seconds.p95().unwrap();
        let p99 = profile.elapsed_seconds.p99().unwrap();
        assert!(median <= p95 && p95 <= p99);
        // Every run listens at least one partial round; the free-address
        // fast path takes the full n·r = 1.5 s.
        assert!(p99 >= 1.5);
        assert_eq!(profile.trials, 20_000);
    }

    #[test]
    fn latency_profile_rejects_zero_trials() {
        let config = ProtocolConfig::builder()
            .probes(1)
            .listen_period(0.1)
            .probe_cost(0.1)
            .error_cost(1.0)
            .occupancy(0.1)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.1, 4.0, 0.05).unwrap(),
            ))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(56);
        assert!(matches!(
            latency_profile(&config, 0, &mut rng),
            Err(SimError::NothingToSimulate)
        ));
    }

    #[test]
    fn cost_median_is_at_most_mean_for_heavy_tailed_runs() {
        // The collision penalty creates a right-skewed cost distribution:
        // median strictly below the mean.
        let config = ProtocolConfig::builder()
            .probes(2)
            .listen_period(0.3)
            .probe_cost(0.5)
            .error_cost(500.0)
            .occupancy(0.3)
            .reply_time(Arc::new(
                DefectiveExponential::from_loss(0.5, 4.0, 0.1).unwrap(),
            ))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(57);
        let mut profile = latency_profile(&config, 30_000, &mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(57);
        let summary = run_many(&config, 30_000, &mut rng2).unwrap();
        assert!(profile.cost.median().unwrap() < summary.cost.mean());
    }
}
