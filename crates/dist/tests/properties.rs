// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based tests for the reply-time distributions and Eq. (1).

use std::sync::Arc;

use proptest::prelude::*;
use zeroconf_dist::{
    noanswer, DefectiveDeterministic, DefectiveExponential, DefectiveUniform, DefectiveWeibull,
    Empirical, Mixture, ReplyTimeDistribution,
};

fn exponential() -> impl Strategy<Value = DefectiveExponential> {
    (0.0f64..=1.0, 0.1f64..50.0, 0.0f64..5.0)
        .prop_map(|(mass, rate, delay)| DefectiveExponential::new(mass, rate, delay).unwrap())
}

fn weibull() -> impl Strategy<Value = DefectiveWeibull> {
    (0.0f64..=1.0, 0.3f64..4.0, 0.05f64..5.0, 0.0f64..3.0)
        .prop_map(|(m, k, s, d)| DefectiveWeibull::new(m, k, s, d).unwrap())
}

fn uniform() -> impl Strategy<Value = DefectiveUniform> {
    (0.0f64..=1.0, 0.0f64..3.0, 0.01f64..4.0)
        .prop_map(|(m, lo, width)| DefectiveUniform::new(m, lo, lo + width).unwrap())
}

fn deterministic() -> impl Strategy<Value = DefectiveDeterministic> {
    (0.0f64..=1.0, 0.0f64..5.0).prop_map(|(m, d)| DefectiveDeterministic::new(m, d).unwrap())
}

fn mixture() -> impl Strategy<Value = Mixture> {
    (exponential(), weibull(), 0.05f64..0.95).prop_map(|(e, w, split)| {
        Mixture::new(vec![
            (split, Arc::new(e) as Arc<dyn ReplyTimeDistribution>),
            (1.0 - split, Arc::new(w)),
        ])
        .unwrap()
    })
}

fn empirical() -> impl Strategy<Value = Empirical> {
    (proptest::collection::vec(proptest::option::of(0.0f64..8.0), 3..40))
        .prop_filter("needs at least one observed reply", |obs| {
            obs.iter().any(Option::is_some)
        })
        .prop_map(|obs| Empirical::from_observations(obs).unwrap())
}

/// `p_i_batch` must agree with the scalar `no_answer_probability` down to
/// the last bit at every index of the batch — the blocked kernel's
/// correctness rests on this.
fn check_batch_bit_identity<D: ReplyTimeDistribution>(
    d: &D,
    rs: &[f64],
) -> Result<(), TestCaseError> {
    let mut batch = vec![0.0f64; rs.len()];
    for i in 0..8usize {
        noanswer::p_i_batch(d, rs, i, &mut batch).unwrap();
        for (j, &r) in rs.iter().enumerate() {
            let scalar = noanswer::no_answer_probability(d, i, r).unwrap();
            prop_assert_eq!(
                batch[j].to_bits(),
                scalar.to_bits(),
                "i = {}, r = {}: batch {} vs scalar {}",
                i,
                r,
                batch[j],
                scalar
            );
        }
    }
    Ok(())
}

/// Listening periods spanning the interesting regimes, including the
/// degenerate and subnormal edges.
fn listening_periods() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            Just(0.0f64),
            Just(f64::MIN_POSITIVE),
            Just(5e-324f64),
            0.001f64..50.0,
        ],
        1..12,
    )
}

/// Shared contract checks for any distribution.
fn check_contract<D: ReplyTimeDistribution>(d: &D, times: &[f64]) -> Result<(), TestCaseError> {
    let mut prev_cdf = 0.0;
    for &t in times {
        let c = d.cdf(t);
        let s = d.survival(t);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c), "cdf {c} at {t}");
        prop_assert!(c <= d.mass() + 1e-12, "cdf beyond mass at {t}");
        prop_assert!(c + 1e-12 >= prev_cdf, "cdf not monotone at {t}");
        // CDF and survival complement to within absolute precision.
        prop_assert!((c + s - 1.0).abs() < 1e-9, "c + s = {} at {t}", c + s);
        prev_cdf = c;
    }
    prop_assert!(d.defect() >= -1e-15 && d.defect() <= 1.0 + 1e-15);
    Ok(())
}

proptest! {
    #[test]
    fn exponential_satisfies_contract(d in exponential()) {
        let times: Vec<f64> = (0..40).map(|k| k as f64 * 0.25).collect();
        check_contract(&d, &times)?;
    }

    #[test]
    fn weibull_satisfies_contract(d in weibull()) {
        let times: Vec<f64> = (0..40).map(|k| k as f64 * 0.25).collect();
        check_contract(&d, &times)?;
    }

    #[test]
    fn uniform_satisfies_contract(d in uniform()) {
        let times: Vec<f64> = (0..40).map(|k| k as f64 * 0.25).collect();
        check_contract(&d, &times)?;
    }

    #[test]
    fn no_answer_probability_is_monotone_in_probe_count(
        d in exponential(),
        r in 0.01f64..5.0,
    ) {
        // More probes sent means more chances a reply arrived: p_i ≥ p_{i+1}
        // cannot hold in general for p (conditional), but π must decrease.
        let pis = noanswer::pi_sequence(&d, 8, r).unwrap();
        for w in pis.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn pi_is_product_of_survivals(d in exponential(), r in 0.01f64..5.0) {
        let pis = noanswer::pi_sequence(&d, 6, r).unwrap();
        for i in 0..=6usize {
            let product: f64 = (1..=i).map(|j| d.survival(j as f64 * r)).product();
            prop_assert!(
                (pis[i] - product).abs() <= 1e-12 * (1.0 + product),
                "i = {i}: {} vs {}",
                pis[i],
                product
            );
        }
    }

    #[test]
    fn literal_matches_telescoped_where_conditioning_is_valid(
        d in exponential(),
        r in 0.01f64..5.0,
        i in 0usize..8,
    ) {
        let telescoped = noanswer::no_answer_probability(&d, i, r).unwrap();
        let literal = noanswer::no_answer_probability_literal(&d, i, r).unwrap();
        // Literal form degrades when the CDF saturates; compare with an
        // absolute tolerance scaled by where we are.
        prop_assert!(
            (telescoped - literal).abs() < 1e-8,
            "i = {i}, r = {r}: {telescoped} vs {literal}"
        );
    }

    #[test]
    fn pi_bounded_by_defect_power_below(d in exponential(), r in 0.1f64..10.0) {
        // π_i(r) ≥ (1 − l)^i always: the defect is the floor of every
        // survival factor.
        let pis = noanswer::pi_sequence(&d, 5, r).unwrap();
        for (i, &p) in pis.iter().enumerate() {
            prop_assert!(p >= noanswer::pi_limit(&d, i) * (1.0 - 1e-12));
        }
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_exponential(d in exponential(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_weibull(d in weibull(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_uniform(d in uniform(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_deterministic(d in deterministic(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_mixture(d in mixture(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn batch_p_i_is_bit_identical_for_empirical(d in empirical(), rs in listening_periods()) {
        check_batch_bit_identity(&d, &rs)?;
    }

    #[test]
    fn sampled_defect_matches_mass(mass in 0.1f64..0.9) {
        use zeroconf_rng::rngs::StdRng;
        use zeroconf_rng::SeedableRng;
        let d = DefectiveExponential::new(mass, 5.0, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let lost = (0..n).filter(|_| d.sample(&mut rng).is_none()).count();
        let loss_rate = lost as f64 / n as f64;
        prop_assert!(
            (loss_rate - d.defect()).abs() < 0.02,
            "loss {loss_rate} vs defect {}",
            d.defect()
        );
    }

    #[test]
    fn empirical_cdf_converges_to_source(mass in 0.3f64..1.0) {
        use zeroconf_rng::rngs::StdRng;
        use zeroconf_rng::SeedableRng;
        let source = DefectiveExponential::new(mass, 2.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let observations: Vec<Option<f64>> =
            (0..30_000).map(|_| source.sample(&mut rng)).collect();
        let empirical = zeroconf_dist::Empirical::from_observations(observations).unwrap();
        for t in [0.5, 1.0, 2.0, 4.0] {
            prop_assert!(
                (empirical.cdf(t) - source.cdf(t)).abs() < 0.02,
                "t = {t}: {} vs {}",
                empirical.cdf(t),
                source.cdf(t)
            );
        }
    }
}
