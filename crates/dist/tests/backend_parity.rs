//! Cross-backend parity for the batch survival and π entry points.
//!
//! Every vendored reply-time family must produce `to_bits`-identical
//! results from `survival_batch_with` and `p_i_batch_with` on every
//! backend the host supports, across lengths that exercise full lanes
//! and every remainder (1..=2·8+1 covers both SIMD widths), and across
//! boundary inputs: times below/at/above the delay knee, `NaN`, and
//! `+inf`. The suite also asserts the honesty contract: a vectorized
//! family reports the tier it was asked for (clamped to the CPU), while
//! `Empirical` — which has no vector override — always reports
//! `Backend::Scalar`, so a silent fallback cannot masquerade as SIMD.

use std::sync::Arc;

use zeroconf_dist::{
    noanswer, Backend, DefectiveDeterministic, DefectiveExponential, DefectiveUniform,
    DefectiveWeibull, Empirical, Mixture, ReplyTimeDistribution,
};

/// Lengths covering empty, sub-lane, exact-lane, and lane+remainder
/// shapes for both the 4-lane and 8-lane tiers.
const LENGTHS: std::ops::RangeInclusive<usize> = 0..=17;

fn backends() -> Vec<Backend> {
    let mut tiers = vec![Backend::Scalar];
    if Backend::detect() >= Backend::Avx2 {
        tiers.push(Backend::Avx2);
    }
    if Backend::detect() >= Backend::Avx512 {
        tiers.push(Backend::Avx512);
    }
    tiers
}

/// The six vendored families, with the delay knee near 1.0 so the
/// boundary times below straddle every branch.
fn families() -> Vec<(&'static str, Arc<dyn ReplyTimeDistribution>, bool)> {
    let exponential = Arc::new(DefectiveExponential::new(0.9, 2.0, 1.0).unwrap());
    let deterministic = Arc::new(DefectiveDeterministic::new(0.75, 1.0).unwrap());
    let uniform = Arc::new(DefectiveUniform::new(0.8, 0.5, 1.5).unwrap());
    let weibull = Arc::new(DefectiveWeibull::new(0.85, 1.7, 0.9, 1.0).unwrap());
    let mixture = Arc::new(
        Mixture::new(vec![
            (0.6, exponential.clone() as Arc<dyn ReplyTimeDistribution>),
            (0.4, uniform.clone() as Arc<dyn ReplyTimeDistribution>),
        ])
        .unwrap(),
    );
    let empirical = Arc::new(
        Empirical::from_observations(vec![Some(0.4), Some(1.2), None, Some(2.5)]).unwrap(),
    );
    // The bool marks families with a vector override (everything but
    // Empirical): those must report the requested tier back.
    vec![
        ("exponential", exponential, true),
        ("deterministic", deterministic, true),
        ("uniform", uniform, true),
        ("weibull", weibull, true),
        ("mixture", mixture, true),
        ("empirical", empirical, false),
    ]
}

/// `len` times straddling the delay knee at 1.0: below, exactly at, just
/// above, far above — plus `NaN` and `+inf` lanes on the longer shapes.
fn boundary_times(len: usize) -> Vec<f64> {
    let mut ts: Vec<f64> = (0..len)
        .map(|j| match j % 6 {
            0 => 0.0,
            1 => 1.0 - f64::EPSILON,
            2 => 1.0,
            3 => 1.0 + f64::EPSILON,
            4 => 0.25 + 0.37 * j as f64,
            _ => 40.0 + j as f64,
        })
        .collect();
    if len > 9 {
        ts[7] = f64::NAN;
        ts[9] = f64::INFINITY;
    }
    ts
}

fn assert_bits_eq(family: &str, backend: Backend, expected: &[f64], got: &[f64]) {
    assert_eq!(expected.len(), got.len());
    for (j, (e, g)) in expected.iter().zip(got).enumerate() {
        assert!(
            e.to_bits() == g.to_bits(),
            "{family} on {backend:?}, element {j}: scalar {e:?} ({:#018x}) \
             vs batch {g:?} ({:#018x})",
            e.to_bits(),
            g.to_bits()
        );
    }
}

#[test]
fn survival_batch_with_matches_scalar_bit_for_bit_on_every_backend() {
    for (family, dist, _) in families() {
        for backend in backends() {
            for len in LENGTHS {
                let times = boundary_times(len);
                let reference: Vec<f64> = times.iter().map(|&t| dist.survival(t)).collect();
                let mut batch = times.clone();
                dist.survival_batch_with(backend, &mut batch);
                assert_bits_eq(family, backend, &reference, &batch);
            }
        }
    }
}

#[test]
fn p_i_batch_with_matches_the_scalar_entry_point_bit_for_bit() {
    for (family, dist, _) in families() {
        for backend in backends() {
            for len in LENGTHS {
                // Listening periods must be finite and non-negative; keep
                // a spread that lands π both near 1 and deep in the tail.
                let rs: Vec<f64> = (0..len).map(|j| 0.05 + 0.21 * j as f64).collect();
                for i in [0usize, 1, 3, 7] {
                    let mut reference = vec![0.0f64; len];
                    noanswer::p_i_batch(dist.as_ref(), &rs, i, &mut reference).unwrap();
                    let mut batch = vec![0.0f64; len];
                    noanswer::p_i_batch_with(dist.as_ref(), backend, &rs, i, &mut batch).unwrap();
                    assert_bits_eq(family, backend, &reference, &batch);
                }
            }
        }
    }
}

/// The multi-round batch must reproduce the per-round entry point — and
/// therefore the scalar `no_answer_probability` — bit for bit on every
/// backend, for every row of every chunk shape (chunks whose total
/// element count spans sub-lane through multi-lane survival batches).
#[test]
fn p_rounds_batch_with_matches_per_round_batches_bit_for_bit() {
    for (family, dist, _) in families() {
        for backend in backends() {
            for width in [0usize, 1, 3, 5, 8] {
                let rs: Vec<f64> = (0..width).map(|j| 0.05 + 0.21 * j as f64).collect();
                for (first, rounds) in [(1usize, 1usize), (1, 4), (2, 8), (7, 3)] {
                    let mut block = vec![0.0f64; rounds * width];
                    noanswer::p_rounds_batch_with(
                        dist.as_ref(),
                        backend,
                        &rs,
                        first,
                        rounds,
                        &mut block,
                    )
                    .unwrap();
                    for k in 0..rounds {
                        let mut reference = vec![0.0f64; width];
                        noanswer::p_i_batch(dist.as_ref(), &rs, first + k, &mut reference).unwrap();
                        assert_bits_eq(
                            family,
                            backend,
                            &reference,
                            &block[k * width..(k + 1) * width],
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn vectorized_families_report_the_requested_tier_and_empirical_reports_scalar() {
    for (family, dist, vectorized) in families() {
        for backend in backends() {
            let mut ts = boundary_times(13);
            let used = dist.survival_batch_with(backend, &mut ts);
            let expected = if vectorized {
                backend.min(Backend::detect())
            } else {
                Backend::Scalar
            };
            assert_eq!(used, expected, "{family} asked for {backend:?}");

            let rs: Vec<f64> = (0..13).map(|j| 0.1 + 0.2 * j as f64).collect();
            let mut out = vec![0.0f64; 13];
            let used = noanswer::p_i_batch_with(dist.as_ref(), backend, &rs, 2, &mut out).unwrap();
            assert_eq!(used, expected, "{family} π batch asked for {backend:?}");
        }
    }
}
