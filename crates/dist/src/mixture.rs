//! Convex mixtures of reply-time distributions.

use std::sync::Arc;

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// A convex combination of reply-time distributions.
///
/// Models heterogeneous links — e.g. most replies take the fast wired path
/// while a fraction crosses a slow wireless bridge. Weights are normalized
/// at construction; each component may itself be defective, and the mixture
/// mass is the weighted sum of the component masses.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use zeroconf_dist::{DefectiveExponential, Mixture, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fast = Arc::new(DefectiveExponential::new(1.0, 100.0, 0.001)?);
/// let slow = Arc::new(DefectiveExponential::new(0.9, 1.0, 0.1)?);
/// let link = Mixture::new(vec![(0.8, fast), (0.2, slow)])?;
/// assert!((link.mass() - (0.8 * 1.0 + 0.2 * 0.9)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mixture {
    /// Normalized weights and components.
    components: Vec<(f64, Arc<dyn ReplyTimeDistribution>)>,
}

impl Mixture {
    /// Builds a mixture from `(weight, component)` pairs; weights are
    /// normalized to sum to one.
    ///
    /// # Errors
    ///
    /// - [`DistError::EmptyInput`] for an empty component list.
    /// - [`DistError::InvalidWeight`] for a negative/non-finite weight or
    ///   when all weights are zero.
    pub fn new(components: Vec<(f64, Arc<dyn ReplyTimeDistribution>)>) -> Result<Self, DistError> {
        if components.is_empty() {
            return Err(DistError::EmptyInput);
        }
        for (i, (w, _)) in components.iter().enumerate() {
            if !w.is_finite() || *w < 0.0 {
                return Err(DistError::InvalidWeight {
                    component: i,
                    value: *w,
                });
            }
        }
        let total: f64 = components.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return Err(DistError::InvalidWeight {
                component: 0,
                value: total,
            });
        }
        Ok(Mixture {
            components: components
                .into_iter()
                .map(|(w, c)| (w / total, c))
                .collect(),
        })
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The normalized weight of component `i`, if it exists.
    pub fn weight(&self, i: usize) -> Option<f64> {
        self.components.get(i).map(|(w, _)| *w)
    }
}

impl ReplyTimeDistribution for Mixture {
    fn mass(&self) -> f64 {
        self.components.iter().map(|(w, c)| w * c.mass()).sum()
    }

    fn fingerprint(&self) -> u64 {
        self.components
            .iter()
            .fold(crate::Fingerprint::new("mixture"), |h, (w, c)| {
                h.with_f64(*w).with_u64(c.fingerprint())
            })
            .finish()
    }

    fn cdf(&self, t: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.cdf(t)).sum()
    }

    fn survival(&self, t: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.survival(t)).sum()
    }

    fn survival_batch(&self, ts: &mut [f64]) {
        // Replays the scalar weighted sum per element — `sum()` folds
        // left from 0.0 in component order, and the accumulator below
        // adds `w·sⱼ` in exactly that order — while letting every
        // component batch its own survival evaluation.
        let mut acc = vec![0.0f64; ts.len()];
        let mut scratch = vec![0.0f64; ts.len()];
        for (w, c) in &self.components {
            scratch.copy_from_slice(ts);
            c.survival_batch(&mut scratch);
            for (a, s) in acc.iter_mut().zip(&scratch) {
                *a += w * s;
            }
        }
        ts.copy_from_slice(&acc);
    }

    fn survival_batch_with(
        &self,
        backend: zeroconf_simd::Backend,
        ts: &mut [f64],
    ) -> zeroconf_simd::Backend {
        // Same accumulation order as `survival_batch` with the inner loops
        // vectorized. The reported backend is the *weakest* tier any
        // component ran — a mixture is only as vectorized as its slowest
        // member (e.g. one wrapping an `Empirical` stays scalar).
        let mut acc = vec![0.0f64; ts.len()];
        let mut scratch = vec![0.0f64; ts.len()];
        let mut used = backend;
        for (w, c) in &self.components {
            scratch.copy_from_slice(ts);
            used = used.min(c.survival_batch_with(backend, &mut scratch));
            used = used.min(zeroconf_simd::weighted_accumulate(
                backend, *w, &scratch, &mut acc,
            ));
        }
        ts.copy_from_slice(&acc);
        used
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let mut u: f64 = zeroconf_rng::Rng::gen(rng);
        let last = self.components.len() - 1;
        for (i, (w, c)) in self.components.iter().enumerate() {
            if u < *w || i == last {
                return c.sample(rng);
            }
            u -= w;
        }
        unreachable!("loop always returns at the last component")
    }

    fn mean_given_reply(&self) -> Option<f64> {
        // Conditional mean: Σ w_i l_i m_i / Σ w_i l_i, defined only when
        // every contributing component knows its own conditional mean.
        let mut weighted_sum = 0.0;
        let mut mass_sum = 0.0;
        for (w, c) in &self.components {
            let contribution = w * c.mass();
            if contribution == 0.0 {
                continue;
            }
            weighted_sum += contribution * c.mean_given_reply()?;
            mass_sum += contribution;
        }
        if mass_sum > 0.0 {
            Some(weighted_sum / mass_sum)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use crate::{DefectiveDeterministic, DefectiveExponential};

    use super::*;

    fn two_point() -> Mixture {
        let a = Arc::new(DefectiveDeterministic::new(1.0, 1.0).unwrap());
        let b = Arc::new(DefectiveDeterministic::new(1.0, 3.0).unwrap());
        Mixture::new(vec![(1.0, a), (3.0, b)]).unwrap()
    }

    #[test]
    fn weights_are_normalized() {
        let m = two_point();
        assert!((m.weight(0).unwrap() - 0.25).abs() < 1e-15);
        assert!((m.weight(1).unwrap() - 0.75).abs() < 1e-15);
        assert_eq!(m.weight(2), None);
        assert_eq!(m.num_components(), 2);
    }

    #[test]
    fn empty_and_invalid_weights_are_rejected() {
        assert!(matches!(Mixture::new(vec![]), Err(DistError::EmptyInput)));
        let c: Arc<dyn ReplyTimeDistribution> =
            Arc::new(DefectiveDeterministic::new(1.0, 1.0).unwrap());
        assert!(Mixture::new(vec![(-1.0, c.clone())]).is_err());
        assert!(Mixture::new(vec![(0.0, c.clone())]).is_err());
        assert!(Mixture::new(vec![(f64::NAN, c)]).is_err());
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let m = two_point();
        assert_eq!(m.cdf(0.5), 0.0);
        assert!((m.cdf(1.0) - 0.25).abs() < 1e-15);
        assert!((m.cdf(3.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn survival_complements_cdf() {
        let m = two_point();
        for t in [0.0, 1.0, 2.0, 3.0, 4.0] {
            assert!((m.survival(t) - (1.0 - m.cdf(t))).abs() < 1e-15);
        }
    }

    #[test]
    fn mass_mixes_component_defects() {
        let a = Arc::new(DefectiveExponential::new(0.8, 1.0, 0.0).unwrap());
        let b = Arc::new(DefectiveExponential::new(0.4, 1.0, 0.0).unwrap());
        let m = Mixture::new(vec![(0.5, a as _), (0.5, b as _)]).unwrap();
        assert!((m.mass() - 0.6).abs() < 1e-15);
    }

    #[test]
    fn conditional_mean_weights_by_arrival_mass() {
        let m = two_point();
        // 25% arrive at t=1, 75% at t=3 -> mean 2.5.
        assert!((m.mean_given_reply().unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn conditional_mean_unavailable_when_component_lacks_it() {
        let w = Arc::new(crate::DefectiveWeibull::new(1.0, 2.0, 1.0, 0.0).unwrap());
        let d = Arc::new(DefectiveDeterministic::new(1.0, 1.0).unwrap());
        let m = Mixture::new(vec![(0.5, w as _), (0.5, d as _)]).unwrap();
        assert_eq!(m.mean_given_reply(), None);
    }

    #[test]
    fn sampling_respects_weights() {
        let m = two_point();
        let mut rng = StdRng::seed_from_u64(77);
        let mut at_one = 0;
        let n = 40_000;
        for _ in 0..n {
            match m.sample(&mut rng) {
                Some(1.0) => at_one += 1,
                Some(t) => assert_eq!(t, 3.0),
                None => panic!("no loss in this mixture"),
            }
        }
        let fraction = at_one as f64 / n as f64;
        assert!((fraction - 0.25).abs() < 0.01);
    }
}
