//! The paper's shifted defective exponential distribution.

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// The distribution used throughout the paper's evaluation (Section 4.3):
///
/// ```text
/// F_X(t) = l · (1 − e^{−λ(t−d)})   for t ≥ d,    0 otherwise
/// ```
///
/// where `1 − l` is the probability that the reply never arrives, `d` is
/// the network round-trip delay (no reply can possibly arrive earlier) and
/// `d + 1/λ` is the mean reply time conditional on arrival.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{DefectiveExponential, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fx = DefectiveExponential::new(0.99, 10.0, 1.0)?;
/// assert_eq!(fx.mean_given_reply(), Some(1.1));
/// assert!(fx.cdf(1.0) == 0.0 && fx.cdf(2.0) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectiveExponential {
    /// Stored as the defect `1 − l` so that tiny loss probabilities (the
    /// paper uses `1e−15`) keep full relative precision; see the trait-level
    /// discussion on [`ReplyTimeDistribution::defect`].
    loss: f64,
    rate: f64,
    delay: f64,
}

impl DefectiveExponential {
    /// Creates the distribution with reply mass `l`, rate `λ` and
    /// round-trip delay `d`.
    ///
    /// # Errors
    ///
    /// - [`DistError::InvalidMass`] unless `mass ∈ [0, 1]`.
    /// - [`DistError::InvalidRate`] unless `rate > 0` and finite.
    /// - [`DistError::InvalidDelay`] unless `delay ≥ 0` and finite.
    pub fn new(mass: f64, rate: f64, delay: f64) -> Result<Self, DistError> {
        if !mass.is_finite() || !(0.0..=1.0).contains(&mass) {
            return Err(DistError::InvalidMass { value: mass });
        }
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::InvalidRate {
                parameter: "rate",
                value: rate,
            });
        }
        if !delay.is_finite() || delay < 0.0 {
            return Err(DistError::InvalidDelay { value: delay });
        }
        Ok(DefectiveExponential {
            loss: 1.0 - mass,
            rate,
            delay,
        })
    }

    /// Convenience constructor in the paper's own parameterization: loss
    /// probability `1 − l`, round-trip delay `d`, and mean conditional
    /// reply time `d + 1/λ` expressed through `λ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DefectiveExponential::new`] with
    /// `mass = 1 − loss_probability`.
    pub fn from_loss(loss_probability: f64, rate: f64, delay: f64) -> Result<Self, DistError> {
        let mut dist = DefectiveExponential::new(1.0 - loss_probability, rate, delay)?;
        // Keep the caller's exact loss probability: 1 − (1 − x) rounds x
        // away for x below the epsilon of 1.0.
        dist.loss = loss_probability;
        Ok(dist)
    }

    /// The reply mass `l`.
    pub fn reply_mass(&self) -> f64 {
        1.0 - self.loss
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The round-trip delay `d`.
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl ReplyTimeDistribution for DefectiveExponential {
    fn mass(&self) -> f64 {
        1.0 - self.loss
    }

    fn fingerprint(&self) -> u64 {
        crate::Fingerprint::new("exponential")
            .with_f64(self.loss)
            .with_f64(self.rate)
            .with_f64(self.delay)
            .finish()
    }

    fn defect(&self) -> f64 {
        self.loss
    }

    fn cdf(&self, t: f64) -> f64 {
        if t < self.delay {
            0.0
        } else {
            // -exp_m1(-x) = 1 - e^{-x} without cancellation for small x.
            (1.0 - self.loss) * (-((-self.rate * (t - self.delay)).exp_m1()))
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t < self.delay {
            1.0
        } else {
            // 1 − l(1 − e^{−λ(t−d)}) = (1 − l) + l e^{−λ(t−d)}: both terms
            // are positive, so the sum carries full relative precision even
            // when 1 − l is 1e−15.
            self.loss + (1.0 - self.loss) * (-self.rate * (t - self.delay)).exp()
        }
    }

    fn survival_batch(&self, ts: &mut [f64]) {
        // Loop-invariant hoists of exactly the factors `survival` computes
        // per call: `1 − loss` and the negated rate (unary minus binds
        // tighter than `*`, so the scalar form is `(−λ)·(t−d)` too). The
        // per-element arithmetic and its association are unchanged, so
        // every result is bit-identical to the scalar path.
        let delay = self.delay;
        let loss = self.loss;
        let scale = 1.0 - self.loss;
        let neg_rate = -self.rate;
        for t in ts {
            *t = if *t < delay {
                1.0
            } else {
                loss + scale * (neg_rate * (*t - delay)).exp()
            };
        }
    }

    fn survival_batch_with(
        &self,
        backend: zeroconf_simd::Backend,
        ts: &mut [f64],
    ) -> zeroconf_simd::Backend {
        // Same hoists as `survival_batch`; the lane kernel keeps the scalar
        // association (and evaluates `exp` scalar per lane), so every backend
        // is bit-identical.
        zeroconf_simd::survival_exponential(
            backend,
            self.delay,
            self.loss,
            1.0 - self.loss,
            -self.rate,
            ts,
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let u = zeroconf_rng::Rng::gen::<f64>(rng);
        if u < self.loss {
            return None;
        }
        // Inverse transform on the normalized exponential.
        let v: f64 = zeroconf_rng::Rng::gen(rng);
        // ln_1p(-v) = ln(1 - v) without cancellation; v < 1 almost surely.
        Some(self.delay - (-v).ln_1p() / self.rate)
    }

    fn mean_given_reply(&self) -> Option<f64> {
        Some(self.delay + 1.0 / self.rate)
    }

    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return None;
        }
        if p == 1.0 {
            return Some(f64::INFINITY);
        }
        // Inverse of the normalized CDF 1 − e^{−λ(t−d)}.
        Some(self.delay - (-p).ln_1p() / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn paper_fx() -> DefectiveExponential {
        // Figure 2 parameters: d = 1, λ = 10, 1 − l = 1e−15.
        DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(DefectiveExponential::new(1.1, 1.0, 0.0).is_err());
        assert!(DefectiveExponential::new(-0.1, 1.0, 0.0).is_err());
        assert!(DefectiveExponential::new(0.5, 0.0, 0.0).is_err());
        assert!(DefectiveExponential::new(0.5, -1.0, 0.0).is_err());
        assert!(DefectiveExponential::new(0.5, 1.0, -1.0).is_err());
        assert!(DefectiveExponential::new(0.5, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn from_loss_complements_mass() {
        let d = DefectiveExponential::from_loss(1e-5, 10.0, 1.0).unwrap();
        assert!((d.reply_mass() - (1.0 - 1e-5)).abs() < 1e-18);
    }

    #[test]
    fn cdf_is_zero_before_delay() {
        let d = paper_fx();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(0.999), 0.0);
        assert_eq!(d.survival(0.5), 1.0);
    }

    #[test]
    fn cdf_approaches_mass() {
        let d = DefectiveExponential::new(0.75, 2.0, 0.5).unwrap();
        assert!((d.cdf(1e6) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn survival_keeps_relative_precision_in_the_defect() {
        let d = paper_fx();
        // At large t the survival must converge to exactly the defect
        // 1e−15 with full relative precision, which 1 − cdf cannot deliver.
        let s = d.survival(1000.0);
        assert!(
            ((s - 1e-15) / 1e-15).abs() < 1e-9,
            "survival {s:e} should be 1e-15"
        );
    }

    #[test]
    fn survival_complements_cdf_in_low_precision_regime() {
        let d = DefectiveExponential::new(0.9, 3.0, 0.2).unwrap();
        for t in [0.0, 0.2, 0.5, 1.0, 5.0] {
            assert!((d.survival(t) - (1.0 - d.cdf(t))).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_mean_reply_time() {
        // Section 4.5: "the mean time until a reply is received ... is
        // d + 1/λ = 1.1".
        assert_eq!(paper_fx().mean_given_reply(), Some(1.1));
    }

    #[test]
    fn sampling_matches_loss_probability() {
        let d = DefectiveExponential::new(0.7, 5.0, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut lost = 0;
        let mut sum = 0.0;
        let mut arrived = 0;
        for _ in 0..n {
            match d.sample(&mut rng) {
                None => lost += 1,
                Some(t) => {
                    assert!(t >= 0.3);
                    sum += t;
                    arrived += 1;
                }
            }
        }
        let loss_rate = lost as f64 / n as f64;
        assert!((loss_rate - 0.3).abs() < 0.01, "loss {loss_rate}");
        let mean = sum / arrived as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn quantiles_invert_the_normalized_cdf() {
        let d = DefectiveExponential::new(0.8, 2.0, 0.5).unwrap();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99] {
            let t = d.quantile_given_reply(p).unwrap();
            let back = d.cdf(t) / d.mass();
            assert!((back - p).abs() < 1e-12, "p = {p}: t = {t}, back = {back}");
        }
        assert_eq!(d.quantile_given_reply(0.0), Some(0.5));
        assert_eq!(d.quantile_given_reply(1.0), Some(f64::INFINITY));
        assert_eq!(d.quantile_given_reply(-0.1), None);
        assert_eq!(d.quantile_given_reply(1.5), None);
    }

    #[test]
    fn accessors_expose_parameters() {
        let d = DefectiveExponential::new(0.8, 4.0, 0.25).unwrap();
        assert_eq!(d.reply_mass(), 0.8);
        assert_eq!(d.rate(), 4.0);
        assert_eq!(d.delay(), 0.25);
    }

    #[test]
    fn interval_probability_is_cdf_difference() {
        let d = DefectiveExponential::new(0.9, 2.0, 0.0).unwrap();
        let direct = d.cdf(2.0) - d.cdf(1.0);
        assert!((d.interval_probability(1.0, 2.0) - direct).abs() < 1e-12);
    }
}
