//! Uniform-window reply distribution.

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// A reply that, when it arrives, is spread uniformly over `[lo, hi]`.
///
/// Models media with bounded, jittery latency (e.g. a contention window):
/// there is a hard earliest arrival `lo` and a hard latest arrival `hi`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{DefectiveUniform, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let d = DefectiveUniform::new(1.0, 0.1, 0.3)?;
/// assert!((d.cdf(0.2) - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectiveUniform {
    mass: f64,
    lo: f64,
    hi: f64,
}

impl DefectiveUniform {
    /// Creates the distribution with reply mass `l` over window `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// - [`DistError::InvalidMass`] unless `mass ∈ [0, 1]`.
    /// - [`DistError::InvalidDelay`] unless `lo ≥ 0` and finite.
    /// - [`DistError::InvalidInterval`] unless `lo < hi` and `hi` finite.
    pub fn new(mass: f64, lo: f64, hi: f64) -> Result<Self, DistError> {
        if !mass.is_finite() || !(0.0..=1.0).contains(&mass) {
            return Err(DistError::InvalidMass { value: mass });
        }
        if !lo.is_finite() || lo < 0.0 {
            return Err(DistError::InvalidDelay { value: lo });
        }
        if !hi.is_finite() || hi <= lo {
            return Err(DistError::InvalidInterval { lo, hi });
        }
        Ok(DefectiveUniform { mass, lo, hi })
    }

    /// Earliest possible arrival.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Latest possible arrival.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl ReplyTimeDistribution for DefectiveUniform {
    fn mass(&self) -> f64 {
        self.mass
    }

    fn fingerprint(&self) -> u64 {
        crate::Fingerprint::new("uniform")
            .with_f64(self.mass)
            .with_f64(self.lo)
            .with_f64(self.hi)
            .finish()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t < self.lo {
            0.0
        } else if t >= self.hi {
            self.mass
        } else {
            self.mass * (t - self.lo) / (self.hi - self.lo)
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t < self.lo {
            1.0
        } else if t >= self.hi {
            1.0 - self.mass
        } else {
            let fraction_remaining = (self.hi - t) / (self.hi - self.lo);
            (1.0 - self.mass) + self.mass * fraction_remaining
        }
    }

    fn survival_batch(&self, ts: &mut [f64]) {
        // The hoists are the same expressions `survival` evaluates per
        // call (`hi − lo`, `1 − mass`), so the per-element division and
        // fused tail keep their exact association and bits.
        let lo = self.lo;
        let hi = self.hi;
        let mass = self.mass;
        let survived = 1.0 - self.mass;
        let width = self.hi - self.lo;
        for t in ts {
            *t = if *t < lo {
                1.0
            } else if *t >= hi {
                survived
            } else {
                let fraction_remaining = (hi - *t) / width;
                survived + mass * fraction_remaining
            };
        }
    }

    fn survival_batch_with(
        &self,
        backend: zeroconf_simd::Backend,
        ts: &mut [f64],
    ) -> zeroconf_simd::Backend {
        // Same hoists as `survival_batch`; the lane kernel composes the
        // branch chain from quiet-ordered selects, so every backend is
        // bit-identical.
        zeroconf_simd::survival_uniform(
            backend,
            self.lo,
            self.hi,
            self.mass,
            1.0 - self.mass,
            self.hi - self.lo,
            ts,
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let u: f64 = zeroconf_rng::Rng::gen(rng);
        if u >= self.mass {
            return None;
        }
        let v: f64 = zeroconf_rng::Rng::gen(rng);
        Some(self.lo + v * (self.hi - self.lo))
    }

    fn mean_given_reply(&self) -> Option<f64> {
        Some(0.5 * (self.lo + self.hi))
    }

    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return None;
        }
        Some(self.lo + p * (self.hi - self.lo))
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    #[test]
    fn construction_validates() {
        assert!(DefectiveUniform::new(1.5, 0.0, 1.0).is_err());
        assert!(DefectiveUniform::new(0.5, -1.0, 1.0).is_err());
        assert!(DefectiveUniform::new(0.5, 1.0, 1.0).is_err());
        assert!(DefectiveUniform::new(0.5, 2.0, 1.0).is_err());
    }

    #[test]
    fn cdf_is_linear_inside_the_window() {
        let d = DefectiveUniform::new(0.8, 1.0, 3.0).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(2.0) - 0.4).abs() < 1e-15);
        assert_eq!(d.cdf(3.0), 0.8);
        assert_eq!(d.cdf(10.0), 0.8);
    }

    #[test]
    fn survival_complements_cdf() {
        let d = DefectiveUniform::new(0.8, 1.0, 3.0).unwrap();
        for t in [0.0, 1.0, 1.7, 2.9, 3.0, 5.0] {
            assert!((d.survival(t) - (1.0 - d.cdf(t))).abs() < 1e-15);
        }
    }

    #[test]
    fn samples_stay_in_window_with_correct_mean() {
        let d = DefectiveUniform::new(0.9, 0.5, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut sum = 0.0;
        let mut count = 0;
        for _ in 0..50_000 {
            if let Some(t) = d.sample(&mut rng) {
                assert!((0.5..=1.5).contains(&t));
                sum += t;
                count += 1;
            }
        }
        let mean = sum / count as f64;
        assert!((mean - 1.0).abs() < 0.01);
        let arrival_rate = count as f64 / 50_000.0;
        assert!((arrival_rate - 0.9).abs() < 0.01);
    }

    #[test]
    fn quantiles_are_linear_in_the_window() {
        let d = DefectiveUniform::new(0.7, 1.0, 3.0).unwrap();
        assert_eq!(d.quantile_given_reply(0.0), Some(1.0));
        assert_eq!(d.quantile_given_reply(0.5), Some(2.0));
        assert_eq!(d.quantile_given_reply(1.0), Some(3.0));
        assert_eq!(d.quantile_given_reply(2.0), None);
    }

    #[test]
    fn mean_given_reply_is_window_midpoint() {
        let d = DefectiveUniform::new(0.8, 2.0, 6.0).unwrap();
        assert_eq!(d.mean_given_reply(), Some(4.0));
    }
}
