//! Defective reply-time distributions for the zeroconf cost model.
//!
//! Section 3.2 of the paper describes the time `X` between sending an ARP
//! probe and receiving the reply by a *defective* distribution: a
//! monotonically increasing function `D(t)` with
//! `lim_{t→∞} D(t) = l < 1`, where `1 − l` is the probability that the
//! reply *never* arrives (probe lost, replying host busy, reply lost). The
//! paper instantiates `D` as a shifted exponential
//! ([`DefectiveExponential`]) but explicitly notes that `F_X` "should be
//! based on measurements"; this crate therefore provides a family of
//! alternatives behind one trait, [`ReplyTimeDistribution`]:
//!
//! - [`DefectiveExponential`] — the paper's `F_X(t) = l(1 − e^{−λ(t−d)})`,
//! - [`DefectiveUniform`] — replies spread evenly over a delay window,
//! - [`DefectiveWeibull`] — heavier or lighter tails than exponential,
//! - [`DefectiveDeterministic`] — a fixed round-trip time,
//! - [`Mixture`] — convex combinations (e.g. fast wired + slow wireless),
//! - [`Empirical`] — the measured-data case, built from samples.
//!
//! The module [`noanswer`] turns any such distribution into the no-answer
//! probabilities `p_i(r)` of Eq. (1) and their running products `π_i(r)`
//! used by the cost (Eq. 3) and reliability (Eq. 4) formulas.
//!
//! # Numerical note
//!
//! For the paper's parameters (`1 − l` as small as `1e−15`) the survival
//! probability `1 − F_X(t)` suffers catastrophic cancellation when computed
//! literally, while the figures require relative accuracy of quantities as
//! small as `1e−54`. Implementations therefore provide
//! [`ReplyTimeDistribution::survival`] *directly* (e.g.
//! `(1−l) + l·e^{−λ(t−d)}` for the exponential), and all downstream
//! formulas consume survivals rather than CDFs. The ablation benchmark
//! `pi_literal_vs_telescoped` quantifies the difference.
//!
//! # Examples
//!
//! ```
//! use zeroconf_dist::{DefectiveExponential, ReplyTimeDistribution};
//!
//! # fn main() -> Result<(), zeroconf_dist::DistError> {
//! // The paper's Figure 2 distribution: d = 1, λ = 10, 1 − l = 1e−15.
//! let fx = DefectiveExponential::new(1.0 - 1e-15, 10.0, 1.0)?;
//! assert_eq!(fx.cdf(0.5), 0.0); // before the round-trip delay
//! assert!(fx.survival(100.0) > 0.0); // the defect never vanishes
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod deterministic;
mod empirical;
mod error;
mod exponential;
mod mixture;
pub mod noanswer;
mod traits;
mod uniform;
mod weibull;

pub use deterministic::DefectiveDeterministic;
pub use empirical::Empirical;
pub use error::DistError;
pub use exponential::DefectiveExponential;
pub use mixture::Mixture;
pub use traits::{Fingerprint, ReplyTimeDistribution};
pub use uniform::DefectiveUniform;
pub use weibull::DefectiveWeibull;
pub use zeroconf_simd::Backend;
