//! The reply-time distribution trait.

use std::fmt;

use zeroconf_rng::RngCore;
use zeroconf_simd::Backend;

/// An FNV-1a accumulator for building
/// [`ReplyTimeDistribution::fingerprint`] values.
///
/// The fingerprint identifies a distribution *by value*: two instances with
/// the same type tag and the same parameters produce the same 64-bit hash,
/// which is what lets caches key π-tables on `(fingerprint, r)` and share
/// them across scenarios that differ only in `q`, `E` or `c`. Collisions
/// are possible in principle (it is a 64-bit hash), astronomically unlikely
/// in practice, and only ever turn a cache hit into a wrong answer if two
/// *different* parameterizations collide — the usual trade accepted for
/// content-addressed caching.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fingerprint for the distribution family named `tag`.
    #[must_use]
    pub fn new(tag: &str) -> Self {
        let mut h = Fingerprint(Self::OFFSET);
        for byte in tag.as_bytes() {
            h.mix(u64::from(*byte));
        }
        h
    }

    /// Folds a parameter value in by its IEEE bit pattern (`-0.0` is
    /// canonicalized to `0.0` so equal parameters hash equally).
    #[must_use]
    pub fn with_f64(mut self, x: f64) -> Self {
        let canonical = if x == 0.0 { 0.0f64 } else { x };
        self.mix(canonical.to_bits());
        self
    }

    /// Folds an integer parameter (a count, a sub-fingerprint) in.
    #[must_use]
    pub fn with_u64(mut self, x: u64) -> Self {
        self.mix(x);
        self
    }

    /// The accumulated 64-bit fingerprint.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }

    fn mix(&mut self, word: u64) {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            self.0 ^= (word >> shift) & 0xff;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }
}

/// A possibly *defective* distribution of the time between sending an ARP
/// probe and receiving its reply.
///
/// Defective means the total mass may be less than one:
/// [`ReplyTimeDistribution::mass`] returns
/// `l = lim_{t→∞} Pr{reply arrives and X ≤ t}` and `1 − l` is the
/// probability the reply never arrives (Section 3.2 of the paper).
///
/// # Contract
///
/// Implementations must guarantee, for all `0 ≤ s ≤ t`:
///
/// - `0 ≤ cdf(t) ≤ mass() ≤ 1` and `cdf(s) ≤ cdf(t)` (monotone),
/// - `survival(t) = 1 − cdf(t)` mathematically, but computed *directly* to
///   preserve relative accuracy when `cdf(t)` is close to one (see the
///   crate-level numerical note),
/// - `sample` returns `None` with probability `1 − mass()` and otherwise a
///   time distributed according to the normalized CDF `cdf(t)/mass()`.
///
/// The trait is object safe; models hold `Arc<dyn ReplyTimeDistribution>`.
pub trait ReplyTimeDistribution: fmt::Debug + Send + Sync {
    /// Total probability `l` that a reply ever arrives.
    fn mass(&self) -> f64;

    /// The defect `1 − l`: probability that the reply never arrives.
    ///
    /// The default computes `1 − mass()`, which is exact in IEEE arithmetic
    /// for `mass ≥ 0.5` (Sterbenz) but loses the *parameterized* defect
    /// when a caller conceptually supplies `1 − 1e−15`: the subtraction
    /// rounds before this method ever runs. Distributions parameterized by
    /// their loss probability (e.g.
    /// [`DefectiveExponential::from_loss`](crate::DefectiveExponential::from_loss))
    /// therefore store the defect and override this method to return it
    /// exactly.
    fn defect(&self) -> f64 {
        1.0 - self.mass()
    }

    /// Defective CDF: probability that a reply arrives *and* arrives within
    /// `t` seconds. Queries at negative `t` return zero.
    fn cdf(&self, t: f64) -> f64;

    /// Survival `1 − cdf(t)`, computed without cancellation.
    fn survival(&self, t: f64) -> f64;

    /// In-place batch survival: replaces every time `ts[j]` with
    /// `survival(ts[j])`.
    ///
    /// This is the batch entry point behind `noanswer::p_i_batch` — the
    /// engine's blocked column kernel evaluates one probe round `i`
    /// across a whole block of listening periods with a single virtual
    /// call, and distributions override this method to hoist their
    /// loop-invariant constants out of the per-element closed form.
    ///
    /// # Contract
    ///
    /// Overrides must be **bit-identical** to the scalar path: for every
    /// element, `survival_batch` must produce exactly
    /// `self.survival(t).to_bits()`. Hoisting is therefore restricted to
    /// factors the scalar form computes identically per call (e.g.
    /// `1 − mass`, `−rate`); reassociating or strength-reducing the
    /// arithmetic is not allowed. The `zeroconf_proptest`-gated property
    /// suite asserts this contract for every vendored distribution.
    fn survival_batch(&self, ts: &mut [f64]) {
        for t in ts {
            *t = self.survival(*t);
        }
    }

    /// Backend-aware batch survival: like [`survival_batch`], but the caller
    /// names the SIMD [`Backend`] it wants and the distribution reports the
    /// backend it *actually* ran.
    ///
    /// The default falls back to [`survival_batch`] and honestly returns
    /// [`Backend::Scalar`] — a distribution that forgets to override this
    /// method cannot silently masquerade as vectorized. The engine folds the
    /// returned values into its stats block (`dist_backend`), so a scalar
    /// straggler in a SIMD run is visible, and the parity suites assert that
    /// every vendored family reports the backend it was asked for.
    ///
    /// # Contract
    ///
    /// Results must be `to_bits`-identical to [`survival_batch`] on every
    /// backend — vector overrides keep the scalar operation order (see
    /// `zeroconf_simd`'s lane kernels for the arrangement rules).
    ///
    /// [`survival_batch`]: ReplyTimeDistribution::survival_batch
    /// [`Backend`]: zeroconf_simd::Backend
    /// [`Backend::Scalar`]: zeroconf_simd::Backend::Scalar
    fn survival_batch_with(&self, backend: Backend, ts: &mut [f64]) -> Backend {
        let _ = backend;
        self.survival_batch(ts);
        Backend::Scalar
    }

    /// Draws a reply time; `None` means the reply is lost forever.
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64>;

    /// Mean reply time conditional on the reply arriving, when finite and
    /// cheaply available (used for reporting, never for the analysis).
    fn mean_given_reply(&self) -> Option<f64>;

    /// Probability that a reply arrives in `(s, t]`, for `s ≤ t`; computed
    /// from survivals for accuracy.
    fn interval_probability(&self, s: f64, t: f64) -> f64 {
        (self.survival(s) - self.survival(t)).max(0.0)
    }

    /// The `p`-quantile of the reply time *conditional on the reply
    /// arriving*: the smallest `t` with `cdf(t)/mass() ≥ p`. Returns
    /// `None` for `p ∉ [0, 1]`, for a zero-mass distribution, or when the
    /// implementation has no closed form (the default).
    ///
    /// Used for reporting ("95 % of replies arrive within …"), which is
    /// how a protocol designer would justify a listening period from
    /// measurements.
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        let _ = p;
        None
    }

    /// A stable 64-bit value-identity hash: equal type and parameters give
    /// equal fingerprints. Build it with [`Fingerprint`]. Used by caches
    /// that key derived quantities (π-tables) on the distribution alone,
    /// so it must cover every parameter that influences `cdf`/`survival`.
    fn fingerprint(&self) -> u64;
}

impl<T: ReplyTimeDistribution + ?Sized> ReplyTimeDistribution for &T {
    fn mass(&self) -> f64 {
        (**self).mass()
    }
    fn defect(&self) -> f64 {
        (**self).defect()
    }
    fn cdf(&self, t: f64) -> f64 {
        (**self).cdf(t)
    }
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn survival_batch(&self, ts: &mut [f64]) {
        (**self).survival_batch(ts);
    }
    fn survival_batch_with(&self, backend: Backend, ts: &mut [f64]) -> Backend {
        (**self).survival_batch_with(backend, ts)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        (**self).sample(rng)
    }
    fn mean_given_reply(&self) -> Option<f64> {
        (**self).mean_given_reply()
    }
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        (**self).quantile_given_reply(p)
    }
    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

impl<T: ReplyTimeDistribution + ?Sized> ReplyTimeDistribution for std::sync::Arc<T> {
    fn mass(&self) -> f64 {
        (**self).mass()
    }
    fn defect(&self) -> f64 {
        (**self).defect()
    }
    fn cdf(&self, t: f64) -> f64 {
        (**self).cdf(t)
    }
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn survival_batch(&self, ts: &mut [f64]) {
        (**self).survival_batch(ts);
    }
    fn survival_batch_with(&self, backend: Backend, ts: &mut [f64]) -> Backend {
        (**self).survival_batch_with(backend, ts)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        (**self).sample(rng)
    }
    fn mean_given_reply(&self) -> Option<f64> {
        (**self).mean_given_reply()
    }
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        (**self).quantile_given_reply(p)
    }
    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::DefectiveDeterministic;

    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let d = DefectiveDeterministic::new(0.9, 1.0).unwrap();
        let obj: &dyn ReplyTimeDistribution = &d;
        assert_eq!(obj.mass(), 0.9);
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = DefectiveDeterministic::new(0.5, 2.0).unwrap();
        let by_ref: &DefectiveDeterministic = &d;
        assert_eq!(ReplyTimeDistribution::mass(&by_ref), 0.5);
        let arc: Arc<dyn ReplyTimeDistribution> = Arc::new(d);
        assert_eq!(arc.cdf(3.0), 0.5);
        assert_eq!(arc.survival(3.0), 0.5);
        assert_eq!(arc.mean_given_reply(), Some(2.0));
    }

    #[test]
    fn fingerprint_is_value_identity() {
        let a = DefectiveDeterministic::new(0.9, 1.0).unwrap();
        let b = DefectiveDeterministic::new(0.9, 1.0).unwrap();
        let c = DefectiveDeterministic::new(0.9, 2.0).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Forwarders fingerprint like the value they wrap.
        let arc: Arc<dyn ReplyTimeDistribution> = Arc::new(b);
        assert_eq!(arc.fingerprint(), a.fingerprint());
        assert_eq!(ReplyTimeDistribution::fingerprint(&&a), a.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_families_and_swapped_parameters() {
        use crate::{DefectiveExponential, DefectiveUniform};
        // Same leading parameters, different family tags.
        let det = DefectiveDeterministic::new(0.5, 1.0).unwrap();
        let uni = DefectiveUniform::new(0.5, 1.0, 2.0).unwrap();
        assert_ne!(det.fingerprint(), uni.fingerprint());
        // Swapping two parameter slots must change the hash (order matters).
        let e1 = DefectiveExponential::new(0.9, 10.0, 1.0).unwrap();
        let e2 = DefectiveExponential::new(0.9, 1.0, 10.0).unwrap();
        assert_ne!(e1.fingerprint(), e2.fingerprint());
    }

    #[test]
    fn fingerprint_canonicalizes_negative_zero() {
        let h1 = Fingerprint::new("t").with_f64(0.0).finish();
        let h2 = Fingerprint::new("t").with_f64(-0.0).finish();
        assert_eq!(h1, h2);
        assert_ne!(h1, Fingerprint::new("t").with_f64(1.0).finish());
    }

    #[test]
    fn interval_probability_from_survivals() {
        let d = DefectiveDeterministic::new(1.0, 1.5).unwrap();
        assert_eq!(d.interval_probability(1.0, 2.0), 1.0);
        assert_eq!(d.interval_probability(2.0, 3.0), 0.0);
        assert_eq!(d.interval_probability(0.0, 1.0), 0.0);
    }
}
