//! The reply-time distribution trait.

use std::fmt;

use rand::RngCore;

/// A possibly *defective* distribution of the time between sending an ARP
/// probe and receiving its reply.
///
/// Defective means the total mass may be less than one:
/// [`ReplyTimeDistribution::mass`] returns
/// `l = lim_{t→∞} Pr{reply arrives and X ≤ t}` and `1 − l` is the
/// probability the reply never arrives (Section 3.2 of the paper).
///
/// # Contract
///
/// Implementations must guarantee, for all `0 ≤ s ≤ t`:
///
/// - `0 ≤ cdf(t) ≤ mass() ≤ 1` and `cdf(s) ≤ cdf(t)` (monotone),
/// - `survival(t) = 1 − cdf(t)` mathematically, but computed *directly* to
///   preserve relative accuracy when `cdf(t)` is close to one (see the
///   crate-level numerical note),
/// - `sample` returns `None` with probability `1 − mass()` and otherwise a
///   time distributed according to the normalized CDF `cdf(t)/mass()`.
///
/// The trait is object safe; models hold `Arc<dyn ReplyTimeDistribution>`.
pub trait ReplyTimeDistribution: fmt::Debug + Send + Sync {
    /// Total probability `l` that a reply ever arrives.
    fn mass(&self) -> f64;

    /// The defect `1 − l`: probability that the reply never arrives.
    ///
    /// The default computes `1 − mass()`, which is exact in IEEE arithmetic
    /// for `mass ≥ 0.5` (Sterbenz) but loses the *parameterized* defect
    /// when a caller conceptually supplies `1 − 1e−15`: the subtraction
    /// rounds before this method ever runs. Distributions parameterized by
    /// their loss probability (e.g.
    /// [`DefectiveExponential::from_loss`](crate::DefectiveExponential::from_loss))
    /// therefore store the defect and override this method to return it
    /// exactly.
    fn defect(&self) -> f64 {
        1.0 - self.mass()
    }

    /// Defective CDF: probability that a reply arrives *and* arrives within
    /// `t` seconds. Queries at negative `t` return zero.
    fn cdf(&self, t: f64) -> f64;

    /// Survival `1 − cdf(t)`, computed without cancellation.
    fn survival(&self, t: f64) -> f64;

    /// Draws a reply time; `None` means the reply is lost forever.
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64>;

    /// Mean reply time conditional on the reply arriving, when finite and
    /// cheaply available (used for reporting, never for the analysis).
    fn mean_given_reply(&self) -> Option<f64>;

    /// Probability that a reply arrives in `(s, t]`, for `s ≤ t`; computed
    /// from survivals for accuracy.
    fn interval_probability(&self, s: f64, t: f64) -> f64 {
        (self.survival(s) - self.survival(t)).max(0.0)
    }

    /// The `p`-quantile of the reply time *conditional on the reply
    /// arriving*: the smallest `t` with `cdf(t)/mass() ≥ p`. Returns
    /// `None` for `p ∉ [0, 1]`, for a zero-mass distribution, or when the
    /// implementation has no closed form (the default).
    ///
    /// Used for reporting ("95 % of replies arrive within …"), which is
    /// how a protocol designer would justify a listening period from
    /// measurements.
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        let _ = p;
        None
    }
}

impl<T: ReplyTimeDistribution + ?Sized> ReplyTimeDistribution for &T {
    fn mass(&self) -> f64 {
        (**self).mass()
    }
    fn defect(&self) -> f64 {
        (**self).defect()
    }
    fn cdf(&self, t: f64) -> f64 {
        (**self).cdf(t)
    }
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        (**self).sample(rng)
    }
    fn mean_given_reply(&self) -> Option<f64> {
        (**self).mean_given_reply()
    }
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        (**self).quantile_given_reply(p)
    }
}

impl<T: ReplyTimeDistribution + ?Sized> ReplyTimeDistribution for std::sync::Arc<T> {
    fn mass(&self) -> f64 {
        (**self).mass()
    }
    fn defect(&self) -> f64 {
        (**self).defect()
    }
    fn cdf(&self, t: f64) -> f64 {
        (**self).cdf(t)
    }
    fn survival(&self, t: f64) -> f64 {
        (**self).survival(t)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        (**self).sample(rng)
    }
    fn mean_given_reply(&self) -> Option<f64> {
        (**self).mean_given_reply()
    }
    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        (**self).quantile_given_reply(p)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use crate::DefectiveDeterministic;

    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let d = DefectiveDeterministic::new(0.9, 1.0).unwrap();
        let obj: &dyn ReplyTimeDistribution = &d;
        assert_eq!(obj.mass(), 0.9);
    }

    #[test]
    fn blanket_impls_delegate() {
        let d = DefectiveDeterministic::new(0.5, 2.0).unwrap();
        let by_ref: &DefectiveDeterministic = &d;
        assert_eq!(ReplyTimeDistribution::mass(&by_ref), 0.5);
        let arc: Arc<dyn ReplyTimeDistribution> = Arc::new(d);
        assert_eq!(arc.cdf(3.0), 0.5);
        assert_eq!(arc.survival(3.0), 0.5);
        assert_eq!(arc.mean_given_reply(), Some(2.0));
    }

    #[test]
    fn interval_probability_from_survivals() {
        let d = DefectiveDeterministic::new(1.0, 1.5).unwrap();
        assert_eq!(d.interval_probability(1.0, 2.0), 1.0);
        assert_eq!(d.interval_probability(2.0, 3.0), 0.0);
        assert_eq!(d.interval_probability(0.0, 1.0), 0.0);
    }
}
