//! Empirical reply-time distributions built from measured samples.

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// The measured-data case the paper asks for ("Preferably, it should be
/// based on measurements", Section 3.2): an empirical CDF over observed
/// reply times, where `None` observations record probes that never got a
/// reply.
///
/// The CDF is the usual right-continuous step function; `mass()` is the
/// observed arrival fraction. Sampling re-draws uniformly from the
/// observations (a bootstrap draw).
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{Empirical, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let measured = vec![Some(0.1), Some(0.2), Some(0.2), None];
/// let d = Empirical::from_observations(measured)?;
/// assert_eq!(d.mass(), 0.75);
/// assert_eq!(d.cdf(0.15), 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Sorted arrival times.
    times: Vec<f64>,
    /// Total number of observations including losses.
    total: usize,
}

impl Empirical {
    /// Builds the distribution from observations; `None` marks a lost
    /// reply.
    ///
    /// # Errors
    ///
    /// - [`DistError::EmptyInput`] when no observations are supplied.
    /// - [`DistError::InvalidSample`] for negative or non-finite times.
    pub fn from_observations(observations: Vec<Option<f64>>) -> Result<Self, DistError> {
        if observations.is_empty() {
            return Err(DistError::EmptyInput);
        }
        let total = observations.len();
        let mut times = Vec::with_capacity(total);
        for (index, obs) in observations.into_iter().enumerate() {
            if let Some(t) = obs {
                if !t.is_finite() || t < 0.0 {
                    return Err(DistError::InvalidSample { index, value: t });
                }
                times.push(t);
            }
        }
        times.sort_by(f64::total_cmp);
        Ok(Empirical { times, total })
    }

    /// Number of observations (arrivals plus losses).
    pub fn num_observations(&self) -> usize {
        self.total
    }

    /// Number of observed arrivals.
    pub fn num_arrivals(&self) -> usize {
        self.times.len()
    }

    /// The empirical `q`-quantile of the arrival times, if any arrived.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidQuery`] unless `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<Option<f64>, DistError> {
        if !q.is_finite() || !(0.0..=1.0).contains(&q) {
            return Err(DistError::InvalidQuery {
                what: "quantile level must be in [0, 1]",
                value: q,
            });
        }
        if self.times.is_empty() {
            return Ok(None);
        }
        let idx = ((q * (self.times.len() - 1) as f64).round() as usize).min(self.times.len() - 1);
        Ok(Some(self.times[idx]))
    }
}

impl ReplyTimeDistribution for Empirical {
    fn mass(&self) -> f64 {
        self.times.len() as f64 / self.total as f64
    }

    fn fingerprint(&self) -> u64 {
        self.times
            .iter()
            .fold(
                crate::Fingerprint::new("empirical").with_u64(self.total as u64),
                |h, t| h.with_f64(*t),
            )
            .finish()
    }

    fn cdf(&self, t: f64) -> f64 {
        // Count of arrivals <= t via binary search on the sorted times.
        let count = self.times.partition_point(|&x| x <= t);
        count as f64 / self.total as f64
    }

    fn survival(&self, t: f64) -> f64 {
        let count = self.times.partition_point(|&x| x <= t);
        (self.total - count) as f64 / self.total as f64
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let idx = zeroconf_rng::Rng::gen_range(rng, 0..self.total);
        self.times.get(idx).copied()
    }

    fn mean_given_reply(&self) -> Option<f64> {
        if self.times.is_empty() {
            None
        } else {
            Some(self.times.iter().sum::<f64>() / self.times.len() as f64)
        }
    }

    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        self.quantile(p).ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    fn sample() -> Empirical {
        Empirical::from_observations(vec![Some(0.1), Some(0.3), None, Some(0.3), None]).unwrap()
    }

    #[test]
    fn construction_counts_arrivals_and_losses() {
        let d = sample();
        assert_eq!(d.num_observations(), 5);
        assert_eq!(d.num_arrivals(), 3);
        assert!((d.mass() - 0.6).abs() < 1e-15);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(matches!(
            Empirical::from_observations(vec![]),
            Err(DistError::EmptyInput)
        ));
    }

    #[test]
    fn invalid_samples_are_rejected() {
        assert!(Empirical::from_observations(vec![Some(-1.0)]).is_err());
        assert!(Empirical::from_observations(vec![Some(f64::NAN)]).is_err());
    }

    #[test]
    fn cdf_is_the_step_function() {
        let d = sample();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(0.1), 0.2);
        assert_eq!(d.cdf(0.2), 0.2);
        assert_eq!(d.cdf(0.3), 0.6);
        assert_eq!(d.cdf(1.0), 0.6);
    }

    #[test]
    fn survival_complements_cdf_exactly() {
        let d = sample();
        for t in [0.0, 0.1, 0.2, 0.3, 0.5] {
            assert_eq!(d.survival(t), 1.0 - d.cdf(t));
        }
    }

    #[test]
    fn all_lost_observations_give_zero_mass() {
        let d = Empirical::from_observations(vec![None, None]).unwrap();
        assert_eq!(d.mass(), 0.0);
        assert_eq!(d.mean_given_reply(), None);
        assert_eq!(d.quantile(0.5).unwrap(), None);
    }

    #[test]
    fn quantiles_walk_the_sorted_samples() {
        let d = Empirical::from_observations(vec![Some(1.0), Some(2.0), Some(3.0)]).unwrap();
        assert_eq!(d.quantile(0.0).unwrap(), Some(1.0));
        assert_eq!(d.quantile(0.5).unwrap(), Some(2.0));
        assert_eq!(d.quantile(1.0).unwrap(), Some(3.0));
        assert!(d.quantile(1.5).is_err());
    }

    #[test]
    fn trait_quantile_delegates_to_the_inherent_one() {
        let d = Empirical::from_observations(vec![Some(1.0), Some(2.0), Some(3.0)]).unwrap();
        use crate::ReplyTimeDistribution;
        assert_eq!(d.quantile_given_reply(0.5), Some(2.0));
        assert_eq!(d.quantile_given_reply(1.5), None);
    }

    #[test]
    fn mean_given_reply_averages_arrivals() {
        let d = sample();
        assert!((d.mean_given_reply().unwrap() - (0.1 + 0.3 + 0.3) / 3.0).abs() < 1e-15);
    }

    #[test]
    fn bootstrap_sampling_reproduces_loss_rate() {
        let d = sample();
        let mut rng = StdRng::seed_from_u64(123);
        let n = 50_000;
        let lost = (0..n).filter(|_| d.sample(&mut rng).is_none()).count();
        let loss_rate = lost as f64 / n as f64;
        assert!((loss_rate - 0.4).abs() < 0.01);
    }
}
