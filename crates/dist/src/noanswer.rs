//! No-answer probabilities: Eq. (1) of the paper and the products `π_i(r)`.
//!
//! Eq. (1) defines the probability that no reply to any of the first `i`
//! probes arrives during the `i`-th listening period, given none arrived
//! earlier:
//!
//! ```text
//! P(i, r) = Π_{j=1..i} ( 1 − (F_X(jr) − F_X((j−1)r)) / (1 − F_X((j−1)r)) )
//! ```
//!
//! Each factor equals `survival(jr) / survival((j−1)r)`, so the product
//! *telescopes* to `P(i, r) = survival(i·r) / survival(0)`. The paper's
//! running products `π_i(r) = Π_{j=0..i} p_j(r)` (with `p_0 = 1`) then
//! satisfy
//!
//! ```text
//! π_i(r) = Π_{j=1..i} survival(j·r)
//! ```
//!
//! which is *exactly* the probability that `i` probes sent at times
//! `0, r, …, (i−1)r`, with independent reply delays `X_j ~ F_X`, are all
//! still unanswered at time `i·r` (probe `j` is answered by then iff
//! `X_j ≤ (i−j+1)r`; re-indexing the product over `k = i−j+1` gives the
//! same factors). This equivalence is what lets the discrete-event
//! simulator in `zeroconf-sim` validate the Markov model exactly; the
//! property tests below check it numerically.
//!
//! Both the telescoped and the literal product form are provided — the
//! literal form exists to validate the algebra and to quantify its
//! numerical inferiority in the `pi_literal_vs_telescoped` benchmark.

use crate::{DistError, ReplyTimeDistribution};

/// `p_i(r)`: probability of no reply during the `i`-th listening period
/// given none arrived earlier (telescoped form of Eq. 1).
///
/// `p_0(r) = 1` by the paper's convention.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{noanswer, DefectiveExponential};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fx = DefectiveExponential::new(0.999, 10.0, 1.0)?;
/// let p1 = noanswer::no_answer_probability(&fx, 1, 2.0)?;
/// assert!(p1 > 0.0 && p1 < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn no_answer_probability<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    i: usize,
    r: f64,
) -> Result<f64, DistError> {
    check_r(r)?;
    if i == 0 {
        return Ok(1.0);
    }
    let base = dist.survival(0.0);
    if base <= 0.0 {
        // All mass at t = 0: a reply arrives instantly, so the conditional
        // no-answer probability degenerates to zero.
        return Ok(0.0);
    }
    Ok(clamp_probability(dist.survival(i as f64 * r) / base))
}

/// `p_i(r)` computed by the literal product of Eq. (1), factor by factor.
///
/// Mathematically identical to [`no_answer_probability`]; numerically it
/// accumulates one division per round and loses the defect's relative
/// precision (see the crate-level note). Kept public for validation and
/// benchmarking.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
pub fn no_answer_probability_literal<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    i: usize,
    r: f64,
) -> Result<f64, DistError> {
    check_r(r)?;
    let mut product = 1.0;
    for j in 1..=i {
        let lower = dist.cdf((j - 1) as f64 * r);
        let upper = dist.cdf(j as f64 * r);
        let denominator = 1.0 - lower;
        if denominator <= 0.0 {
            return Ok(0.0);
        }
        product *= 1.0 - (upper - lower) / denominator;
    }
    Ok(clamp_probability(product))
}

/// The running products `π_0(r), …, π_n(r)` with
/// `π_i(r) = Π_{j=0..i} p_j(r)`, computed as `Π_{j=1..i} survival(j·r)`.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{noanswer, DefectiveExponential};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fx = DefectiveExponential::new(0.9, 10.0, 1.0)?;
/// let pi = noanswer::pi_sequence(&fx, 4, 2.0)?;
/// assert_eq!(pi.len(), 5);
/// assert_eq!(pi[0], 1.0);
/// assert!(pi[4] < pi[1]);
/// # Ok(())
/// # }
/// ```
pub fn pi_sequence<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    n: usize,
    r: f64,
) -> Result<Vec<f64>, DistError> {
    check_r(r)?;
    let base = dist.survival(0.0);
    let mut out = Vec::with_capacity(n + 1);
    out.push(1.0);
    let mut running = 1.0;
    for i in 1..=n {
        let p_i = if base <= 0.0 {
            0.0
        } else {
            clamp_probability(dist.survival(i as f64 * r) / base)
        };
        running *= p_i;
        out.push(running);
    }
    Ok(out)
}

/// `π_n(r)` alone (the tail product the reliability formula needs).
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
pub fn pi<D: ReplyTimeDistribution + ?Sized>(dist: &D, n: usize, r: f64) -> Result<f64, DistError> {
    Ok(*pi_sequence(dist, n, r)?
        .last()
        .expect("pi_sequence returns n + 1 >= 1 entries"))
}

/// The limit `lim_{r→∞} π_i(r) = (1 − l)^i` the paper uses for the
/// asymptote `A_n` (Section 4.2).
pub fn pi_limit<D: ReplyTimeDistribution + ?Sized>(dist: &D, i: usize) -> f64 {
    dist.defect().powi(i as i32)
}

fn check_r(r: f64) -> Result<(), DistError> {
    if !r.is_finite() || r < 0.0 {
        Err(DistError::InvalidQuery {
            what: "listening period r must be nonnegative and finite",
            value: r,
        })
    } else {
        Ok(())
    }
}

fn clamp_probability(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use crate::{DefectiveDeterministic, DefectiveExponential};

    use super::*;

    fn paper_fx() -> DefectiveExponential {
        DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap()
    }

    #[test]
    fn p_zero_is_one() {
        let fx = paper_fx();
        assert_eq!(no_answer_probability(&fx, 0, 2.0).unwrap(), 1.0);
        assert_eq!(no_answer_probability_literal(&fx, 0, 2.0).unwrap(), 1.0);
    }

    #[test]
    fn p_is_one_when_r_below_round_trip_delay() {
        // "we can be quite sure that p_1 = 1, if r < d" (Section 3.2).
        let fx = paper_fx();
        assert_eq!(no_answer_probability(&fx, 1, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn p_decreases_with_longer_listening() {
        let fx = paper_fx();
        let p_short = no_answer_probability(&fx, 1, 1.2).unwrap();
        let p_long = no_answer_probability(&fx, 1, 3.0).unwrap();
        assert!(p_long < p_short);
    }

    #[test]
    fn literal_and_telescoped_agree_in_easy_regime() {
        let fx = DefectiveExponential::new(0.9, 2.0, 0.5).unwrap();
        for i in 0..6 {
            for r in [0.1, 0.5, 1.0, 2.0] {
                let a = no_answer_probability(&fx, i, r).unwrap();
                let b = no_answer_probability_literal(&fx, i, r).unwrap();
                assert!(
                    (a - b).abs() < 1e-12,
                    "i = {i}, r = {r}: telescoped {a} vs literal {b}"
                );
            }
        }
    }

    #[test]
    fn telescoped_form_keeps_defect_precision() {
        // For large i·r the no-answer probability is exactly the defect.
        let fx = paper_fx();
        let p = no_answer_probability(&fx, 1, 50.0).unwrap();
        assert!(((p - 1e-15) / 1e-15).abs() < 1e-9, "p = {p:e}");
    }

    #[test]
    fn pi_sequence_starts_at_one_and_decreases() {
        let fx = paper_fx();
        let pis = pi_sequence(&fx, 8, 2.0).unwrap();
        assert_eq!(pis.len(), 9);
        assert_eq!(pis[0], 1.0);
        for w in pis.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn pi_at_r_zero_is_one() {
        // Section 4.2: π_i(0) = 1.
        let fx = paper_fx();
        let pis = pi_sequence(&fx, 5, 0.0).unwrap();
        for p in pis {
            assert_eq!(p, 1.0);
        }
    }

    #[test]
    fn pi_limit_matches_paper_formula() {
        // Section 4.2: lim_{r→∞} π_i(r) = (1 − l)^i.
        let fx = DefectiveExponential::new(0.99, 10.0, 0.1).unwrap();
        for i in 0..5 {
            let analytic = pi_limit(&fx, i);
            let numeric = pi(&fx, i, 1e6).unwrap();
            let tolerance = 1e-9 * analytic.max(1e-300);
            assert!(
                (numeric - analytic).abs() <= tolerance,
                "i = {i}: {numeric:e} vs {analytic:e}"
            );
        }
    }

    #[test]
    fn pi_equals_product_of_survivals() {
        // π_i(r) = Π_{j=1..i} survival(j r): the independent-probes reading.
        let fx = DefectiveExponential::new(0.95, 3.0, 0.2).unwrap();
        let r = 0.7;
        let n = 6;
        let pis = pi_sequence(&fx, n, r).unwrap();
        use crate::ReplyTimeDistribution;
        for (i, pi) in pis.iter().enumerate() {
            let product: f64 = (1..=i).map(|j| fx.survival(j as f64 * r)).product();
            assert!((pi - product).abs() < 1e-14 * (1.0 + product), "i = {i}");
        }
    }

    #[test]
    fn deterministic_distribution_gives_step_pis() {
        // Fixed RTT 1.0, full mass: p_i(r) = 0 as soon as i·r >= 1.
        let d = DefectiveDeterministic::new(1.0, 1.0).unwrap();
        assert_eq!(no_answer_probability(&d, 1, 0.5).unwrap(), 1.0);
        assert_eq!(no_answer_probability(&d, 2, 0.5).unwrap(), 0.0);
        assert_eq!(no_answer_probability(&d, 1, 1.0).unwrap(), 0.0);
        let pis = pi_sequence(&d, 3, 0.5).unwrap();
        assert_eq!(pis, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_or_nan_r_is_rejected() {
        let fx = paper_fx();
        assert!(no_answer_probability(&fx, 1, -1.0).is_err());
        assert!(no_answer_probability(&fx, 1, f64::NAN).is_err());
        assert!(pi_sequence(&fx, 3, f64::INFINITY).is_err());
        assert!(no_answer_probability_literal(&fx, 1, -0.5).is_err());
    }

    #[test]
    fn figure6_magnitudes_are_reachable() {
        // The paper observes error probabilities within [1e−54, 1e−35];
        // those come from π_n(r) of this order. Check we can compute them.
        let fx = paper_fx();
        let p = pi(&fx, 3, 10.0).unwrap();
        assert!(p > 0.0, "π must stay positive");
        assert!(p < 1e-40, "π = {p:e} should be tiny");
    }

    #[test]
    fn works_through_trait_object() {
        let fx: Box<dyn ReplyTimeDistribution> = Box::new(paper_fx());
        let p = no_answer_probability(fx.as_ref(), 2, 2.0).unwrap();
        assert!(p > 0.0 && p < 1.0);
    }
}
