//! No-answer probabilities: Eq. (1) of the paper and the products `π_i(r)`.
//!
//! Eq. (1) defines the probability that no reply to any of the first `i`
//! probes arrives during the `i`-th listening period, given none arrived
//! earlier:
//!
//! ```text
//! P(i, r) = Π_{j=1..i} ( 1 − (F_X(jr) − F_X((j−1)r)) / (1 − F_X((j−1)r)) )
//! ```
//!
//! Each factor equals `survival(jr) / survival((j−1)r)`, so the product
//! *telescopes* to `P(i, r) = survival(i·r) / survival(0)`. The paper's
//! running products `π_i(r) = Π_{j=0..i} p_j(r)` (with `p_0 = 1`) then
//! satisfy
//!
//! ```text
//! π_i(r) = Π_{j=1..i} survival(j·r)
//! ```
//!
//! which is *exactly* the probability that `i` probes sent at times
//! `0, r, …, (i−1)r`, with independent reply delays `X_j ~ F_X`, are all
//! still unanswered at time `i·r` (probe `j` is answered by then iff
//! `X_j ≤ (i−j+1)r`; re-indexing the product over `k = i−j+1` gives the
//! same factors). This equivalence is what lets the discrete-event
//! simulator in `zeroconf-sim` validate the Markov model exactly; the
//! property tests below check it numerically.
//!
//! Both the telescoped and the literal product form are provided — the
//! literal form exists to validate the algebra and to quantify its
//! numerical inferiority in the `pi_literal_vs_telescoped` benchmark.

use crate::{Backend, DistError, ReplyTimeDistribution};

/// `p_i(r)`: probability of no reply during the `i`-th listening period
/// given none arrived earlier (telescoped form of Eq. 1).
///
/// `p_0(r) = 1` by the paper's convention.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{noanswer, DefectiveExponential};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fx = DefectiveExponential::new(0.999, 10.0, 1.0)?;
/// let p1 = noanswer::no_answer_probability(&fx, 1, 2.0)?;
/// assert!(p1 > 0.0 && p1 < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn no_answer_probability<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    i: usize,
    r: f64,
) -> Result<f64, DistError> {
    check_r(r)?;
    if i == 0 {
        return Ok(1.0);
    }
    let base = dist.survival(0.0);
    if base <= 0.0 {
        // All mass at t = 0: a reply arrives instantly, so the conditional
        // no-answer probability degenerates to zero.
        return Ok(0.0);
    }
    Ok(clamp_probability(dist.survival(i as f64 * r) / base))
}

/// `p_i(r)` computed by the literal product of Eq. (1), factor by factor.
///
/// Mathematically identical to [`no_answer_probability`]; numerically it
/// accumulates one division per round and loses the defect's relative
/// precision (see the crate-level note). Kept public for validation and
/// benchmarking.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
pub fn no_answer_probability_literal<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    i: usize,
    r: f64,
) -> Result<f64, DistError> {
    check_r(r)?;
    let mut product = 1.0;
    for j in 1..=i {
        let lower = dist.cdf((j - 1) as f64 * r);
        let upper = dist.cdf(j as f64 * r);
        let denominator = 1.0 - lower;
        if denominator <= 0.0 {
            return Ok(0.0);
        }
        product *= 1.0 - (upper - lower) / denominator;
    }
    Ok(clamp_probability(product))
}

/// The running products `π_0(r), …, π_n(r)` with
/// `π_i(r) = Π_{j=0..i} p_j(r)`, computed as `Π_{j=1..i} survival(j·r)`.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{noanswer, DefectiveExponential};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let fx = DefectiveExponential::new(0.9, 10.0, 1.0)?;
/// let pi = noanswer::pi_sequence(&fx, 4, 2.0)?;
/// assert_eq!(pi.len(), 5);
/// assert_eq!(pi[0], 1.0);
/// assert!(pi[4] < pi[1]);
/// # Ok(())
/// # }
/// ```
pub fn pi_sequence<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    n: usize,
    r: f64,
) -> Result<Vec<f64>, DistError> {
    check_r(r)?;
    let base = dist.survival(0.0);
    let mut out = Vec::with_capacity(n + 1);
    out.push(1.0);
    let mut running = 1.0;
    for i in 1..=n {
        let p_i = if base <= 0.0 {
            0.0
        } else {
            clamp_probability(dist.survival(i as f64 * r) / base)
        };
        running *= p_i;
        out.push(running);
    }
    Ok(out)
}

/// Batch form of [`no_answer_probability`]: `p_i(r)` for one probe round
/// `i` across a whole block of listening periods, written into `out`.
///
/// `out` must have the same length as `rs`. Each element is **bit-identical**
/// to `no_answer_probability(dist, i, rs[j])`: the same telescoped
/// `survival(i·r) / survival(0)` is evaluated with the same association,
/// via [`ReplyTimeDistribution::survival_batch`] so distributions hoist
/// their loop-invariant constants and pay one virtual dispatch per block
/// instead of one per element. When `survival(0) == 1.0` exactly (every
/// vendored distribution with a positive delay), the division is skipped —
/// `x / 1.0` is the identity on bits — but the clamp is kept, because a
/// defective survival may round a hair above one.
///
/// This is the entry point the blocked column kernel
/// (`zeroconf_cost::kernel::ColumnBlockKernel`) builds π-tables with.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for any non-finite or negative `r`;
/// `out` is unspecified (partially written) on error.
///
/// # Panics
///
/// Panics if `rs` and `out` differ in length.
pub fn p_i_batch<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    rs: &[f64],
    i: usize,
    out: &mut [f64],
) -> Result<(), DistError> {
    assert_eq!(
        rs.len(),
        out.len(),
        "p_i_batch output must hold one f64 per listening period"
    );
    for &r in rs {
        check_r(r)?;
    }
    if i == 0 {
        out.fill(1.0);
        return Ok(());
    }
    let base = dist.survival(0.0);
    if base <= 0.0 {
        out.fill(0.0);
        return Ok(());
    }
    let round = i as f64;
    for (t, &r) in out.iter_mut().zip(rs) {
        *t = round * r;
    }
    dist.survival_batch(out);
    if base == 1.0 {
        for p in out.iter_mut() {
            *p = clamp_probability(*p);
        }
    } else {
        for p in out.iter_mut() {
            *p = clamp_probability(*p / base);
        }
    }
    Ok(())
}

/// Backend-aware [`p_i_batch`]: the same computation with the scaling fill,
/// batch survival, and clamp pass dispatched to the requested SIMD backend.
///
/// Returns the backend that actually ran, which is the *minimum* over the
/// constituent kernels — in practice the distribution's
/// [`survival_batch_with`](ReplyTimeDistribution::survival_batch_with), since
/// the fill and clamp always vectorize. A distribution without a vector
/// override (e.g. [`Empirical`](crate::Empirical)) honestly reports
/// [`Backend::Scalar`], and the engine surfaces that in its stats block.
///
/// Results are `to_bits`-identical to [`p_i_batch`] on every backend.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`
/// (exactly as [`p_i_batch`] does).
///
/// # Panics
///
/// When `rs` and `out` differ in length.
pub fn p_i_batch_with<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    backend: Backend,
    rs: &[f64],
    i: usize,
    out: &mut [f64],
) -> Result<Backend, DistError> {
    assert_eq!(
        rs.len(),
        out.len(),
        "p_i_batch output must hold one f64 per listening period"
    );
    for &r in rs {
        check_r(r)?;
    }
    if i == 0 {
        out.fill(1.0);
        return Ok(backend.min(zeroconf_simd::Backend::detect()));
    }
    let base = dist.survival(0.0);
    if base <= 0.0 {
        out.fill(0.0);
        return Ok(backend.min(zeroconf_simd::Backend::detect()));
    }
    let mut used = zeroconf_simd::fill_scaled(backend, i as f64, rs, out);
    used = used.min(dist.survival_batch_with(backend, out));
    used = used.min(if base == 1.0 {
        zeroconf_simd::clamp_unit(backend, out)
    } else {
        zeroconf_simd::div_clamp_unit(backend, base, out)
    });
    Ok(used)
}

/// Multi-round form of [`p_i_batch_with`]: `p_i(r)` for `rounds`
/// consecutive probe rounds `first_round, first_round + 1, …` across one
/// block of listening periods, written round-major into `out` (round `k`'s
/// row occupies `out[k·w .. (k+1)·w]` for `w = rs.len()`).
///
/// Every element is **bit-identical** to
/// `no_answer_probability(dist, first_round + k, rs[j])`: the scaling
/// fill, the survival evaluation, and the clamp are the same elementwise
/// operations [`p_i_batch_with`] performs — they are simply applied to
/// `rounds` rows per virtual dispatch instead of one, which is what the
/// blocked π builder wants: its per-round batches shrink with the
/// zero-tail cutoff until call overhead rivals the survival work itself.
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for any non-finite or negative `r`;
/// `out` is unspecified (partially written) on error.
///
/// # Panics
///
/// Panics when `out.len() != rounds * rs.len()`, when `rounds` is zero,
/// or when `first_round` is zero (round 0 is the `p_0 = 1` convention,
/// which a multi-round batch has no business evaluating).
pub fn p_rounds_batch_with<D: ReplyTimeDistribution + ?Sized>(
    dist: &D,
    backend: Backend,
    rs: &[f64],
    first_round: usize,
    rounds: usize,
    out: &mut [f64],
) -> Result<Backend, DistError> {
    assert!(rounds > 0, "p_rounds_batch_with needs at least one round");
    assert!(
        first_round > 0,
        "p_rounds_batch_with starts at round 1 (p_0 = 1 by convention)"
    );
    assert_eq!(
        out.len(),
        rounds * rs.len(),
        "p_rounds_batch_with output must hold rounds x listening periods"
    );
    for &r in rs {
        check_r(r)?;
    }
    if rs.is_empty() {
        return Ok(backend.min(zeroconf_simd::Backend::detect()));
    }
    let base = dist.survival(0.0);
    if base <= 0.0 {
        out.fill(0.0);
        return Ok(backend.min(zeroconf_simd::Backend::detect()));
    }
    let width = rs.len();
    let mut used = backend.min(zeroconf_simd::Backend::detect());
    for (k, row) in out.chunks_exact_mut(width).enumerate() {
        used = used.min(zeroconf_simd::fill_scaled(
            backend,
            (first_round + k) as f64,
            rs,
            row,
        ));
    }
    used = used.min(dist.survival_batch_with(backend, out));
    used = used.min(if base == 1.0 {
        zeroconf_simd::clamp_unit(backend, out)
    } else {
        zeroconf_simd::div_clamp_unit(backend, base, out)
    });
    Ok(used)
}

/// `π_n(r)` alone (the tail product the reliability formula needs).
///
/// # Errors
///
/// Returns [`DistError::InvalidQuery`] for a non-finite or negative `r`.
pub fn pi<D: ReplyTimeDistribution + ?Sized>(dist: &D, n: usize, r: f64) -> Result<f64, DistError> {
    Ok(*pi_sequence(dist, n, r)?
        .last()
        .expect("pi_sequence returns n + 1 >= 1 entries"))
}

/// The limit `lim_{r→∞} π_i(r) = (1 − l)^i` the paper uses for the
/// asymptote `A_n` (Section 4.2).
pub fn pi_limit<D: ReplyTimeDistribution + ?Sized>(dist: &D, i: usize) -> f64 {
    dist.defect().powi(i as i32)
}

fn check_r(r: f64) -> Result<(), DistError> {
    if !r.is_finite() || r < 0.0 {
        Err(DistError::InvalidQuery {
            what: "listening period r must be nonnegative and finite",
            value: r,
        })
    } else {
        Ok(())
    }
}

fn clamp_probability(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use crate::{DefectiveDeterministic, DefectiveExponential};

    use super::*;

    fn paper_fx() -> DefectiveExponential {
        DefectiveExponential::from_loss(1e-15, 10.0, 1.0).unwrap()
    }

    #[test]
    fn p_zero_is_one() {
        let fx = paper_fx();
        assert_eq!(no_answer_probability(&fx, 0, 2.0).unwrap(), 1.0);
        assert_eq!(no_answer_probability_literal(&fx, 0, 2.0).unwrap(), 1.0);
    }

    #[test]
    fn p_is_one_when_r_below_round_trip_delay() {
        // "we can be quite sure that p_1 = 1, if r < d" (Section 3.2).
        let fx = paper_fx();
        assert_eq!(no_answer_probability(&fx, 1, 0.5).unwrap(), 1.0);
    }

    #[test]
    fn p_decreases_with_longer_listening() {
        let fx = paper_fx();
        let p_short = no_answer_probability(&fx, 1, 1.2).unwrap();
        let p_long = no_answer_probability(&fx, 1, 3.0).unwrap();
        assert!(p_long < p_short);
    }

    #[test]
    fn literal_and_telescoped_agree_in_easy_regime() {
        let fx = DefectiveExponential::new(0.9, 2.0, 0.5).unwrap();
        for i in 0..6 {
            for r in [0.1, 0.5, 1.0, 2.0] {
                let a = no_answer_probability(&fx, i, r).unwrap();
                let b = no_answer_probability_literal(&fx, i, r).unwrap();
                assert!(
                    (a - b).abs() < 1e-12,
                    "i = {i}, r = {r}: telescoped {a} vs literal {b}"
                );
            }
        }
    }

    #[test]
    fn telescoped_form_keeps_defect_precision() {
        // For large i·r the no-answer probability is exactly the defect.
        let fx = paper_fx();
        let p = no_answer_probability(&fx, 1, 50.0).unwrap();
        assert!(((p - 1e-15) / 1e-15).abs() < 1e-9, "p = {p:e}");
    }

    #[test]
    fn pi_sequence_starts_at_one_and_decreases() {
        let fx = paper_fx();
        let pis = pi_sequence(&fx, 8, 2.0).unwrap();
        assert_eq!(pis.len(), 9);
        assert_eq!(pis[0], 1.0);
        for w in pis.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn pi_at_r_zero_is_one() {
        // Section 4.2: π_i(0) = 1.
        let fx = paper_fx();
        let pis = pi_sequence(&fx, 5, 0.0).unwrap();
        for p in pis {
            assert_eq!(p, 1.0);
        }
    }

    #[test]
    fn pi_limit_matches_paper_formula() {
        // Section 4.2: lim_{r→∞} π_i(r) = (1 − l)^i.
        let fx = DefectiveExponential::new(0.99, 10.0, 0.1).unwrap();
        for i in 0..5 {
            let analytic = pi_limit(&fx, i);
            let numeric = pi(&fx, i, 1e6).unwrap();
            let tolerance = 1e-9 * analytic.max(1e-300);
            assert!(
                (numeric - analytic).abs() <= tolerance,
                "i = {i}: {numeric:e} vs {analytic:e}"
            );
        }
    }

    #[test]
    fn pi_equals_product_of_survivals() {
        // π_i(r) = Π_{j=1..i} survival(j r): the independent-probes reading.
        let fx = DefectiveExponential::new(0.95, 3.0, 0.2).unwrap();
        let r = 0.7;
        let n = 6;
        let pis = pi_sequence(&fx, n, r).unwrap();
        use crate::ReplyTimeDistribution;
        for (i, pi) in pis.iter().enumerate() {
            let product: f64 = (1..=i).map(|j| fx.survival(j as f64 * r)).product();
            assert!((pi - product).abs() < 1e-14 * (1.0 + product), "i = {i}");
        }
    }

    #[test]
    fn deterministic_distribution_gives_step_pis() {
        // Fixed RTT 1.0, full mass: p_i(r) = 0 as soon as i·r >= 1.
        let d = DefectiveDeterministic::new(1.0, 1.0).unwrap();
        assert_eq!(no_answer_probability(&d, 1, 0.5).unwrap(), 1.0);
        assert_eq!(no_answer_probability(&d, 2, 0.5).unwrap(), 0.0);
        assert_eq!(no_answer_probability(&d, 1, 1.0).unwrap(), 0.0);
        let pis = pi_sequence(&d, 3, 0.5).unwrap();
        assert_eq!(pis, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn negative_or_nan_r_is_rejected() {
        let fx = paper_fx();
        assert!(no_answer_probability(&fx, 1, -1.0).is_err());
        assert!(no_answer_probability(&fx, 1, f64::NAN).is_err());
        assert!(pi_sequence(&fx, 3, f64::INFINITY).is_err());
        assert!(no_answer_probability_literal(&fx, 1, -0.5).is_err());
    }

    #[test]
    fn figure6_magnitudes_are_reachable() {
        // The paper observes error probabilities within [1e−54, 1e−35];
        // those come from π_n(r) of this order. Check we can compute them.
        let fx = paper_fx();
        let p = pi(&fx, 3, 10.0).unwrap();
        assert!(p > 0.0, "π must stay positive");
        assert!(p < 1e-40, "π = {p:e} should be tiny");
    }

    #[test]
    fn works_through_trait_object() {
        let fx: Box<dyn ReplyTimeDistribution> = Box::new(paper_fx());
        let p = no_answer_probability(fx.as_ref(), 2, 2.0).unwrap();
        assert!(p > 0.0 && p < 1.0);
    }

    /// `p_i_batch` must replay the scalar path bit for bit on every
    /// vendored distribution family, including ones that keep the
    /// default `survival_batch` (mixture, empirical) and ones whose
    /// `survival(0)` is not exactly one (zero-delay exponential).
    #[test]
    fn p_i_batch_is_bit_identical_to_scalar_for_every_family() {
        use std::sync::Arc;

        use crate::{DefectiveUniform, DefectiveWeibull, Empirical, Mixture};

        let exp_delayed = Arc::new(paper_fx());
        let exp_zero_delay = Arc::new(DefectiveExponential::new(0.9, 3.0, 0.0).unwrap());
        let mixture = Mixture::new(vec![
            (0.6, exp_delayed.clone() as Arc<dyn ReplyTimeDistribution>),
            (
                0.4,
                exp_zero_delay.clone() as Arc<dyn ReplyTimeDistribution>,
            ),
        ])
        .unwrap();
        let empirical =
            Empirical::from_observations(vec![Some(0.4), Some(1.1), None, Some(2.5)]).unwrap();
        let dists: Vec<Box<dyn ReplyTimeDistribution>> = vec![
            Box::new(paper_fx()),
            Box::new(DefectiveExponential::new(0.9, 3.0, 0.0).unwrap()),
            Box::new(DefectiveDeterministic::new(0.7, 1.25).unwrap()),
            Box::new(DefectiveUniform::new(0.8, 0.5, 2.5).unwrap()),
            Box::new(DefectiveWeibull::new(0.9, 1.7, 1.3, 0.4).unwrap()),
            Box::new(mixture),
            Box::new(empirical),
        ];
        let rs = [0.0, 0.1, 0.5, 1.0, 1.25, 2.0, 7.5, 30.0];
        let mut out = [0.0f64; 8];
        for dist in &dists {
            for i in 0..=6usize {
                p_i_batch(dist.as_ref(), &rs, i, &mut out).unwrap();
                for (j, &r) in rs.iter().enumerate() {
                    let scalar = no_answer_probability(dist.as_ref(), i, r).unwrap();
                    assert_eq!(
                        out[j].to_bits(),
                        scalar.to_bits(),
                        "{dist:?}: i = {i}, r = {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn p_i_batch_rejects_bad_r_and_mismatched_lengths() {
        let fx = paper_fx();
        let mut out = [0.0f64; 2];
        assert!(p_i_batch(&fx, &[1.0, -1.0], 1, &mut out).is_err());
        assert!(p_i_batch(&fx, &[f64::NAN, 1.0], 1, &mut out).is_err());
        let result = std::panic::catch_unwind(|| {
            let mut short = [0.0f64; 1];
            let _ = p_i_batch(&paper_fx(), &[1.0, 2.0], 1, &mut short);
        });
        assert!(result.is_err(), "length mismatch must panic");
    }
}
