use std::error::Error;
use std::fmt;

/// Errors produced while constructing or evaluating reply-time
/// distributions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// The total reply mass `l` was outside `[0, 1]`.
    InvalidMass {
        /// The offending value.
        value: f64,
    },
    /// A rate or scale parameter was not strictly positive and finite.
    InvalidRate {
        /// Name of the parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A delay/shift parameter was negative or not finite.
    InvalidDelay {
        /// The offending value.
        value: f64,
    },
    /// An interval `[lo, hi]` was empty or unordered.
    InvalidInterval {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A mixture weight was negative or not finite, or all weights were
    /// zero.
    InvalidWeight {
        /// Index of the offending component (or 0 for "all zero").
        component: usize,
        /// The offending value.
        value: f64,
    },
    /// A mixture or empirical distribution was given no components/samples.
    EmptyInput,
    /// An empirical sample was negative or not finite.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A query argument (time or probe index) was invalid.
    InvalidQuery {
        /// Description of what was wrong.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidMass { value } => {
                write!(f, "reply mass {value} is outside [0, 1]")
            }
            DistError::InvalidRate { parameter, value } => {
                write!(f, "{parameter} must be positive and finite, got {value}")
            }
            DistError::InvalidDelay { value } => {
                write!(f, "delay must be nonnegative and finite, got {value}")
            }
            DistError::InvalidInterval { lo, hi } => {
                write!(f, "interval [{lo}, {hi}] is empty or unordered")
            }
            DistError::InvalidWeight { component, value } => {
                write!(f, "invalid mixture weight {value} at component {component}")
            }
            DistError::EmptyInput => write!(f, "no components or samples supplied"),
            DistError::InvalidSample { index, value } => {
                write!(f, "invalid sample {value} at index {index}")
            }
            DistError::InvalidQuery { what, value } => {
                write!(f, "invalid query: {what} (got {value})")
            }
        }
    }
}

impl Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DistError::InvalidMass { value: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(DistError::InvalidRate {
            parameter: "lambda",
            value: -1.0
        }
        .to_string()
        .contains("lambda"));
        assert!(DistError::InvalidInterval { lo: 2.0, hi: 1.0 }
            .to_string()
            .contains("[2, 1]"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DistError>();
    }
}
