//! Shifted defective Weibull reply distribution.

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// A shifted Weibull distribution of reply times:
///
/// ```text
/// F_X(t) = l · (1 − e^{−((t−d)/scale)^shape})   for t ≥ d
/// ```
///
/// With `shape = 1` this reduces to the paper's
/// [`DefectiveExponential`](crate::DefectiveExponential) with
/// `rate = 1/scale`; `shape > 1` models
/// replies concentrated around a typical latency, `shape < 1` heavy-tailed
/// congestion. Used by the sensitivity experiments to test how strongly the
/// paper's conclusions depend on the exponential assumption.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{DefectiveWeibull, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let d = DefectiveWeibull::new(1.0, 2.0, 0.1, 0.0)?;
/// assert!(d.cdf(0.1) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectiveWeibull {
    mass: f64,
    shape: f64,
    scale: f64,
    delay: f64,
}

impl DefectiveWeibull {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// - [`DistError::InvalidMass`] unless `mass ∈ [0, 1]`.
    /// - [`DistError::InvalidRate`] unless `shape > 0` and `scale > 0`.
    /// - [`DistError::InvalidDelay`] unless `delay ≥ 0` and finite.
    pub fn new(mass: f64, shape: f64, scale: f64, delay: f64) -> Result<Self, DistError> {
        if !mass.is_finite() || !(0.0..=1.0).contains(&mass) {
            return Err(DistError::InvalidMass { value: mass });
        }
        if !shape.is_finite() || shape <= 0.0 {
            return Err(DistError::InvalidRate {
                parameter: "shape",
                value: shape,
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(DistError::InvalidRate {
                parameter: "scale",
                value: scale,
            });
        }
        if !delay.is_finite() || delay < 0.0 {
            return Err(DistError::InvalidDelay { value: delay });
        }
        Ok(DefectiveWeibull {
            mass,
            shape,
            scale,
            delay,
        })
    }

    fn hazard_exponent(&self, t: f64) -> f64 {
        ((t - self.delay) / self.scale).powf(self.shape)
    }
}

impl ReplyTimeDistribution for DefectiveWeibull {
    fn mass(&self) -> f64 {
        self.mass
    }

    fn fingerprint(&self) -> u64 {
        crate::Fingerprint::new("weibull")
            .with_f64(self.mass)
            .with_f64(self.shape)
            .with_f64(self.scale)
            .with_f64(self.delay)
            .finish()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t < self.delay {
            0.0
        } else {
            self.mass * (-(-self.hazard_exponent(t)).exp_m1())
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t < self.delay {
            1.0
        } else {
            (1.0 - self.mass) + self.mass * (-self.hazard_exponent(t)).exp()
        }
    }

    fn survival_batch(&self, ts: &mut [f64]) {
        // Hoists `1 − mass` and the field reads; the hazard exponent
        // `((t − d)/s)^k` stays per-element with the scalar association,
        // so results are bit-identical to `survival`.
        let delay = self.delay;
        let scale = self.scale;
        let shape = self.shape;
        let mass = self.mass;
        let survived = 1.0 - self.mass;
        for t in ts {
            *t = if *t < delay {
                1.0
            } else {
                let hazard = ((*t - delay) / scale).powf(shape);
                survived + mass * (-hazard).exp()
            };
        }
    }

    fn survival_batch_with(
        &self,
        backend: zeroconf_simd::Backend,
        ts: &mut [f64],
    ) -> zeroconf_simd::Backend {
        // Same hoists as `survival_batch`; `powf`/`exp` run scalar per lane
        // inside the kernel, so every backend is bit-identical.
        zeroconf_simd::survival_weibull(
            backend,
            self.delay,
            self.scale,
            self.shape,
            self.mass,
            1.0 - self.mass,
            ts,
        )
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let u: f64 = zeroconf_rng::Rng::gen(rng);
        if u >= self.mass {
            return None;
        }
        let v: f64 = zeroconf_rng::Rng::gen(rng);
        // Inverse transform: t = d + scale * (−ln(1−v))^{1/shape}.
        Some(self.delay + self.scale * (-(-v).ln_1p()).powf(1.0 / self.shape))
    }

    fn mean_given_reply(&self) -> Option<f64> {
        // Mean requires Γ(1 + 1/shape); avoid a gamma implementation and
        // return it only for the exponential special case.
        if (self.shape - 1.0).abs() < 1e-12 {
            Some(self.delay + self.scale)
        } else {
            None
        }
    }

    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return None;
        }
        if p == 1.0 {
            return Some(f64::INFINITY);
        }
        Some(self.delay + self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape))
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use crate::DefectiveExponential;

    use super::*;

    #[test]
    fn construction_validates() {
        assert!(DefectiveWeibull::new(1.5, 1.0, 1.0, 0.0).is_err());
        assert!(DefectiveWeibull::new(0.5, 0.0, 1.0, 0.0).is_err());
        assert!(DefectiveWeibull::new(0.5, 1.0, 0.0, 0.0).is_err());
        assert!(DefectiveWeibull::new(0.5, 1.0, 1.0, -0.5).is_err());
    }

    #[test]
    fn shape_one_matches_exponential() {
        let w = DefectiveWeibull::new(0.9, 1.0, 0.1, 0.5).unwrap();
        let e = DefectiveExponential::new(0.9, 10.0, 0.5).unwrap();
        for t in [0.0, 0.5, 0.6, 1.0, 2.0, 10.0] {
            assert!(
                (w.cdf(t) - e.cdf(t)).abs() < 1e-12,
                "t = {t}: {} vs {}",
                w.cdf(t),
                e.cdf(t)
            );
            assert!((w.survival(t) - e.survival(t)).abs() < 1e-12);
        }
        assert_eq!(w.mean_given_reply(), e.mean_given_reply());
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let w = DefectiveWeibull::new(0.8, 2.5, 0.3, 0.1).unwrap();
        let mut prev = 0.0;
        for k in 0..100 {
            let t = k as f64 * 0.05;
            let c = w.cdf(t);
            assert!(c >= prev);
            assert!(c <= 0.8 + 1e-15);
            prev = c;
        }
    }

    #[test]
    fn non_exponential_mean_is_unavailable() {
        let w = DefectiveWeibull::new(0.8, 2.0, 0.3, 0.0).unwrap();
        assert_eq!(w.mean_given_reply(), None);
    }

    #[test]
    fn quantiles_invert_the_normalized_cdf() {
        let w = DefectiveWeibull::new(0.8, 2.0, 0.5, 0.2).unwrap();
        for p in [0.1, 0.5, 0.9] {
            let t = w.quantile_given_reply(p).unwrap();
            let back = w.cdf(t) / w.mass();
            assert!((back - p).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_respect_delay_and_loss() {
        let w = DefectiveWeibull::new(0.7, 2.0, 0.5, 0.2).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut lost = 0;
        for _ in 0..20_000 {
            match w.sample(&mut rng) {
                Some(t) => assert!(t >= 0.2),
                None => lost += 1,
            }
        }
        let loss_rate = lost as f64 / 20_000.0;
        assert!((loss_rate - 0.3).abs() < 0.015);
    }

    #[test]
    fn sample_distribution_matches_cdf() {
        // Empirical CDF at a checkpoint should match the analytic CDF.
        let w = DefectiveWeibull::new(1.0, 2.0, 1.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(32);
        let n = 50_000;
        let checkpoint = 1.0;
        let below = (0..n)
            .filter(|_| matches!(w.sample(&mut rng), Some(t) if t <= checkpoint))
            .count();
        let empirical = below as f64 / n as f64;
        assert!((empirical - w.cdf(checkpoint)).abs() < 0.01);
    }
}
