//! Point-mass (fixed round-trip time) reply distribution.

use zeroconf_rng::RngCore;

use crate::{DistError, ReplyTimeDistribution};

/// A reply that, when it arrives at all, arrives after exactly `delay`
/// seconds.
///
/// Useful for switched wired networks with a dominant fixed latency and as
/// the sharpest possible stress test for the optimizer: the no-answer
/// probabilities `p_i(r)` become step functions in `r`.
///
/// # Examples
///
/// ```
/// use zeroconf_dist::{DefectiveDeterministic, ReplyTimeDistribution};
///
/// # fn main() -> Result<(), zeroconf_dist::DistError> {
/// let d = DefectiveDeterministic::new(0.999, 0.05)?;
/// assert_eq!(d.cdf(0.04), 0.0);
/// assert_eq!(d.cdf(0.05), 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectiveDeterministic {
    mass: f64,
    delay: f64,
}

impl DefectiveDeterministic {
    /// Creates the distribution with reply mass `l` and fixed delay.
    ///
    /// # Errors
    ///
    /// - [`DistError::InvalidMass`] unless `mass ∈ [0, 1]`.
    /// - [`DistError::InvalidDelay`] unless `delay ≥ 0` and finite.
    pub fn new(mass: f64, delay: f64) -> Result<Self, DistError> {
        if !mass.is_finite() || !(0.0..=1.0).contains(&mass) {
            return Err(DistError::InvalidMass { value: mass });
        }
        if !delay.is_finite() || delay < 0.0 {
            return Err(DistError::InvalidDelay { value: delay });
        }
        Ok(DefectiveDeterministic { mass, delay })
    }

    /// The fixed delay.
    pub fn delay(&self) -> f64 {
        self.delay
    }
}

impl ReplyTimeDistribution for DefectiveDeterministic {
    fn mass(&self) -> f64 {
        self.mass
    }

    fn fingerprint(&self) -> u64 {
        crate::Fingerprint::new("deterministic")
            .with_f64(self.mass)
            .with_f64(self.delay)
            .finish()
    }

    fn cdf(&self, t: f64) -> f64 {
        if t >= self.delay {
            self.mass
        } else {
            0.0
        }
    }

    fn survival(&self, t: f64) -> f64 {
        if t >= self.delay {
            1.0 - self.mass
        } else {
            1.0
        }
    }

    fn survival_batch(&self, ts: &mut [f64]) {
        // `1 − mass` is the only arithmetic; hoisting it is trivially
        // bit-identical to the scalar branch.
        let delay = self.delay;
        let survived = 1.0 - self.mass;
        for t in ts {
            *t = if *t >= delay { survived } else { 1.0 };
        }
    }

    fn survival_batch_with(
        &self,
        backend: zeroconf_simd::Backend,
        ts: &mut [f64],
    ) -> zeroconf_simd::Backend {
        // The lane kernel's `select_ge` mirrors the `>=` branch (NaN picks
        // the 1.0 arm), so every backend is bit-identical.
        zeroconf_simd::survival_deterministic(backend, self.delay, 1.0 - self.mass, ts)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> Option<f64> {
        let u: f64 = zeroconf_rng::Rng::gen(rng);
        if u < self.mass {
            Some(self.delay)
        } else {
            None
        }
    }

    fn mean_given_reply(&self) -> Option<f64> {
        Some(self.delay)
    }

    fn quantile_given_reply(&self, p: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return None;
        }
        Some(self.delay)
    }
}

#[cfg(test)]
mod tests {
    use zeroconf_rng::rngs::StdRng;
    use zeroconf_rng::SeedableRng;

    use super::*;

    #[test]
    fn construction_validates() {
        assert!(DefectiveDeterministic::new(2.0, 1.0).is_err());
        assert!(DefectiveDeterministic::new(0.5, -1.0).is_err());
        assert!(DefectiveDeterministic::new(0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn cdf_is_a_step_at_the_delay() {
        let d = DefectiveDeterministic::new(0.6, 2.0).unwrap();
        assert_eq!(d.cdf(1.999), 0.0);
        assert_eq!(d.cdf(2.0), 0.6);
        assert_eq!(d.cdf(100.0), 0.6);
    }

    #[test]
    fn survival_complements_cdf() {
        let d = DefectiveDeterministic::new(0.6, 2.0).unwrap();
        for t in [0.0, 1.0, 2.0, 3.0] {
            assert_eq!(d.survival(t), 1.0 - d.cdf(t));
        }
    }

    #[test]
    fn samples_are_the_delay_or_lost() {
        let d = DefectiveDeterministic::new(0.5, 1.25).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut lost = 0;
        for _ in 0..10_000 {
            match d.sample(&mut rng) {
                Some(t) => assert_eq!(t, 1.25),
                None => lost += 1,
            }
        }
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.02);
    }

    #[test]
    fn all_quantiles_are_the_fixed_delay() {
        let d = DefectiveDeterministic::new(0.5, 1.25).unwrap();
        assert_eq!(d.quantile_given_reply(0.1), Some(1.25));
        assert_eq!(d.quantile_given_reply(0.99), Some(1.25));
        assert_eq!(d.quantile_given_reply(f64::NAN), None);
    }

    #[test]
    fn zero_mass_always_loses() {
        let d = DefectiveDeterministic::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), None);
        }
        assert_eq!(d.cdf(5.0), 0.0);
        assert_eq!(d.survival(5.0), 1.0);
    }
}
