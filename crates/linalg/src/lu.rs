//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix};

/// Pivot magnitude below which a matrix is treated as numerically singular.
const SINGULARITY_THRESHOLD: f64 = 1e-300;

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// The factorization is computed once and can then solve any number of
/// right-hand sides, compute the determinant, or build the explicit inverse.
/// This is the direct solver behind the absorbing-chain analyses: the
/// systems `(I − P′)a = w` (mean total cost, Eq. 2/3 of the paper) and
/// `(I − P′)x = e` (absorption probabilities, Section 5) are both solved
/// through it.
///
/// # Examples
///
/// ```
/// use zeroconf_linalg::{LuDecomposition, Matrix};
///
/// # fn main() -> Result<(), zeroconf_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuDecomposition::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// // Verify A x = b.
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 3.0).abs() < 1e-12 && (b[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: `U` on and above the diagonal, the unit-diagonal
    /// `L` strictly below it.
    factors: Matrix,
    /// Row permutation applied to the input (`perm[i]` is the original row
    /// now at position `i`).
    perm: Vec<usize>,
    /// Parity of the permutation, `+1.0` or `-1.0`; used by `determinant`.
    sign: f64,
}

impl LuDecomposition {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is rectangular.
    /// - [`LinalgError::Empty`] if `a` has no rows.
    /// - [`LinalgError::NonFiniteEntry`] if `a` contains NaN or infinities.
    /// - [`LinalgError::Singular`] if elimination encounters a vanishing
    ///   pivot.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        for r in 0..n {
            for (c, &v) in a.row(r).iter().enumerate() {
                if !v.is_finite() {
                    return Err(LinalgError::NonFiniteEntry { row: r, col: c });
                }
            }
        }

        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to the
            // diagonal.
            let mut pivot_row = k;
            let mut pivot_mag = f[(k, k)].abs();
            for r in (k + 1)..n {
                let mag = f[(r, k)].abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < SINGULARITY_THRESHOLD {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = f[(k, c)];
                    f[(k, c)] = f[(pivot_row, c)];
                    f[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = f[(k, k)];
            for r in (k + 1)..n {
                let m = f[(r, k)] / pivot;
                f[(r, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for c in (k + 1)..n {
                    f[(r, c)] -= m * f[(k, c)];
                }
            }
        }

        Ok(LuDecomposition {
            factors: f,
            perm,
            sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().take(r) {
                acc -= self.factors[(r, c)] * xc;
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, &xc) in x.iter().enumerate().skip(r + 1) {
                acc -= self.factors[(r, c)] * xc;
            }
            x[r] = acc / self.factors[(r, r)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `B` has a different
    /// row count than the factored matrix.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu_solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, v) in x.into_iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        Ok(out)
    }

    /// Solves the transposed system `Aᵀ x = b` using the same factors:
    /// with `P·A = L·U` we have `Aᵀ = Uᵀ·Lᵀ·P`, so forward-substitute
    /// through `Uᵀ`, back-substitute through `Lᵀ` (unit diagonal), and
    /// undo the permutation.
    ///
    /// Used by the fundamental-matrix queries of absorbing-chain analysis,
    /// where one transposed solve yields the expected visit counts to
    /// *all* states from one start state.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs
    /// from the factored dimension.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu_solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution with Uᵀ (lower triangular, real diagonal).
        let mut y = b.to_vec();
        for r in 0..n {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().take(r) {
                acc -= self.factors[(c, r)] * yc;
            }
            y[r] = acc / self.factors[(r, r)];
        }
        // Back substitution with Lᵀ (upper triangular, unit diagonal).
        for r in (0..n).rev() {
            let mut acc = y[r];
            for (c, &yc) in y.iter().enumerate().skip(r + 1) {
                acc -= self.factors[(c, r)] * yc;
            }
            y[r] = acc;
        }
        // x = Pᵀ y: entry that row i of PA took came from original row
        // perm[i], so x[perm[i]] = y[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.sign;
        for k in 0..n {
            det *= self.factors[(k, k)];
        }
        det
    }

    /// Explicit inverse of the factored matrix.
    ///
    /// Prefer [`LuDecomposition::solve`] when only a few right-hand sides
    /// are needed; the inverse is provided because the paper writes the
    /// solutions as `−(P′ − I)⁻¹ w` and `(I − P′)⁻¹ e`.
    ///
    /// # Errors
    ///
    /// Propagates any [`LinalgError`] from the internal solves (not expected
    /// once factorization succeeded).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter()
            .zip(b)
            .fold(0.0f64, |acc, (l, r)| acc.max((l - r).abs()))
    }

    #[test]
    fn solves_simple_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[2.0, 3.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let b = [9.0, 13.0];
        let x = lu.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_rectangular_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_entries() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NonFiniteEntry { row: 0, col: 1 })
        ));
    }

    #[test]
    fn determinant_of_known_matrix() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutations() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]).unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10).unwrap());
    }

    #[test]
    fn solve_matrix_solves_multiple_rhs() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[2.0, 4.0], &[4.0, 8.0]]).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve_matrix(&b).unwrap();
        assert!(x
            .approx_eq(
                &Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]]).unwrap(),
                1e-12
            )
            .unwrap());
    }

    #[test]
    fn solve_checks_rhs_length() {
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn one_by_one_system() {
        let a = Matrix::from_rows(&[&[5.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert_eq!(lu.solve(&[10.0]).unwrap(), vec![2.0]);
        assert_eq!(lu.determinant(), 5.0);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 1.0, 0.5], &[1.0, 0.0, 4.0]]).unwrap();
        let b = [1.0, -2.0, 3.0];
        let via_factors = LuDecomposition::new(&a)
            .unwrap()
            .solve_transposed(&b)
            .unwrap();
        let via_transpose = LuDecomposition::new(&a.transpose())
            .unwrap()
            .solve(&b)
            .unwrap();
        for (l, r) in via_factors.iter().zip(&via_transpose) {
            assert!(
                (l - r).abs() < 1e-12,
                "{via_factors:?} vs {via_transpose:?}"
            );
        }
        // And the residual of the transposed system is tiny.
        let atx = a.transpose().matvec(&via_factors).unwrap();
        for (l, r) in atx.iter().zip(&b) {
            assert!((l - r).abs() < 1e-12);
        }
    }

    #[test]
    fn transposed_solve_checks_rhs_length() {
        let lu = LuDecomposition::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn solves_moderately_large_diagonally_dominant_system() {
        // Deterministic pseudo-random but diagonally dominant matrix: the
        // kind of well-conditioned system the chain analyses produce.
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        let mut seed = 0x12345678u64;
        let mut next = move || {
            // xorshift64
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        for r in 0..n {
            let mut off_sum = 0.0;
            for c in 0..n {
                if r != c {
                    let v = next();
                    a[(r, c)] = v;
                    off_sum += v.abs();
                }
            }
            a[(r, r)] = off_sum + 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / n as f64).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let err = x
            .iter()
            .zip(&x_true)
            .fold(0.0f64, |acc, (l, r)| acc.max((l - r).abs()));
        assert!(err < 1e-9, "error {err}");
    }
}
