//! Dense row-major matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` entries.
///
/// This type deliberately keeps a small API surface: exactly what the
/// absorbing-chain analyses in `zeroconf-dtmc` need (construction, element
/// access, products, sums, transposition and a few norms). Shapes are
/// validated at construction and on every binary operation.
///
/// # Examples
///
/// ```
/// use zeroconf_linalg::Matrix;
///
/// # fn main() -> Result<(), zeroconf_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let c = a.matmul(&b)?;
/// assert_eq!(c, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::Empty`] if `rows` is empty or the first row is empty.
    /// - [`LinalgError::RaggedRows`] if rows differ in length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::RaggedRows {
                    expected: cols,
                    row: i,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::Empty`] if either dimension is zero.
    /// - [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "from_vec",
                left: (rows, cols),
                right: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Bounds-checked element access.
    pub fn get(&self, row: usize, col: usize) -> Result<f64, LinalgError> {
        self.check_index(row, col)?;
        Ok(self.data[row * self.cols + col])
    }

    /// Bounds-checked element assignment.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] for indices outside the
    /// matrix shape.
    pub fn set(&mut self, row: usize, col: usize, value: f64) -> Result<(), LinalgError> {
        self.check_index(row, col)?;
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// A view of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds for {}", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(row < self.rows, "row {row} out of bounds for {}", self.rows);
        let cols = self.cols;
        &mut self.data[row * cols..(row + 1) * cols]
    }

    /// Copy of column `col` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "col {col} out of bounds for {}", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + col])
            .collect()
    }

    /// The underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (d, &b) in dst.iter_mut().zip(orow) {
                    *d += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when
    /// `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "matvec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Componentwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Componentwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| alpha * v).collect(),
        }
    }

    /// Frobenius norm (`sqrt` of the sum of squared entries).
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// True when all corresponding entries differ by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for differing shapes.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> Result<bool, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation: "approx_eq",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= tol))
    }

    /// Extracts the sub-matrix spanned by the given row and column indices.
    ///
    /// This is how the analyses carve the transient block `P′` and the
    /// absorption columns out of a full transition matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] if any index is outside the
    /// matrix, and [`LinalgError::Empty`] if either index set is empty.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Result<Matrix, LinalgError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(LinalgError::Empty);
        }
        for &r in rows {
            for &c in cols {
                self.check_index(r, c)?;
            }
        }
        let mut out = Matrix::zeros(rows.len(), cols.len());
        for (i, &r) in rows.iter().enumerate() {
            for (j, &c) in cols.iter().enumerate() {
                out.data[i * cols.len() + j] = self.data[r * self.cols + c];
            }
        }
        Ok(out)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        operation: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                operation,
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    fn check_index(&self, row: usize, col: usize) -> Result<(), LinalgError> {
        if row >= self.rows || col >= self.cols {
            Err(LinalgError::IndexOutOfBounds {
                index: (row, col),
                shape: self.shape(),
            })
        } else {
            Ok(())
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6e}", self.data[r * self.cols + c])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_has_requested_shape_and_zero_entries() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_rejects_empty_input() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_and_set_round_trip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 7.5).unwrap();
        assert_eq!(m.get(1, 0).unwrap(), 7.5);
        assert!(m.get(2, 0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn index_operator_reads_and_writes() {
        let mut m = sample();
        m[(0, 1)] = 9.0;
        assert_eq!(m[(0, 1)], 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_operator_panics_out_of_bounds() {
        let m = sample();
        let _ = m[(5, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(0, 1)], m[(1, 0)]);
    }

    #[test]
    fn matmul_with_identity_is_identity_map() {
        let m = sample();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]).unwrap());
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matvec_known_product() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = sample();
        let b = Matrix::identity(2);
        let s = a.add(&b).unwrap();
        assert_eq!(s.sub(&b).unwrap(), a);
    }

    #[test]
    fn scaled_multiplies_every_entry() {
        let m = sample().scaled(2.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn norms_match_hand_computation() {
        let m = sample();
        assert!((m.norm_frobenius() - 30.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.norm_inf(), 7.0);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let s = m.submatrix(&[0, 2], &[1, 2]).unwrap();
        assert_eq!(s, Matrix::from_rows(&[&[2.0, 3.0], &[8.0, 9.0]]).unwrap());
        assert!(m.submatrix(&[3], &[0]).is_err());
        assert!(m.submatrix(&[], &[0]).is_err());
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = sample();
        let mut b = sample();
        b[(0, 0)] += 1e-12;
        assert!(a.approx_eq(&b, 1e-10).unwrap());
        assert!(!a.approx_eq(&b, 1e-13).unwrap());
    }

    #[test]
    fn display_renders_all_rows() {
        let text = format!("{}", sample());
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('['));
    }

    #[test]
    fn col_extracts_column() {
        assert_eq!(sample().col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = sample();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }
}
