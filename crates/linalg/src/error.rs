use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// An operation required a square matrix but the input was rectangular.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// A matrix or vector with zero rows or columns was supplied.
    Empty,
    /// Rows of a `from_rows`-style constructor had differing lengths.
    RaggedRows {
        /// Length of the first row.
        expected: usize,
        /// Index of the first row with a different length.
        row: usize,
        /// Length of that row.
        found: usize,
    },
    /// The matrix is singular (or numerically singular) at the given pivot.
    Singular {
        /// Pivot column at which elimination broke down.
        pivot: usize,
    },
    /// An iterative method failed to reach its tolerance.
    NotConverged {
        /// Iterations actually performed.
        iterations: usize,
        /// Residual norm when the iteration stopped.
        residual: f64,
    },
    /// A non-finite (NaN or infinite) entry was encountered.
    NonFiniteEntry {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The offending index as `(row, col)`.
        index: (usize, usize),
        /// The matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix of shape {}x{} is not square", shape.0, shape.1)
            }
            LinalgError::Empty => write!(f, "empty matrix or vector"),
            LinalgError::RaggedRows {
                expected,
                row,
                found,
            } => write!(
                f,
                "ragged rows: row {row} has length {found}, expected {expected}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:e})"
            ),
            LinalgError::NonFiniteEntry { row, col } => {
                write!(f, "non-finite entry at ({row}, {col})")
            }
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let err = LinalgError::DimensionMismatch {
            operation: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_singular_names_pivot() {
        let err = LinalgError::Singular { pivot: 3 };
        assert!(err.to_string().contains("pivot column 3"));
    }

    #[test]
    fn display_not_converged_mentions_residual() {
        let err = LinalgError::NotConverged {
            iterations: 100,
            residual: 0.5,
        };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("5e-1") || msg.contains("0.5") || msg.contains("5E-1"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn Error> = Box::new(LinalgError::Empty);
        assert_eq!(err.to_string(), "empty matrix or vector");
    }
}
