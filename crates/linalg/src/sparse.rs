//! Compressed sparse row (CSR) matrices.
//!
//! Transition matrices of the zeroconf DRM family are extremely sparse (each
//! state has at most two successors), so the iterative solvers operate on
//! CSR storage. Dense [`Matrix`](crate::Matrix) remains the representation
//! of choice for direct factorization.

use crate::{LinalgError, Matrix};

/// A single `(row, col, value)` entry used to assemble a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// A sparse matrix in compressed sparse row format.
///
/// # Examples
///
/// ```
/// use zeroconf_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), zeroconf_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 1, 2.0), Triplet::new(1, 0, 3.0)],
/// )?;
/// assert_eq!(m.matvec(&[1.0, 1.0])?, vec![2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Index into `col_indices`/`values` where each row starts; length
    /// `rows + 1`.
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from (possibly unsorted, possibly duplicated)
    /// triplets. Duplicate `(row, col)` entries are summed; explicit zeros
    /// are dropped.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::Empty`] if either dimension is zero.
    /// - [`LinalgError::IndexOutOfBounds`] if a triplet lies outside the
    ///   requested shape.
    /// - [`LinalgError::NonFiniteEntry`] if a value is NaN or infinite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        for t in triplets {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::IndexOutOfBounds {
                    index: (t.row, t.col),
                    shape: (rows, cols),
                });
            }
            if !t.value.is_finite() {
                return Err(LinalgError::NonFiniteEntry {
                    row: t.row,
                    col: t.col,
                });
            }
        }
        let mut sorted: Vec<Triplet> = triplets.to_vec();
        sorted.sort_by_key(|t| (t.row, t.col));

        // Merge duplicates, then drop entries that are (or cancelled to) zero.
        let mut kept: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for t in sorted {
            if let Some(last) = kept.last_mut() {
                if last.0 == t.row && last.1 == t.col {
                    last.2 += t.value;
                    continue;
                }
            }
            kept.push((t.row, t.col, t.value));
        }
        kept.retain(|&(_, _, v)| v != 0.0);

        let mut counts = vec![0usize; rows];
        for &(r, _, _) in &kept {
            counts[r] += 1;
        }
        let mut offsets = vec![0usize; rows + 1];
        for r in 0..rows {
            offsets[r + 1] = offsets[r] + counts[r];
        }
        let col_indices: Vec<usize> = kept.iter().map(|&(_, c, _)| c).collect();
        let values: Vec<f64> = kept.iter().map(|&(_, _, v)| v).collect();

        Ok(CsrMatrix {
            rows,
            cols,
            row_offsets: offsets,
            col_indices,
            values,
        })
    }

    /// Converts a dense matrix, dropping zero entries.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for r in 0..m.rows() {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    triplets.push(Triplet::new(r, c, v));
                }
            }
        }
        // Shape is non-empty because Matrix cannot be empty; values are the
        // matrix's own entries. `expect` documents that invariant.
        CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
            .expect("dense matrix always yields valid triplets")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row {row} out of bounds for {}", self.rows);
        let start = self.row_offsets[row];
        let end = self.row_offsets[row + 1];
        self.col_indices[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c, v))
    }

    /// Value at `(row, col)`, zero when the entry is not stored.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] outside the matrix shape.
    pub fn get(&self, row: usize, col: usize) -> Result<f64, LinalgError> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.rows, self.cols),
            });
        }
        Ok(self
            .row_entries(row)
            .find(|&(c, _)| c == col)
            .map_or(0.0, |(_, v)| v))
    }

    /// Sparse matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr_matvec",
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row_entries(r).map(|(c, v)| v * x[c]).sum())
            .collect())
    }

    /// Transposed-matrix–vector product `Aᵀ x` without materializing `Aᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "csr_matvec_transposed",
                left: (self.cols, self.rows),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row_entries(r) {
                out[c] += v * xr;
            }
        }
        Ok(out)
    }

    /// Densifies the matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                m[(r, c)] = v;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 2, 2.0),
                Triplet::new(2, 1, 3.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn nnz_counts_stored_entries() {
        assert_eq!(sample().nnz(), 3);
    }

    #[test]
    fn get_returns_stored_and_implicit_zero() {
        let m = sample();
        assert_eq!(m.get(0, 2).unwrap(), 2.0);
        assert_eq!(m.get(1, 1).unwrap(), 0.0);
        assert!(m.get(3, 0).is_err());
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 1.5), Triplet::new(0, 0, 2.5)])
            .unwrap();
        assert_eq!(m.get(0, 0).unwrap(), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, 0.0)]).unwrap();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let m =
            CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 2.0), Triplet::new(0, 0, -2.0)])
                .unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0).unwrap(), 0.0);
    }

    #[test]
    fn rejects_out_of_bounds_triplets() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[Triplet::new(2, 0, 1.0)]),
            Err(LinalgError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_non_finite_values() {
        assert!(matches!(
            CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, f64::NAN)]),
            Err(LinalgError::NonFiniteEntry { .. })
        ));
    }

    #[test]
    fn rejects_empty_shape() {
        assert_eq!(
            CsrMatrix::from_triplets(0, 3, &[]).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let dense = m.to_dense();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x).unwrap(), dense.matvec(&x).unwrap());
    }

    #[test]
    fn matvec_transposed_matches_dense_transpose() {
        let m = sample();
        let dense_t = m.to_dense().transpose();
        let x = [1.0, -1.0, 0.5];
        let got = m.matvec_transposed(&x).unwrap();
        let want = dense_t.matvec(&x).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-15);
        }
    }

    #[test]
    fn matvec_checks_dimension() {
        assert!(sample().matvec(&[1.0]).is_err());
        assert!(sample().matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn from_dense_round_trip() {
        let dense = Matrix::from_rows(&[&[0.0, 5.0], &[7.0, 0.0]]).unwrap();
        let sparse = CsrMatrix::from_dense(&dense);
        assert_eq!(sparse.nnz(), 2);
        assert_eq!(sparse.to_dense(), dense);
    }

    #[test]
    fn row_entries_are_sorted_by_column() {
        let m = CsrMatrix::from_triplets(
            1,
            4,
            &[
                Triplet::new(0, 3, 1.0),
                Triplet::new(0, 1, 2.0),
                Triplet::new(0, 2, 3.0),
            ],
        )
        .unwrap();
        let cols: Vec<usize> = m.row_entries(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 2, 3]);
    }

    #[test]
    fn unsorted_triplets_assemble_correctly() {
        let m = CsrMatrix::from_triplets(2, 2, &[Triplet::new(1, 1, 4.0), Triplet::new(0, 0, 1.0)])
            .unwrap();
        assert_eq!(m.get(0, 0).unwrap(), 1.0);
        assert_eq!(m.get(1, 1).unwrap(), 4.0);
    }
}
