//! Small vector helpers over `&[f64]` slices.
//!
//! The chain analyses in `zeroconf-dtmc` work with plain `Vec<f64>` state
//! vectors; these free functions provide the handful of BLAS-level-1
//! operations they need without introducing a vector newtype.

use crate::LinalgError;

/// Dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices differ in length.
///
/// ```
/// let d = zeroconf_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap();
/// assert_eq!(d, 11.0);
/// ```
pub fn dot(x: &[f64], y: &[f64]) -> Result<f64, LinalgError> {
    check_same_len("dot", x, y)?;
    Ok(x.iter().zip(y).map(|(a, b)| a * b).sum())
}

/// In-place `y += alpha * x` (the BLAS `axpy` operation).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
    check_same_len("axpy", x, y)?;
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Scales every element of `x` in place by `alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Sum of absolute values (the `l1` norm).
pub fn norm_l1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Euclidean (`l2`) norm.
pub fn norm_l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Maximum absolute value (the `l∞` norm). Returns 0 for an empty slice.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Largest absolute componentwise difference between two slices.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices differ in length.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> Result<f64, LinalgError> {
    check_same_len("max_abs_diff", x, y)?;
    Ok(x.iter()
        .zip(y)
        .fold(0.0, |acc, (a, b)| acc.max((a - b).abs())))
}

/// Componentwise sum `x + y` as a new vector.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices differ in length.
pub fn add(x: &[f64], y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check_same_len("add", x, y)?;
    Ok(x.iter().zip(y).map(|(a, b)| a + b).collect())
}

/// Componentwise difference `x − y` as a new vector.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if the slices differ in length.
pub fn sub(x: &[f64], y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    check_same_len("sub", x, y)?;
    Ok(x.iter().zip(y).map(|(a, b)| a - b).collect())
}

/// True when all entries are finite (neither NaN nor infinite).
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

fn check_same_len(operation: &'static str, x: &[f64], y: &[f64]) -> Result<(), LinalgError> {
    if x.len() == y.len() {
        Ok(())
    } else {
        Err(LinalgError::DimensionMismatch {
            operation,
            left: (1, x.len()),
            right: (1, y.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]).unwrap(), 0.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        assert!(matches!(
            dot(&[1.0], &[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norms_of_standard_vector() {
        let x = [3.0, -4.0];
        assert_eq!(norm_l1(&x), 7.0);
        assert_eq!(norm_l2(&x), 5.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn norm_inf_of_empty_is_zero() {
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        let d = max_abs_diff(&[1.0, 2.0, 3.0], &[1.0, 5.0, 3.5]).unwrap();
        assert_eq!(d, 3.0);
    }

    #[test]
    fn add_and_sub_are_inverse() {
        let x = [1.0, 2.0];
        let y = [0.5, -0.5];
        let s = add(&x, &y).unwrap();
        let back = sub(&s, &y).unwrap();
        assert_eq!(back, x.to_vec());
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[0.0, 1.0]));
        assert!(!all_finite(&[f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
