//! Classical iterative methods: Jacobi, Gauss–Seidel and power iteration.
//!
//! These are the textbook alternatives (Stewart, *Numerical Solution of
//! Markov Chains*) to direct LU factorization for the linear systems that
//! arise in absorbing-chain analysis. For the tiny zeroconf DRMs LU is
//! always fine; the iterative solvers exist so the ablation benchmarks can
//! compare the approaches on larger synthetic chains.

use crate::{CsrMatrix, LinalgError, Matrix};

/// Stopping criteria shared by the iterative methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationConfig {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence tolerance on the `l∞` residual (or iterate difference for
    /// the power method).
    pub tolerance: f64,
}

impl Default for IterationConfig {
    fn default() -> Self {
        IterationConfig {
            max_iterations: 10_000,
            tolerance: 1e-12,
        }
    }
}

/// Result of a converged iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// The computed solution (or eigenvector for the power method).
    pub solution: Vec<f64>,
    /// Sweeps actually performed.
    pub iterations: usize,
    /// Final residual (`l∞` norm).
    pub residual: f64,
}

/// Solves `A x = b` by Jacobi iteration on a dense matrix.
///
/// Converges for strictly diagonally dominant systems, which covers the
/// `(I − P′)` systems of absorbing chains whenever every transient state has
/// positive one-step absorption probability mass.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on shape
///   violations.
/// - [`LinalgError::Singular`] if a diagonal entry vanishes.
/// - [`LinalgError::NotConverged`] if the tolerance is not met in time.
pub fn jacobi(
    a: &Matrix,
    b: &[f64],
    config: IterationConfig,
) -> Result<IterationOutcome, LinalgError> {
    check_system(a, b)?;
    let n = b.len();
    for k in 0..n {
        if a[(k, k)] == 0.0 {
            return Err(LinalgError::Singular { pivot: k });
        }
    }
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    for iter in 1..=config.max_iterations {
        for r in 0..n {
            let mut acc = b[r];
            for (c, &v) in a.row(r).iter().enumerate() {
                if c != r {
                    acc -= v * x[c];
                }
            }
            next[r] = acc / a[(r, r)];
        }
        std::mem::swap(&mut x, &mut next);
        let res = residual_inf(a, &x, b)?;
        if res <= config.tolerance {
            return Ok(IterationOutcome {
                solution: x,
                iterations: iter,
                residual: res,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: config.max_iterations,
        residual: residual_inf(a, &x, b)?,
    })
}

/// Solves `A x = b` by Gauss–Seidel iteration on a dense matrix.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel(
    a: &Matrix,
    b: &[f64],
    config: IterationConfig,
) -> Result<IterationOutcome, LinalgError> {
    check_system(a, b)?;
    let n = b.len();
    for k in 0..n {
        if a[(k, k)] == 0.0 {
            return Err(LinalgError::Singular { pivot: k });
        }
    }
    let mut x = vec![0.0; n];
    for iter in 1..=config.max_iterations {
        for r in 0..n {
            let mut acc = b[r];
            for (c, &v) in a.row(r).iter().enumerate() {
                if c != r {
                    acc -= v * x[c];
                }
            }
            x[r] = acc / a[(r, r)];
        }
        let res = residual_inf(a, &x, b)?;
        if res <= config.tolerance {
            return Ok(IterationOutcome {
                solution: x,
                iterations: iter,
                residual: res,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: config.max_iterations,
        residual: residual_inf(a, &x, b)?,
    })
}

/// Gauss–Seidel on a sparse CSR system.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel_csr(
    a: &CsrMatrix,
    b: &[f64],
    config: IterationConfig,
) -> Result<IterationOutcome, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            shape: (a.rows(), a.cols()),
        });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            operation: "gauss_seidel_csr",
            left: (a.rows(), a.cols()),
            right: (b.len(), 1),
        });
    }
    let n = b.len();
    let mut diag = vec![0.0; n];
    for (r, d) in diag.iter_mut().enumerate() {
        *d = a.get(r, r)?;
        if *d == 0.0 {
            return Err(LinalgError::Singular { pivot: r });
        }
    }
    let mut x = vec![0.0; n];
    for iter in 1..=config.max_iterations {
        for r in 0..n {
            let mut acc = b[r];
            for (c, v) in a.row_entries(r) {
                if c != r {
                    acc -= v * x[c];
                }
            }
            x[r] = acc / diag[r];
        }
        let ax = a.matvec(&x)?;
        let res = ax
            .iter()
            .zip(b)
            .fold(0.0f64, |m, (l, r)| m.max((l - r).abs()));
        if res <= config.tolerance {
            return Ok(IterationOutcome {
                solution: x,
                iterations: iter,
                residual: res,
            });
        }
    }
    let ax = a.matvec(&x)?;
    Err(LinalgError::NotConverged {
        iterations: config.max_iterations,
        residual: ax
            .iter()
            .zip(b)
            .fold(0.0f64, |m, (l, r)| m.max((l - r).abs())),
    })
}

/// Power iteration for the dominant eigenpair of a dense matrix.
///
/// Returns the eigenvalue estimate together with the (l2-normalized)
/// eigenvector in [`IterationOutcome::solution`]; the eigenvalue is the
/// Rayleigh quotient at the final iterate and is returned separately.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] on rectangular input.
/// - [`LinalgError::NotConverged`] if iterates keep moving.
pub fn power_iteration(
    a: &Matrix,
    config: IterationConfig,
) -> Result<(f64, IterationOutcome), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut eigenvalue = 0.0;
    for iter in 1..=config.max_iterations {
        let mut y = a.matvec(&x)?;
        let norm = crate::vector::norm_l2(&y);
        if norm == 0.0 {
            // A maps the iterate to zero: eigenvalue 0 with the current
            // vector is exact.
            return Ok((
                0.0,
                IterationOutcome {
                    solution: x,
                    iterations: iter,
                    residual: 0.0,
                },
            ));
        }
        crate::vector::scale(1.0 / norm, &mut y);
        // Fix an orientation so convergence can be detected for negative
        // eigenvalues too.
        if let Some(first_nonzero) = y.iter().find(|v| v.abs() > 0.0) {
            if *first_nonzero < 0.0 {
                crate::vector::scale(-1.0, &mut y);
            }
        }
        let diff = crate::vector::max_abs_diff(&x, &y)?;
        x = y;
        let ax = a.matvec(&x)?;
        eigenvalue = crate::vector::dot(&x, &ax)?;
        if diff <= config.tolerance {
            let mut residual_vec = ax;
            crate::vector::axpy(-eigenvalue, &x, &mut residual_vec)?;
            return Ok((
                eigenvalue,
                IterationOutcome {
                    solution: x,
                    iterations: iter,
                    residual: crate::vector::norm_inf(&residual_vec),
                },
            ));
        }
    }
    Err(LinalgError::NotConverged {
        iterations: config.max_iterations,
        residual: eigenvalue,
    })
}

fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64, LinalgError> {
    let ax = a.matvec(x)?;
    Ok(ax
        .iter()
        .zip(b)
        .fold(0.0f64, |m, (l, r)| m.max((l - r).abs())))
}

fn check_system(a: &Matrix, b: &[f64]) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            operation: "iterative_solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn dominant_system() -> (Matrix, Vec<f64>, Vec<f64>) {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 5.0, 2.0], &[0.0, 2.0, 6.0]]).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        (a, b, x_true)
    }

    #[test]
    fn jacobi_converges_on_dominant_system() {
        let (a, b, x_true) = dominant_system();
        let out = jacobi(&a, &b, IterationConfig::default()).unwrap();
        for (g, w) in out.solution.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-9);
        }
        assert!(out.iterations > 0);
        assert!(out.residual <= 1e-12);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b, _) = dominant_system();
        let j = jacobi(&a, &b, IterationConfig::default()).unwrap();
        let gs = gauss_seidel(&a, &b, IterationConfig::default()).unwrap();
        assert!(gs.iterations <= j.iterations);
    }

    #[test]
    fn gauss_seidel_csr_matches_dense() {
        let (a, b, _) = dominant_system();
        let sparse = CsrMatrix::from_dense(&a);
        let dense = gauss_seidel(&a, &b, IterationConfig::default()).unwrap();
        let csr = gauss_seidel_csr(&sparse, &b, IterationConfig::default()).unwrap();
        for (l, r) in dense.solution.iter().zip(&csr.solution) {
            assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_reports_non_convergence() {
        // Not diagonally dominant; Jacobi diverges.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        let out = jacobi(
            &a,
            &[1.0, 1.0],
            IterationConfig {
                max_iterations: 50,
                tolerance: 1e-12,
            },
        );
        assert!(matches!(out, Err(LinalgError::NotConverged { .. })));
    }

    #[test]
    fn zero_diagonal_is_singular() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            jacobi(&a, &[1.0, 1.0], IterationConfig::default()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], IterationConfig::default()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn shape_violations_are_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(jacobi(&a, &[1.0, 1.0], IterationConfig::default()).is_err());
        let sq = Matrix::identity(2);
        assert!(gauss_seidel(&sq, &[1.0], IterationConfig::default()).is_err());
        let csr = CsrMatrix::from_triplets(2, 2, &[Triplet::new(0, 0, 1.0)]).unwrap();
        assert!(gauss_seidel_csr(&csr, &[1.0], IterationConfig::default()).is_err());
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 0.5]]).unwrap();
        let (lambda, out) = power_iteration(&a, IterationConfig::default()).unwrap();
        assert!((lambda - 2.0).abs() < 1e-9);
        // Eigenvector should align with e1.
        assert!(out.solution[0].abs() > 0.999);
        assert!(out.solution[1].abs() < 1e-6);
    }

    #[test]
    fn power_iteration_on_stochastic_matrix_gives_unit_eigenvalue() {
        // Column-stochastic matrix: dominant eigenvalue 1.
        let a = Matrix::from_rows(&[&[0.9, 0.2], &[0.1, 0.8]]).unwrap();
        let (lambda, _) = power_iteration(&a, IterationConfig::default()).unwrap();
        assert!((lambda - 1.0).abs() < 1e-8, "lambda = {lambda}");
    }

    #[test]
    fn power_iteration_rejects_rectangular() {
        assert!(power_iteration(&Matrix::zeros(2, 3), IterationConfig::default()).is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let c = IterationConfig::default();
        assert!(c.max_iterations >= 1000);
        assert!(c.tolerance > 0.0 && c.tolerance < 1e-6);
    }
}
