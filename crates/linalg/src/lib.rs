//! Dense and sparse linear algebra for absorbing Markov-chain analysis.
//!
//! The DSN 2003 zeroconf cost paper reduces both its measures of interest —
//! the mean total cost (Eq. 3) and the collision probability (Eq. 4) — to
//! linear systems over the transient part of an absorbing discrete-time
//! Markov chain, citing Stewart's *Introduction to the Numerical Solution of
//! Markov Chains*. This crate provides the numerical substrate for that
//! reduction:
//!
//! - [`Matrix`]: dense row-major matrices with the usual algebra,
//! - [`LuDecomposition`]: LU factorization with partial pivoting, used to
//!   solve `(I − P′)x = b` systems exactly (up to floating point),
//! - [`CsrMatrix`]: compressed sparse row storage for large, sparse chains,
//! - [`iterative`]: Jacobi, Gauss–Seidel and power iteration as alternatives
//!   to direct factorization (these are the classical Stewart methods),
//! - [`vector`]: small helpers over `&[f64]` slices.
//!
//! # Examples
//!
//! Solve a linear system with LU:
//!
//! ```
//! use zeroconf_linalg::{Matrix, LuDecomposition};
//!
//! # fn main() -> Result<(), zeroconf_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod error;
pub mod iterative;
mod lu;
mod matrix;
mod sparse;
pub mod vector;

pub use error::LinalgError;
pub use iterative::{IterationConfig, IterationOutcome};
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use sparse::{CsrMatrix, Triplet};

/// Default absolute tolerance used by the approximate comparisons in this
/// crate's tests and by convergence checks that do not specify their own.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;
