// Property tests built on the external `proptest` crate, which is not
// resolvable in the hermetic (offline) build. Compile them in with
//     RUSTFLAGS="--cfg zeroconf_proptest" cargo test
// after adding `proptest` to this package's dev-dependencies.
#![cfg(zeroconf_proptest)]
//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use zeroconf_linalg::{
    iterative::{self, IterationConfig},
    CsrMatrix, LuDecomposition, Matrix, Triplet,
};

/// Strategy: an `n × n` strictly diagonally dominant matrix with entries in
/// `[-1, 1]` off the diagonal. These are always nonsingular and keep both LU
/// and the iterative solvers well behaved, mirroring the `(I − P′)` systems
/// the Markov analyses produce.
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for r in 0..n {
            let mut off = 0.0;
            for c in 0..n {
                if r != c {
                    let v = vals[r * n + c];
                    m[(r, c)] = v;
                    off += v.abs();
                }
            }
            m[(r, r)] = off + 1.0 + vals[r * n + r].abs();
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #[test]
    fn lu_solve_has_small_residual(a in dominant_matrix(6), b in vector(6)) {
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_inverse_is_two_sided(a in dominant_matrix(5)) {
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let left = inv.matmul(&a).unwrap();
        let right = a.matmul(&inv).unwrap();
        let id = Matrix::identity(5);
        prop_assert!(left.approx_eq(&id, 1e-8).unwrap());
        prop_assert!(right.approx_eq(&id, 1e-8).unwrap());
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in dominant_matrix(4),
        b in dominant_matrix(4),
    ) {
        let da = LuDecomposition::new(&a).unwrap().determinant();
        let db = LuDecomposition::new(&b).unwrap().determinant();
        let dab = LuDecomposition::new(&a.matmul(&b).unwrap()).unwrap().determinant();
        // Relative comparison: determinants of dominant matrices are >= 1.
        prop_assert!(((dab - da * db) / (da * db)).abs() < 1e-8);
    }

    #[test]
    fn gauss_seidel_agrees_with_lu(a in dominant_matrix(5), b in vector(5)) {
        let lu_x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let gs = iterative::gauss_seidel(&a, &b, IterationConfig::default()).unwrap();
        for (l, r) in lu_x.iter().zip(&gs.solution) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn jacobi_agrees_with_lu(a in dominant_matrix(4), b in vector(4)) {
        let lu_x = LuDecomposition::new(&a).unwrap().solve(&b).unwrap();
        let j = iterative::jacobi(&a, &b, IterationConfig::default()).unwrap();
        for (l, r) in lu_x.iter().zip(&j.solution) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn transpose_is_involutive(a in dominant_matrix(5)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(
        a in dominant_matrix(3),
        b in dominant_matrix(3),
        c in dominant_matrix(3),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        // Dominant 3x3 entries are O(10); products are O(1e3).
        prop_assert!(left.approx_eq(&right, 1e-7 * (1.0 + left.norm_inf())).unwrap());
    }

    #[test]
    fn csr_round_trip_preserves_matrix(a in dominant_matrix(6)) {
        let sparse = CsrMatrix::from_dense(&a);
        prop_assert_eq!(sparse.to_dense(), a);
    }

    #[test]
    fn csr_matvec_matches_dense(a in dominant_matrix(6), x in vector(6)) {
        let sparse = CsrMatrix::from_dense(&a);
        let dense_y = a.matvec(&x).unwrap();
        let sparse_y = sparse.matvec(&x).unwrap();
        for (l, r) in dense_y.iter().zip(&sparse_y) {
            prop_assert!((l - r).abs() < 1e-9 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn csr_transposed_matvec_matches_dense(a in dominant_matrix(5), x in vector(5)) {
        let sparse = CsrMatrix::from_dense(&a);
        let want = a.transpose().matvec(&x).unwrap();
        let got = sparse.matvec_transposed(&x).unwrap();
        for (l, r) in want.iter().zip(&got) {
            prop_assert!((l - r).abs() < 1e-9 * (1.0 + l.abs()));
        }
    }

    #[test]
    fn triplet_order_is_irrelevant(
        mut entries in prop::collection::vec((0usize..4, 0usize..4, -5.0f64..5.0), 0..20)
    ) {
        let forward: Vec<Triplet> =
            entries.iter().map(|&(r, c, v)| Triplet::new(r, c, v)).collect();
        entries.reverse();
        let backward: Vec<Triplet> =
            entries.iter().map(|&(r, c, v)| Triplet::new(r, c, v)).collect();
        let a = CsrMatrix::from_triplets(4, 4, &forward).unwrap();
        let b = CsrMatrix::from_triplets(4, 4, &backward).unwrap();
        // Equality up to floating point: summation order of duplicates may
        // differ, so compare densified entries with a tolerance.
        prop_assert!(a.to_dense().approx_eq(&b.to_dense(), 1e-12).unwrap());
    }
}
