//! The shared chart representation.

use crate::PlotError;

/// One named line of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series, validating that it is non-empty and finite.
    ///
    /// # Errors
    ///
    /// - [`PlotError::EmptySeries`] for an empty point list.
    /// - [`PlotError::NonFinitePoint`] for NaN/infinite coordinates.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Result<Self, PlotError> {
        let name = name.into();
        if points.is_empty() {
            return Err(PlotError::EmptySeries { name });
        }
        for (index, &(x, y)) in points.iter().enumerate() {
            if !x.is_finite() || !y.is_finite() {
                return Err(PlotError::NonFinitePoint {
                    series: name,
                    index,
                });
            }
        }
        Ok(Series { name, points })
    }

    /// Builds a series by sampling a function over `count` evenly spaced
    /// points of `[lo, hi]`; points where `f` returns non-finite values
    /// are skipped (useful for off-scale regions like the paper's `C_1`).
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptySeries`] if every sample was non-finite
    /// or `count == 0`.
    pub fn sample(
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        count: usize,
        mut f: impl FnMut(f64) -> f64,
    ) -> Result<Self, PlotError> {
        let name = name.into();
        let mut points = Vec::with_capacity(count);
        if count > 0 {
            let step = if count > 1 {
                (hi - lo) / (count - 1) as f64
            } else {
                0.0
            };
            for k in 0..count {
                let x = lo + k as f64 * step;
                let y = f(x);
                if x.is_finite() && y.is_finite() {
                    points.push((x, y));
                }
            }
        }
        if points.is_empty() {
            return Err(PlotError::EmptySeries { name });
        }
        Ok(Series { name, points })
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Smallest and largest x.
    pub fn x_range(&self) -> (f64, f64) {
        self.points
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(x, _)| {
                (lo.min(x), hi.max(x))
            })
    }

    /// Smallest and largest y.
    pub fn y_range(&self) -> (f64, f64) {
        self.points
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, y)| {
                (lo.min(y), hi.max(y))
            })
    }
}

/// A titled, labelled collection of series sharing one coordinate system.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    log_y: bool,
    series: Vec<Series>,
}

impl Chart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            ..Chart::default()
        }
    }

    /// Sets the x-axis label.
    pub fn x_label(mut self, label: impl Into<String>) -> Self {
        self.x_label = label.into();
        self
    }

    /// Sets the y-axis label.
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Switches the y-axis to log10 (Figures 5 and 6 use this).
    pub fn log_y(mut self, log: bool) -> Self {
        self.log_y = log;
        self
    }

    /// Adds a series.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// The chart title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The x-axis label.
    pub fn x_label_text(&self) -> &str {
        &self.x_label
    }

    /// The y-axis label.
    pub fn y_label_text(&self) -> &str {
        &self.y_label
    }

    /// Whether the y-axis is log-scaled.
    pub fn is_log_y(&self) -> bool {
        self.log_y
    }

    /// The series.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Combined x-range over all series.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptyChart`] with no series.
    pub fn x_range(&self) -> Result<(f64, f64), PlotError> {
        self.combined(Series::x_range)
    }

    /// Combined y-range over all series.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptyChart`] with no series.
    pub fn y_range(&self) -> Result<(f64, f64), PlotError> {
        self.combined(Series::y_range)
    }

    fn combined(&self, f: impl Fn(&Series) -> (f64, f64)) -> Result<(f64, f64), PlotError> {
        if self.series.is_empty() {
            return Err(PlotError::EmptyChart);
        }
        Ok(self
            .series
            .iter()
            .map(f)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (a, b)| {
                (lo.min(a), hi.max(b))
            }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_validates_input() {
        assert!(matches!(
            Series::new("s", vec![]),
            Err(PlotError::EmptySeries { .. })
        ));
        assert!(matches!(
            Series::new("s", vec![(0.0, f64::NAN)]),
            Err(PlotError::NonFinitePoint { index: 0, .. })
        ));
    }

    #[test]
    fn series_ranges() {
        let s = Series::new("s", vec![(1.0, 5.0), (3.0, -2.0), (2.0, 0.0)]).unwrap();
        assert_eq!(s.x_range(), (1.0, 3.0));
        assert_eq!(s.y_range(), (-2.0, 5.0));
    }

    #[test]
    fn sample_spans_interval() {
        let s = Series::sample("f", 0.0, 2.0, 5, |x| x * x).unwrap();
        assert_eq!(s.points().len(), 5);
        assert_eq!(s.points()[0], (0.0, 0.0));
        assert_eq!(s.points()[4], (2.0, 4.0));
    }

    #[test]
    fn sample_skips_non_finite_values() {
        let s = Series::sample("partial", -1.0, 1.0, 21, |x| x.ln()).unwrap();
        // Only positive x yields finite ln.
        assert!(s.points().iter().all(|&(x, _)| x > 0.0));
        assert!(!s.points().is_empty());
    }

    #[test]
    fn sample_of_nothing_is_an_error() {
        assert!(Series::sample("nan", 0.0, 1.0, 5, |_| f64::NAN).is_err());
        assert!(Series::sample("empty", 0.0, 1.0, 0, |x| x).is_err());
    }

    #[test]
    fn chart_accumulates_series_and_ranges() {
        let chart = Chart::new("t")
            .x_label("x")
            .y_label("y")
            .log_y(true)
            .with_series(Series::new("a", vec![(0.0, 1.0), (1.0, 10.0)]).unwrap())
            .with_series(Series::new("b", vec![(2.0, 0.1)]).unwrap());
        assert_eq!(chart.series().len(), 2);
        assert_eq!(chart.x_range().unwrap(), (0.0, 2.0));
        assert_eq!(chart.y_range().unwrap(), (0.1, 10.0));
        assert!(chart.is_log_y());
        assert_eq!(chart.title(), "t");
        assert_eq!(chart.x_label_text(), "x");
        assert_eq!(chart.y_label_text(), "y");
    }

    #[test]
    fn empty_chart_has_no_range() {
        assert!(matches!(
            Chart::new("t").x_range(),
            Err(PlotError::EmptyChart)
        ));
    }
}
