//! Axis scales: linear and log10 transforms from data space to canvas
//! coordinates.

use crate::PlotError;

/// An axis transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Identity mapping.
    Linear,
    /// Base-10 logarithmic mapping (for the probability axes of Figures 5
    /// and 6, which span twenty orders of magnitude).
    Log10,
}

impl Scale {
    /// Applies the transform to a data value.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::LogOfNonPositive`] on `Log10` for values
    /// `≤ 0`.
    pub fn apply(self, value: f64) -> Result<f64, PlotError> {
        match self {
            Scale::Linear => Ok(value),
            Scale::Log10 => {
                if value <= 0.0 {
                    Err(PlotError::LogOfNonPositive { value })
                } else {
                    Ok(value.log10())
                }
            }
        }
    }

    /// Maps `value` into `[0, 1]` given the data range `(lo, hi)` (both in
    /// data space). Degenerate ranges map everything to 0.5.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scale::apply`], for the value or the bounds.
    pub fn normalize(self, value: f64, lo: f64, hi: f64) -> Result<f64, PlotError> {
        let (v, l, h) = (self.apply(value)?, self.apply(lo)?, self.apply(hi)?);
        if (h - l).abs() < f64::EPSILON * (1.0 + h.abs() + l.abs()) {
            return Ok(0.5);
        }
        Ok(((v - l) / (h - l)).clamp(0.0, 1.0))
    }

    /// Produces `count` tick values spanning `[lo, hi]`, evenly spaced in
    /// the transformed space (so log axes get decade-ish ticks).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scale::apply`].
    pub fn ticks(self, lo: f64, hi: f64, count: usize) -> Result<Vec<f64>, PlotError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if count == 1 {
            return Ok(vec![lo]);
        }
        let l = self.apply(lo)?;
        let h = self.apply(hi)?;
        let step = (h - l) / (count - 1) as f64;
        Ok((0..count)
            .map(|k| {
                let t = l + k as f64 * step;
                match self {
                    Scale::Linear => t,
                    Scale::Log10 => 10f64.powf(t),
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_identity() {
        assert_eq!(Scale::Linear.apply(3.5).unwrap(), 3.5);
        assert_eq!(Scale::Linear.apply(-2.0).unwrap(), -2.0);
    }

    #[test]
    fn log_rejects_non_positive() {
        assert!(Scale::Log10.apply(0.0).is_err());
        assert!(Scale::Log10.apply(-1.0).is_err());
        assert_eq!(Scale::Log10.apply(100.0).unwrap(), 2.0);
    }

    #[test]
    fn normalize_maps_endpoints() {
        assert_eq!(Scale::Linear.normalize(0.0, 0.0, 10.0).unwrap(), 0.0);
        assert_eq!(Scale::Linear.normalize(10.0, 0.0, 10.0).unwrap(), 1.0);
        assert_eq!(Scale::Linear.normalize(5.0, 0.0, 10.0).unwrap(), 0.5);
    }

    #[test]
    fn normalize_log_is_even_in_decades() {
        let mid = Scale::Log10.normalize(1e-10, 1e-15, 1e-5).unwrap();
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_clamps_out_of_range() {
        assert_eq!(Scale::Linear.normalize(20.0, 0.0, 10.0).unwrap(), 1.0);
        assert_eq!(Scale::Linear.normalize(-5.0, 0.0, 10.0).unwrap(), 0.0);
    }

    #[test]
    fn degenerate_range_centers() {
        assert_eq!(Scale::Linear.normalize(1.0, 1.0, 1.0).unwrap(), 0.5);
    }

    #[test]
    fn linear_ticks_are_even() {
        let t = Scale::Linear.ticks(0.0, 10.0, 6).unwrap();
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn log_ticks_are_decades() {
        let t = Scale::Log10.ticks(1.0, 1e4, 5).unwrap();
        for (tick, expected) in t.iter().zip([1.0, 10.0, 100.0, 1e3, 1e4]) {
            assert!((tick / expected - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tick_edge_counts() {
        assert!(Scale::Linear.ticks(0.0, 1.0, 0).unwrap().is_empty());
        assert_eq!(Scale::Linear.ticks(3.0, 9.0, 1).unwrap(), vec![3.0]);
    }
}
