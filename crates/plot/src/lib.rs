//! Figure output for the zeroconf reproduction.
//!
//! The paper produced its plots in Maple; this reproduction regenerates
//! every figure as
//!
//! - a **CSV file** ([`csv`]) for external plotting tools,
//! - an **ASCII chart** ([`ascii`]) so the figure's shape is verifiable in
//!   a terminal and in test logs (including the log-scale y-axes of
//!   Figures 5 and 6), and
//! - a minimal **SVG** ([`svg`]) rendering with axes and polylines, no
//!   external dependencies.
//!
//! Data flows through one shared representation, [`Series`] grouped in a
//! [`Chart`], with axis transforms handled by [`scale::Scale`].
//!
//! # Examples
//!
//! ```
//! use zeroconf_plot::{Chart, Series};
//!
//! # fn main() -> Result<(), zeroconf_plot::PlotError> {
//! let series = Series::new("C_4", vec![(0.0, 5.0), (1.0, 3.0), (2.0, 4.0)])?;
//! let chart = Chart::new("mean cost")
//!     .x_label("r (seconds)")
//!     .y_label("cost")
//!     .with_series(series);
//! let text = zeroconf_plot::ascii::render(&chart, 40, 12)?;
//! assert!(text.contains("C_4"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod ascii;
mod chart;
pub mod csv;
mod error;
pub mod scale;
pub mod svg;

pub use chart::{Chart, Series};
pub use error::PlotError;
