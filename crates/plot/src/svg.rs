//! Minimal SVG rendering: axes, polylines, legend. No dependencies.

use std::fmt::Write as _;

use crate::scale::Scale;
use crate::{Chart, PlotError};

/// Stroke colors assigned to series in order.
const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const MARGIN: f64 = 60.0;

/// Renders the chart as a standalone SVG document of the given pixel
/// size.
///
/// # Errors
///
/// - [`PlotError::EmptyChart`] with no series.
/// - [`PlotError::CanvasTooSmall`] below 200×150 pixels.
/// - [`PlotError::LogOfNonPositive`] when a log y-axis has no positive
///   data.
pub fn render(chart: &Chart, width: u32, height: u32) -> Result<String, PlotError> {
    if width < 200 || height < 150 {
        return Err(PlotError::CanvasTooSmall {
            width: width as usize,
            height: height as usize,
        });
    }
    let y_scale = if chart.is_log_y() {
        Scale::Log10
    } else {
        Scale::Linear
    };
    let (x_lo, x_hi) = chart.x_range()?;
    let (y_lo, y_hi) = if chart.is_log_y() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for series in chart.series() {
            for &(_, y) in series.points() {
                if y > 0.0 {
                    lo = lo.min(y);
                    hi = hi.max(y);
                }
            }
        }
        if !lo.is_finite() {
            return Err(PlotError::LogOfNonPositive { value: 0.0 });
        }
        (lo, hi)
    } else {
        chart.y_range()?
    };

    let plot_w = width as f64 - 2.0 * MARGIN;
    let plot_h = height as f64 - 2.0 * MARGIN;
    let to_px = |x: f64, y: f64| -> Result<(f64, f64), PlotError> {
        let tx = Scale::Linear.normalize(x, x_lo, x_hi)?;
        let ty = y_scale.normalize(y, y_lo, y_hi)?;
        Ok((MARGIN + tx * plot_w, MARGIN + (1.0 - ty) * plot_h))
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{width}" height="{height}" fill="white"/>"#
    );
    // Title and axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" text-anchor="middle" font-family="monospace" font-size="16">{}</text>"#,
        width as f64 / 2.0,
        escape(chart.title())
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle" font-family="monospace" font-size="12">{}</text>"#,
        width as f64 / 2.0,
        height as f64 - 12.0,
        escape(chart.x_label_text())
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" font-family="monospace" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
        height as f64 / 2.0,
        height as f64 / 2.0,
        escape(chart.y_label_text())
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>"#,
        m = MARGIN,
        t = MARGIN,
        r = width as f64 - MARGIN,
        b = height as f64 - MARGIN,
    );
    // Ticks (5 per axis).
    for tick in Scale::Linear.ticks(x_lo, x_hi, 5)? {
        let (px, _) = to_px(tick, y_lo)?;
        let _ = write!(
            svg,
            r#"<line x1="{px}" y1="{b}" x2="{px}" y2="{b2}" stroke="black"/><text x="{px}" y="{ty}" text-anchor="middle" font-family="monospace" font-size="10">{label}</text>"#,
            b = height as f64 - MARGIN,
            b2 = height as f64 - MARGIN + 5.0,
            ty = height as f64 - MARGIN + 18.0,
            label = format_tick(tick),
        );
    }
    for tick in y_scale.ticks(y_lo, y_hi, 5)? {
        let (_, py) = to_px(x_lo, tick)?;
        let _ = write!(
            svg,
            r#"<line x1="{m2}" y1="{py}" x2="{m}" y2="{py}" stroke="black"/><text x="{tx}" y="{py}" text-anchor="end" font-family="monospace" font-size="10">{label}</text>"#,
            m = MARGIN,
            m2 = MARGIN - 5.0,
            tx = MARGIN - 8.0,
            label = format_tick(tick),
        );
    }
    // Series.
    for (i, series) in chart.series().iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut path = String::new();
        for &(x, y) in series.points() {
            if chart.is_log_y() && y <= 0.0 {
                continue;
            }
            let (px, py) = to_px(x, y)?;
            if path.is_empty() {
                let _ = write!(path, "M{px:.2},{py:.2}");
            } else {
                let _ = write!(path, " L{px:.2},{py:.2}");
            }
        }
        let _ = write!(
            svg,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.5"/>"#
        );
        // Legend entry.
        let ly = MARGIN + 16.0 * i as f64;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{lx2}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{tx}" y="{ty}" font-family="monospace" font-size="11">{name}</text>"#,
            lx = width as f64 - MARGIN + 6.0,
            lx2 = width as f64 - MARGIN + 22.0,
            tx = width as f64 - MARGIN + 26.0,
            ty = ly + 4.0,
            name = escape(series.name()),
        );
    }
    svg.push_str("</svg>");
    Ok(svg)
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn format_tick(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else if value.abs() >= 1e4 || value.abs() < 1e-2 {
        format!("{value:.1e}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use crate::{Chart, Series};

    use super::*;

    fn chart() -> Chart {
        Chart::new("svg test")
            .x_label("r")
            .y_label("cost")
            .with_series(Series::new("a", vec![(0.0, 1.0), (2.0, 3.0)]).unwrap())
    }

    #[test]
    fn output_is_wellformed_svg() {
        let svg = render(&chart(), 640, 480).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<path"));
        assert!(svg.contains("svg test"));
    }

    #[test]
    fn series_names_and_labels_appear() {
        let svg = render(&chart(), 640, 480).unwrap();
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">cost</text>"));
        assert!(svg.contains(">r</text>"));
    }

    #[test]
    fn xml_special_characters_are_escaped() {
        let c = Chart::new("a < b & c").with_series(Series::new("x<y", vec![(0.0, 1.0)]).unwrap());
        let svg = render(&c, 640, 480).unwrap();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("x&lt;y"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn log_axis_renders_tiny_probabilities() {
        let c = Chart::new("log")
            .log_y(true)
            .with_series(Series::new("p", vec![(1.0, 1e-54), (2.0, 1e-35)]).unwrap());
        let svg = render(&c, 640, 480).unwrap();
        assert!(svg.contains("e-54") || svg.contains("e-35"));
    }

    #[test]
    fn too_small_canvas_is_rejected() {
        assert!(matches!(
            render(&chart(), 100, 480),
            Err(PlotError::CanvasTooSmall { .. })
        ));
    }

    #[test]
    fn empty_chart_is_rejected() {
        assert!(matches!(
            render(&Chart::new("t"), 640, 480),
            Err(PlotError::EmptyChart)
        ));
    }

    #[test]
    fn each_series_gets_a_distinct_color() {
        let c = Chart::new("two")
            .with_series(Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]).unwrap())
            .with_series(Series::new("b", vec![(0.0, 2.0), (1.0, 1.0)]).unwrap());
        let svg = render(&c, 640, 480).unwrap();
        assert!(svg.contains(COLORS[0]));
        assert!(svg.contains(COLORS[1]));
    }
}
