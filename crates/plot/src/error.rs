use std::error::Error;
use std::fmt;

/// Errors produced while building or rendering charts.
#[derive(Debug)]
#[non_exhaustive]
pub enum PlotError {
    /// A series contained no points.
    EmptySeries {
        /// Name of the offending series.
        name: String,
    },
    /// A chart had no series to render.
    EmptyChart,
    /// A point coordinate was NaN or infinite.
    NonFinitePoint {
        /// Name of the offending series.
        series: String,
        /// Index of the offending point.
        index: usize,
    },
    /// A log-scaled axis received a non-positive value.
    LogOfNonPositive {
        /// The offending value.
        value: f64,
    },
    /// Requested render dimensions are too small to draw anything.
    CanvasTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// Writing the output failed.
    Io(std::io::Error),
}

impl fmt::Display for PlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlotError::EmptySeries { name } => write!(f, "series '{name}' has no points"),
            PlotError::EmptyChart => write!(f, "chart has no series"),
            PlotError::NonFinitePoint { series, index } => {
                write!(f, "non-finite point at index {index} of series '{series}'")
            }
            PlotError::LogOfNonPositive { value } => {
                write!(f, "log scale cannot represent value {value}")
            }
            PlotError::CanvasTooSmall { width, height } => {
                write!(f, "canvas {width}x{height} is too small")
            }
            PlotError::Io(e) => write!(f, "output failed: {e}"),
        }
    }
}

impl Error for PlotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PlotError {
    fn from(e: std::io::Error) -> Self {
        PlotError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = PlotError::EmptySeries {
            name: "C_4".to_owned(),
        };
        assert!(e.to_string().contains("C_4"));
        assert!(PlotError::LogOfNonPositive { value: -1.0 }
            .to_string()
            .contains("-1"));
    }

    #[test]
    fn io_errors_convert_with_source() {
        let e: PlotError = std::io::Error::other("boom").into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&PlotError::EmptyChart).is_none());
    }
}
