//! ASCII chart rendering.
//!
//! Renders a [`Chart`] as monospaced text: series drawn with distinct
//! glyphs over a bordered canvas, a y-axis with tick labels (scientific
//! notation on log axes) and a legend. The point is *verifiability*: the
//! regenerated figures can be eyeballed in a terminal or embedded in
//! EXPERIMENTS.md next to the paper's description, without any plotting
//! toolchain.

use crate::scale::Scale;
use crate::{Chart, PlotError};

/// Glyphs assigned to series in order.
const GLYPHS: [char; 10] = ['*', '+', 'o', 'x', '#', '@', '%', '&', '~', '='];

/// Renders the chart onto a `width × height` character canvas (plot area;
/// axis labels add a margin around it).
///
/// Series points are mapped through the chart's scales (linear x; linear
/// or log10 y per [`Chart::is_log_y`]) and adjacent points of one series
/// are connected by linear interpolation in canvas space. On a log y-axis,
/// points with `y ≤ 0` are skipped rather than failing the render.
///
/// # Errors
///
/// - [`PlotError::EmptyChart`] with no series.
/// - [`PlotError::CanvasTooSmall`] below 16×4.
/// - [`PlotError::LogOfNonPositive`] when a log axis range degenerates.
pub fn render(chart: &Chart, width: usize, height: usize) -> Result<String, PlotError> {
    if width < 16 || height < 4 {
        return Err(PlotError::CanvasTooSmall { width, height });
    }
    let y_scale = if chart.is_log_y() {
        Scale::Log10
    } else {
        Scale::Linear
    };
    let (x_lo, x_hi) = chart.x_range()?;
    let (mut y_lo, mut y_hi) = if chart.is_log_y() {
        positive_y_range(chart)?
    } else {
        chart.y_range()?
    };
    if y_lo == y_hi {
        // Flat data: widen symmetrically so the line sits mid-canvas.
        let pad = if y_lo == 0.0 { 1.0 } else { y_lo.abs() * 0.1 };
        y_lo -= pad;
        y_hi += pad;
        if chart.is_log_y() {
            y_lo = y_lo.max(f64::MIN_POSITIVE);
        }
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (series_index, series) in chart.series().iter().enumerate() {
        let glyph = GLYPHS[series_index % GLYPHS.len()];
        let mut previous: Option<(usize, usize)> = None;
        for &(x, y) in series.points() {
            if chart.is_log_y() && y <= 0.0 {
                previous = None;
                continue;
            }
            let cx = to_column(x, x_lo, x_hi, width);
            let cy = to_row(y, y_lo, y_hi, height, y_scale)?;
            if let Some((px, py)) = previous {
                draw_segment(&mut canvas, px, py, cx, cy, glyph);
            } else {
                canvas[cy][cx] = glyph;
            }
            previous = Some((cx, cy));
        }
    }

    let mut out = String::new();
    out.push_str(chart.title());
    out.push('\n');
    if !chart.y_label_text().is_empty() {
        out.push_str(chart.y_label_text());
        out.push('\n');
    }
    // Y tick labels on selected rows.
    let label_width = 11;
    for (row, line) in canvas.iter().enumerate() {
        let label = if row == 0 {
            format_tick(y_hi)
        } else if row == height - 1 {
            format_tick(y_lo)
        } else if row == height / 2 {
            let mid = y_scale.ticks(y_lo, y_hi, 3)?[1];
            format_tick(mid)
        } else {
            String::new()
        };
        out.push_str(&format!("{label:>label_width$} |"));
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>label_width$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>label_width$}  {:<w$.4}{:>w2$.4}\n",
        "",
        x_lo,
        x_hi,
        w = width / 2,
        w2 = width - width / 2,
    ));
    if !chart.x_label_text().is_empty() {
        out.push_str(&format!("{:>label_width$}  {}\n", "", chart.x_label_text()));
    }
    // Legend.
    for (i, series) in chart.series().iter().enumerate() {
        out.push_str(&format!(
            "{:>label_width$}  {} {}\n",
            "",
            GLYPHS[i % GLYPHS.len()],
            series.name()
        ));
    }
    Ok(out)
}

fn positive_y_range(chart: &Chart) -> Result<(f64, f64), PlotError> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for series in chart.series() {
        for &(_, y) in series.points() {
            if y > 0.0 {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return Err(PlotError::LogOfNonPositive { value: 0.0 });
    }
    Ok((lo, hi))
}

fn to_column(x: f64, lo: f64, hi: f64, width: usize) -> usize {
    let t = Scale::Linear
        .normalize(x, lo, hi)
        .expect("linear normalize is total");
    ((t * (width - 1) as f64).round() as usize).min(width - 1)
}

fn to_row(y: f64, lo: f64, hi: f64, height: usize, scale: Scale) -> Result<usize, PlotError> {
    let t = scale.normalize(y, lo, hi)?;
    // Row 0 is the top of the canvas.
    Ok(((1.0 - t) * (height - 1) as f64).round() as usize)
}

fn draw_segment(canvas: &mut [Vec<char>], x0: usize, y0: usize, x1: usize, y1: usize, glyph: char) {
    // Bresenham-style interpolation, coarse is fine for ASCII.
    let steps = (x1 as i64 - x0 as i64)
        .abs()
        .max((y1 as i64 - y0 as i64).abs())
        .max(1);
    for s in 0..=steps {
        let t = s as f64 / steps as f64;
        let x = (x0 as f64 + t * (x1 as f64 - x0 as f64)).round() as usize;
        let y = (y0 as f64 + t * (y1 as f64 - y0 as f64)).round() as usize;
        canvas[y][x] = glyph;
    }
}

fn format_tick(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else if value.abs() >= 1e4 || value.abs() < 1e-2 {
        format!("{value:.2e}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use crate::Series;

    use super::*;

    fn chart() -> Chart {
        Chart::new("test chart")
            .x_label("r")
            .y_label("cost")
            .with_series(Series::new("up", vec![(0.0, 0.0), (5.0, 5.0)]).unwrap())
            .with_series(Series::new("down", vec![(0.0, 5.0), (5.0, 0.0)]).unwrap())
    }

    #[test]
    fn render_contains_title_labels_and_legend() {
        let text = render(&chart(), 40, 10).unwrap();
        assert!(text.contains("test chart"));
        assert!(text.contains("cost"));
        assert!(text.contains('r'));
        assert!(text.contains("* up"));
        assert!(text.contains("+ down"));
    }

    #[test]
    fn lines_are_drawn_with_distinct_glyphs() {
        let text = render(&chart(), 40, 10).unwrap();
        assert!(text.matches('*').count() > 5);
        assert!(text.matches('+').count() > 5);
    }

    #[test]
    fn rising_series_touches_opposite_corners() {
        let only_up =
            Chart::new("up").with_series(Series::new("up", vec![(0.0, 0.0), (5.0, 5.0)]).unwrap());
        let text = render(&only_up, 30, 8).unwrap();
        let rows: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        // First canvas row (max y) has the glyph near the right edge;
        // last canvas row near the left edge.
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(first.rfind('*').unwrap() > last.rfind('*').unwrap());
    }

    #[test]
    fn log_axis_skips_non_positive_points() {
        let c = Chart::new("log")
            .log_y(true)
            .with_series(Series::new("p", vec![(0.0, 0.0), (1.0, 1e-10), (2.0, 1e-5)]).unwrap());
        let text = render(&c, 30, 8).unwrap();
        assert!(text.contains("1.00e-5") || text.contains("1e-5") || text.contains("e-5"));
    }

    #[test]
    fn log_axis_with_all_non_positive_fails() {
        let c = Chart::new("log")
            .log_y(true)
            .with_series(Series::new("p", vec![(0.0, 0.0)]).unwrap());
        assert!(matches!(
            render(&c, 30, 8),
            Err(PlotError::LogOfNonPositive { .. })
        ));
    }

    #[test]
    fn flat_series_renders_mid_canvas() {
        let c =
            Chart::new("flat").with_series(Series::new("k", vec![(0.0, 2.0), (1.0, 2.0)]).unwrap());
        let text = render(&c, 30, 9).unwrap();
        let rows: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        let hit_row = rows.iter().position(|l| l.contains('*')).unwrap();
        assert!(hit_row > 1 && hit_row < rows.len() - 2, "row {hit_row}");
    }

    #[test]
    fn canvas_size_is_validated() {
        assert!(matches!(
            render(&chart(), 5, 10),
            Err(PlotError::CanvasTooSmall { .. })
        ));
        assert!(matches!(
            render(&chart(), 40, 2),
            Err(PlotError::CanvasTooSmall { .. })
        ));
    }

    #[test]
    fn empty_chart_is_rejected() {
        assert!(matches!(
            render(&Chart::new("e"), 30, 8),
            Err(PlotError::EmptyChart)
        ));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1.5), "1.500");
        assert!(format_tick(1e-30).contains('e'));
        assert!(format_tick(1e12).contains('e'));
    }
}
