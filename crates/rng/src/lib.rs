//! Vendored pseudo-random number generation for the zeroconf reproduction.
//!
//! The growth environment builds fully offline, so the workspace cannot
//! depend on the external `rand` crate. This crate vendors a small,
//! well-understood generator — **xoshiro256++** (Blackman & Vigna), an
//! xorshift-family generator with 256 bits of state — behind the narrow
//! slice of the `rand` API the workspace actually uses:
//!
//! - [`RngCore`] — object-safe entropy source (`next_u64`),
//! - [`Rng`] — blanket extension trait with `gen::<f64>()`,
//!   `gen_range(lo..hi)` and `gen_bool(p)`,
//! - [`SeedableRng`] — `seed_from_u64` construction,
//! - [`rngs::StdRng`] — the workspace's default generator.
//!
//! Import paths deliberately mirror `rand` (`zeroconf_rng::rngs::StdRng`,
//! `zeroconf_rng::SeedableRng`, …) so the simulation and test code reads
//! identically to its original form. Sequences differ from `rand`'s
//! ChaCha-based `StdRng`; every consumer in this workspace is either
//! statistical (tolerance-based) or compares two same-seed runs, so only
//! reproducibility *within* this crate matters, and that is guaranteed:
//! the generator is pure integer arithmetic with a fixed seeding scheme
//! (SplitMix64), stable across platforms and releases.
//!
//! # Examples
//!
//! ```
//! use zeroconf_rng::rngs::StdRng;
//! use zeroconf_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.gen_range(0..10u32);
//! assert!(k < 10);
//! ```

#![forbid(unsafe_code)]

use std::ops::Range;

/// An object-safe source of random 64-bit words.
///
/// The one required method is [`RngCore::next_u64`]; everything else is
/// derived. The trait is object safe so distributions can take
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (the upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose state is expanded from `seed` with
    /// SplitMix64 (the expansion recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience extension methods over any [`RngCore`].
///
/// Blanket-implemented for every `R: RngCore + ?Sized`, mirroring
/// `zeroconf_rng::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64`: uniform on `[0, 1)` with 53 random bits).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable by [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform on `[0, 1)`: the top 53 bits of one draw, scaled by 2⁻⁵³.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Types drawable by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws uniformly from `range`; panics when it is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(bound);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range called with empty range");
        let u: f64 = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// SplitMix64: the seed-expansion generator (Steele, Lea & Flood).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ — the workspace's vendored generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the `++` output
/// scrambler avoids the low-bit linearity of plain xorshift.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Builds a generator from raw state words; at least one must be
    /// non-zero (an all-zero state is a fixed point). Prefer
    /// [`SeedableRng::seed_from_u64`].
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0; 4] {
            None
        } else {
            Some(Xoshiro256PlusPlus { s })
        }
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 never maps distinct seeds to an all-zero state word
        // quadruple (it is a bijection per step), so the state is valid.
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `zeroconf_rng::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++).
    ///
    /// A type alias rather than a wrapper so `StdRng` and
    /// [`super::Xoshiro256PlusPlus`] interoperate freely.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn reference_vector_matches_xoshiro256plusplus() {
        // First outputs for state [1, 2, 3, 4], from the reference C
        // implementation at https://prng.di.unimi.it/xoshiro256plusplus.c.
        let mut rng = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]).unwrap();
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let equal = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(equal < 2);
    }

    #[test]
    fn all_zero_state_is_rejected() {
        assert!(Xoshiro256PlusPlus::from_state([0; 4]).is_none());
    }

    #[test]
    fn f64_is_uniform_on_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        let mut below_half = 0u32;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
            if u < 0.5 {
                below_half += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        let frac = below_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let k = rng.gen_range(5..7u32);
            assert!((5..7).contains(&k));
        }
        let x = rng.gen_range(-2.0..3.0f64);
        assert!((-2.0..3.0).contains(&x));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5u32);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn works_through_dyn_and_fully_qualified_calls() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = Rng::gen(dyn_rng);
        assert!((0.0..1.0).contains(&u));
        let k = Rng::gen_range(dyn_rng, 0..4usize);
        assert!(k < 4);
    }

    #[test]
    fn uniform_below_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[uniform_below(&mut rng, 3) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }
}
